//! Experiments E5 (part 2) and E7: LIS throughput — patience sorting vs the seaweed
//! kernel construction — and semi-local window-query throughput (Corollary 1.3.2).

use bench_suite::{noisy_trend, random_permutation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use seaweed_lis::baselines::lis_length_patience;
use seaweed_lis::lis::{lis_kernel, SemiLocalLis};

fn bench_lis_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("lis_length");
    group.sample_size(10);
    for &n in &[1usize << 12, 1 << 14] {
        let seq = noisy_trend(n, (n / 4) as u32, 5);
        group.bench_with_input(BenchmarkId::new("patience", n), &n, |bench, _| {
            bench.iter(|| lis_length_patience(&seq))
        });
        group.bench_with_input(BenchmarkId::new("seaweed_kernel", n), &n, |bench, _| {
            bench.iter(|| lis_kernel(&seq).lcs_window(0, n))
        });
    }
    group.finish();
}

fn bench_semi_local_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("semi_local_lis");
    group.sample_size(10);
    let n = 1usize << 14;
    let perm = random_permutation(n, 9);
    let index = SemiLocalLis::new(perm.rows());
    let mut rng = StdRng::seed_from_u64(10);
    let windows: Vec<(usize, usize)> = (0..1000)
        .map(|_| {
            let l = rng.gen_range(0..n);
            (l, rng.gen_range(l..=n))
        })
        .collect();
    group.bench_function("1000_window_queries", |bench| {
        bench.iter(|| {
            windows
                .iter()
                .map(|&(l, r)| index.lis_window(l, r))
                .sum::<usize>()
        })
    });
    group.bench_function("build_index_n16k", |bench| {
        bench.iter(|| SemiLocalLis::new(perm.rows()))
    });
    group.finish();
}

criterion_group!(benches, bench_lis_length, bench_semi_local_queries);
criterion_main!(benches);
