//! Experiment E5 (part 1): sequential throughput of the implicit unit-Monge
//! multiplication engines — the O(n³) dense reference, the O(n log n) steady ant and
//! the H-way combine — showing where the asymptotically better algorithms take over.

use bench_suite::random_permutation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use monge::multiway::mul_multiway;
use monge::{mul_dense, mul_steady_ant};

fn bench_dense_vs_ant(c: &mut Criterion) {
    let mut group = c.benchmark_group("mul_small");
    group.sample_size(20);
    for &n in &[64usize, 128, 256] {
        let a = random_permutation(n, 1);
        let b = random_permutation(n, 2);
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |bench, _| {
            bench.iter(|| mul_dense(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("steady_ant", n), &n, |bench, _| {
            bench.iter(|| mul_steady_ant(&a, &b))
        });
    }
    group.finish();
}

fn bench_ant_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mul_large");
    group.sample_size(10);
    for &n in &[1usize << 12, 1 << 14, 1 << 16] {
        let a = random_permutation(n, 3);
        let b = random_permutation(n, 4);
        group.bench_with_input(BenchmarkId::new("steady_ant", n), &n, |bench, _| {
            bench.iter(|| mul_steady_ant(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("multiway_h8", n), &n, |bench, _| {
            bench.iter(|| mul_multiway(&a, &b, 8, 1 << 8))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense_vs_ant, bench_ant_scaling);
criterion_main!(benches);
