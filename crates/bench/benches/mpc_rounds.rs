//! Wall-clock cost of the *simulated* MPC executions (the round counts themselves
//! are measured by the experiment binaries; this bench tracks how expensive the
//! simulation is so regressions in the runtime are caught).

use bench_suite::{noisy_trend, random_permutation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lis_mpc::lis_length_mpc;
use monge_mpc::MulParams;
use mpc_runtime::{Cluster, MpcConfig};

fn bench_mpc_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_mul_simulation");
    group.sample_size(10);
    for &n in &[1usize << 12, 1 << 14] {
        let a = random_permutation(n, 21);
        let b = random_permutation(n, 22);
        group.bench_with_input(BenchmarkId::new("delta_0.5", n), &n, |bench, _| {
            bench.iter(|| {
                let mut cluster = Cluster::new(MpcConfig::new(n, 0.5));
                monge_mpc::mul(&mut cluster, &a, &b, &MulParams::default())
            })
        });
    }
    group.finish();
}

fn bench_mpc_lis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_lis_simulation");
    group.sample_size(10);
    let n = 1usize << 12;
    let seq = noisy_trend(n, (n / 4) as u32, 23);
    group.bench_function(BenchmarkId::new("delta_0.5", n), |bench| {
        bench.iter(|| {
            // The LIS block kernels overshoot the budget by a constant
            // factor (see ROADMAP); record, don't panic.
            let mut cluster = Cluster::new(MpcConfig::lenient(n, 0.5));
            lis_length_mpc(&mut cluster, &seq, &MulParams::default())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mpc_mul, bench_mpc_lis);
criterion_main!(benches);
