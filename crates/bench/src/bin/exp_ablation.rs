//! Ablation (DESIGN.md §6): how the fan-out `H` and the grid spacing `G` trade
//! rounds against communication and peak load, for one multiplication at fixed n, δ.
//!
//! Run with: `cargo run --release -p bench --bin exp_ablation [-- --json --threads N]`

use bench_suite::{json_envelope, random_permutation, ExpOpts, Table};
use monge_mpc::MulParams;
use mpc_runtime::{Cluster, MpcConfig};

fn main() {
    let opts = ExpOpts::from_env();
    let n = 1usize << 14;
    let delta = 0.5;
    let a = random_permutation(n, 31);
    let b = random_permutation(n, 32);

    let mut table = Table::new(vec!["H", "G", "rounds", "comm", "peak load", "violations"]);
    let g_default = MpcConfig::new(n, delta).base_space();
    for &h in &[2usize, 4, 8, 16] {
        for &g in &[g_default / 4, g_default, g_default * 4] {
            let mut cluster = Cluster::new(MpcConfig::new(n, delta));
            let params = MulParams::default().with_h(h).with_g(g);
            let _ = monge_mpc::mul(&mut cluster, &a, &b, &params);
            let l = cluster.ledger();
            table.row(vec![
                h.to_string(),
                g.to_string(),
                l.rounds.to_string(),
                l.communication.to_string(),
                l.max_machine_load.to_string(),
                l.space_violations.to_string(),
            ]);
        }
    }
    if opts.json {
        println!(
            "{}",
            json_envelope("exp_ablation", &[("rows", table.render_json())])
        );
        return;
    }
    println!("Ablation: ⊡ at n = {n}, δ = {delta}\n");
    println!("{}", table.render());
    println!(
        "Reading: larger H shrinks the recursion depth (fewer rounds) at the price of more\n\
         routing communication in the combine; G trades the number of active subgrids against\n\
         the size of each subgrid instance — the paper's choices (H = n^{{(1-δ)/10}}, G = n^{{1-δ}})\n\
         sit in the flat region of both curves."
    );
}
