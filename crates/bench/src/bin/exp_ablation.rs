//! Ablation (DESIGN.md §6): how the fan-out `H`, the grid spacing `G`, the
//! grid-phase strategy and the routing strategy trade rounds against
//! communication and peak load, for one multiplication at fixed n, δ.
//!
//! Per configuration the table reports the ledger's per-phase breakdown:
//! `grid comm`/`grid peak` for the §3.2 grid-line phase and `route comm` for the
//! §3.3 routing — the column where the Lemma 3.12 pierced intervals beat the
//! row/column-range baseline (`routing = bands`) by a factor approaching `H`.
//!
//! Run with: `cargo run --release -p bench --bin exp_ablation [-- --json
//! --threads N --grid-phase tree|reference]`

use bench_suite::{json_envelope, random_permutation, ExpOpts, Table};
use monge_mpc::{GridPhase, MulParams, Routing};
use mpc_runtime::{Cluster, MpcConfig};

fn main() {
    let opts = ExpOpts::from_env();
    let n = 1usize << 14;
    let delta = 0.5;
    let a = random_permutation(n, 31);
    let b = random_permutation(n, 32);

    let strategies: Vec<GridPhase> = match opts.grid_phase.as_deref() {
        Some("tree") => vec![GridPhase::Tree],
        Some("reference") => vec![GridPhase::Reference],
        _ => vec![GridPhase::Tree, GridPhase::Reference],
    };

    let mut table = Table::new(vec![
        "grid",
        "routing",
        "H",
        "G",
        "rounds",
        "comm",
        "grid comm",
        "route comm",
        "grid peak",
        "peak load",
        "violations",
    ]);
    let g_default = MpcConfig::lenient(n, delta).base_space();
    for &grid_phase in &strategies {
        for &routing in &[Routing::Pierced, Routing::Bands] {
            for &h in &[2usize, 4, 8, 16] {
                for &g in &[g_default / 4, g_default, g_default * 4] {
                    // Lenient across the board: the reference gather and the band
                    // routing overshoot by design, and forced (H, G) choices sit
                    // outside the paper's regime. Violations land in the table.
                    let mut cluster = Cluster::new(MpcConfig::lenient(n, delta));
                    let params = MulParams::default()
                        .with_h(h)
                        .with_g(g)
                        .with_grid_phase(grid_phase)
                        .with_routing(routing);
                    let _ = monge_mpc::mul(&mut cluster, &a, &b, &params);
                    let l = cluster.ledger();
                    let by = |m: &std::collections::BTreeMap<String, u64>, k: &str| {
                        m.get(k).copied().unwrap_or(0).to_string()
                    };
                    table.row(vec![
                        format!("{grid_phase:?}").to_lowercase(),
                        format!("{routing:?}").to_lowercase(),
                        h.to_string(),
                        g.to_string(),
                        l.rounds.to_string(),
                        l.communication.to_string(),
                        by(&l.comm_by_phase, "combine-grid"),
                        by(&l.comm_by_phase, "combine-route"),
                        l.max_load_by_phase
                            .get("combine-grid")
                            .copied()
                            .unwrap_or(0)
                            .to_string(),
                        l.max_machine_load.to_string(),
                        l.space_violations.to_string(),
                    ]);
                }
            }
        }
    }
    if opts.json {
        println!(
            "{}",
            json_envelope("exp_ablation", &[("rows", table.render_json())])
        );
        return;
    }
    println!("Ablation: ⊡ at n = {n}, δ = {delta}\n");
    println!("{}", table.render());
    println!(
        "Reading: larger H shrinks the recursion depth (fewer rounds) at the price of more\n\
         routing communication in the combine; G trades the number of active subgrids against\n\
         the size of each subgrid instance — the paper's choices (H = n^{{(1-δ)/10}}, G = n^{{1-δ}})\n\
         sit in the flat region of both curves. The `route comm` column shows the Lemma 3.12\n\
         saving: pierced-interval routing undercuts the band baseline by a factor that grows\n\
         with H. The tree grid phase keeps `grid peak` within the space budget where the\n\
         reference gather (grid = reference) overshoots it (the `violations` column)."
    );
}
