//! Experiment E6 — chaos harness for the fault-injection runtime: kill one
//! machine inside *every* merge level of the Theorem 1.3 pipeline (plus one
//! straggler-only schedule) and measure the recovery overhead.
//!
//! A fault-free probe run records where each `lis-merge-L<k>` level sits on
//! the superstep clock (`Ledger::superstep_spans`); the harness then re-runs
//! the witness pipeline once per level with a kill aimed at the level's
//! mid-span superstep. Every faulted run must reproduce the fault-free
//! length, kernel and witness **bit for bit** with zero space violations, at
//! ≤ 2× the fault-free rounds — the same invariants the CI chaos smoke leg
//! asserts through `--json`. The straggler row checks the complementary
//! accounting rule: delays charge `stall_rounds`, never `rounds`.
//!
//! Run with: `cargo run --release -p bench --bin exp_chaos
//! [-- --json --threads N --max-n N]` (`--max-n` sets the instance size,
//! default 2^12).

use bench_suite::{json_envelope, noisy_trend, ExpOpts, Table};
use lis_mpc::lis_witness_mpc;
use monge_mpc::MulParams;
use mpc_runtime::{Cluster, FaultPlan, MpcConfig};

fn main() {
    let opts = ExpOpts::from_env();
    let n = opts.max_n.unwrap_or(1 << 12);
    let delta = 0.5;
    let seq = noisy_trend(n, (n / 3).max(2) as u32, 0xC4A05 + n as u64);
    let params = MulParams::default();

    // Fault-free probe: the baseline outputs and the superstep span of every
    // merge level (the clock positions recovery must be aimed at).
    let mut probe = Cluster::new(MpcConfig::new(n, delta));
    let baseline = lis_witness_mpc(&mut probe, &seq, &params);
    let base_witness = baseline.witness.clone().expect("witness requested");
    let base_rounds = probe.rounds();
    let machines = probe.config().machines;
    assert!(machines >= 2, "chaos runs need a surviving replica machine");

    let mut table = Table::new(vec![
        "fault",
        "machine",
        "superstep",
        "rounds",
        "ratio",
        "recovery scopes",
        "stalls",
        "violations",
        "identical",
    ]);
    let mut max_ratio: f64 = 0.0;
    let mut total_kills = 0usize;
    let mut total_violations = 0u64;

    // One kill aimed inside each merge level, always at machine 0: node i of
    // every level lives on machine i % m, so machine 0 owns node 0 of every
    // level and each kill is guaranteed to destroy live state (other machines
    // may own no node at the shallow top levels).
    for level in 1..=baseline.levels {
        let Some((lo, hi)) = probe
            .ledger()
            .superstep_span_of(&format!("lis-merge-L{level}"))
        else {
            continue;
        };
        let superstep = lo + (hi - lo) / 2;
        let machine = 0;
        let plan = FaultPlan::kill(machine, superstep);
        let mut cluster = Cluster::new(MpcConfig::new(n, delta).with_faults(plan));
        let outcome = lis_witness_mpc(&mut cluster, &seq, &params);
        let witness = outcome.witness.expect("witness requested");
        let identical = outcome.length == baseline.length
            && outcome.kernel == baseline.kernel
            && witness == base_witness;
        assert!(identical, "recovery diverged after a kill at level {level}");
        let ledger = cluster.ledger();
        assert_eq!(ledger.kills(), 1, "the scheduled kill must fire");
        let recovery_scopes = ledger
            .rounds_by_phase
            .keys()
            .filter(|k| k.starts_with("recovery-"))
            .count();
        assert!(recovery_scopes > 0, "a kill must leave recovery scopes");
        let ratio = cluster.rounds() as f64 / base_rounds.max(1) as f64;
        assert!(
            ratio <= 2.0,
            "recovery overhead {ratio:.2}× exceeds 2× at level {level}"
        );
        max_ratio = max_ratio.max(ratio);
        total_kills += ledger.kills();
        total_violations += ledger.space_violations;
        table.row(vec![
            format!("kill@L{level}"),
            machine.to_string(),
            superstep.to_string(),
            cluster.rounds().to_string(),
            format!("{ratio:.2}"),
            recovery_scopes.to_string(),
            ledger.stall_rounds.to_string(),
            ledger.space_violations.to_string(),
            "yes".to_string(),
        ]);
    }

    // Straggler-only schedule: two delayed machines. The synchronous barrier
    // absorbs them — round count is *exactly* the fault-free one and the lost
    // time lands in `stall_rounds`.
    let plan = FaultPlan::delay(0, 5, 3).and_delay(1, 40, 2);
    let mut cluster = Cluster::new(MpcConfig::new(n, delta).with_faults(plan));
    let outcome = lis_witness_mpc(&mut cluster, &seq, &params);
    assert_eq!(outcome.length, baseline.length);
    assert_eq!(outcome.kernel, baseline.kernel);
    assert_eq!(outcome.witness.expect("witness requested"), base_witness);
    assert_eq!(
        cluster.rounds(),
        base_rounds,
        "delays must not change the synchronous round count"
    );
    let ledger = cluster.ledger();
    assert_eq!(ledger.stall_rounds, 5, "both delays must be charged");
    total_violations += ledger.space_violations;
    table.row(vec![
        "stragglers".to_string(),
        "0+1".to_string(),
        "5,40".to_string(),
        cluster.rounds().to_string(),
        "1.00".to_string(),
        "0".to_string(),
        ledger.stall_rounds.to_string(),
        ledger.space_violations.to_string(),
        "yes".to_string(),
    ]);

    if opts.json {
        println!(
            "{}",
            json_envelope(
                "exp_chaos",
                &[
                    ("rows", table.render_json()),
                    ("n", n.to_string()),
                    ("baseline_rounds", base_rounds.to_string()),
                    ("levels", baseline.levels.to_string()),
                    ("kills", total_kills.to_string()),
                    ("max_round_ratio", format!("{max_ratio:.3}")),
                    ("violations", total_violations.to_string()),
                ]
            )
        );
        return;
    }
    println!(
        "E6: chaos injection at n = {n}, δ = {delta} ({machines} machines, \
         fault-free rounds = {base_rounds})\n"
    );
    println!("{}", table.render());
    println!(
        "Reading: each kill row schedules one machine crash at the mid-span superstep of a\n\
         merge level; the pipeline repairs the lost shard from the level below (recovery-*\n\
         ledger scopes) and must reproduce the fault-free length, kernel and witness bit for\n\
         bit on strict clusters — zero violations, ≤ 2× rounds (measured max {max_ratio:.2}×).\n\
         The straggler row shows delays being absorbed by the barrier: identical rounds, the\n\
         lost time charged to stall_rounds."
    );
}
