//! Experiment E7 — wall-clock profile of the two local hot kernels.
//!
//! The round/space experiments (`exp_mul_rounds`, `exp_lis_rounds`) validate the
//! *model*; this harness measures the *hardware*: per-size nanoseconds and
//! throughput of the seaweed comb and the steady-ant `⊡`, optimized fast path
//! against the retained reference implementation, asserting bit-identical
//! outputs on every size where both run.
//!
//! * **comb** — [`seaweed_lis::kernel::SeaweedKernel::comb_bitparallel`]
//!   (comparison-rule + word-skip) vs [`SeaweedKernel::comb`] (triangular
//!   crossing-history oracle). The reference materializes `(m+n)²/2` bits, so
//!   it is skipped above [`REF_COMB_CAP`] columns; the fast path is linear-space
//!   and sweeps on toward 2^22.
//! * **mul** — arena-backed [`monge::steady_ant::mul_rows`] (thread-local
//!   [`monge::steady_ant::Workspace`], dense base case) and the data-parallel
//!   [`monge::steady_ant::mul_batch`] vs the allocate-per-level
//!   [`monge::steady_ant::mul_rows_reference`].
//! * **comb-par params** — a [`CombParams`] sweep at one fixed size, exposing
//!   the block/chunk tunables' wall-clock effect.
//!
//! Run with: `cargo run --release -p bench --bin exp_kernel_bench
//! [-- --json --threads N --max-n N]` (the size grids double from 2^10 up to
//! `--max-n`, default 2^16).

use bench_suite::{bench_ns, json_envelope, random_sequence, size_sweep, ExpOpts, Table};
use monge::steady_ant::{mul_batch, mul_rows, mul_rows_reference};
use monge::PermutationMatrix;
use rand::prelude::*;
use seaweed_lis::kernel::{CombParams, SeaweedKernel};

/// Rows of the comb workload (the `x` string / alphabet side).
const COMB_M: usize = 256;

/// Above this many columns the reference comb's triangular crossing bitset
/// (`(m+n)²/2` bits — 256 MiB at 2^16, 1 GiB at 2^17) stops being worth
/// materializing; the fast path keeps sweeping without a baseline column.
const REF_COMB_CAP: usize = 1 << 16;

/// Instances per `mul_batch` timing, sharing one arena per worker.
const BATCH_K: usize = 4;

fn random_perm_rows(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(&mut rng);
    v
}

fn main() {
    let opts = ExpOpts::from_env();
    let sizes = {
        let mut s = size_sweep(1 << 10, 1 << 16, opts.max_n);
        if s.is_empty() {
            s.push(opts.max_n.unwrap_or(1 << 10).max(64));
        }
        s
    };
    // Small sizes finish in microseconds: repeat until the timer is trustworthy.
    // Mid sizes (tens of ms per run) still jitter under ambient load, so insist
    // on several runs there too; only the multi-second giants get a short leash.
    let total_ms = 60;
    let runs_for = |n: usize| if n <= (1 << 17) { 7 } else { 3 };

    // ------------------------------------------------------------------- comb
    let mut comb = Table::new(vec![
        "n",
        "m",
        "ref ns",
        "fast ns",
        "speedup",
        "cells/us",
        "identical",
    ]);
    for &n in &sizes {
        let x = random_sequence(COMB_M, COMB_M as u32, 0xC0 + n as u64);
        let y = random_sequence(n, COMB_M as u32, 0xC1 + n as u64);
        let fast_ns = bench_ns(runs_for(n), total_ms, || {
            SeaweedKernel::comb_bitparallel(&x, &y)
        });
        let cells_per_us = (COMB_M as f64 * n as f64) / fast_ns as f64 * 1e3;
        let (ref_ns, speedup, identical) = if n <= REF_COMB_CAP {
            let ref_ns = bench_ns(runs_for(n), total_ms, || SeaweedKernel::comb(&x, &y));
            let same = SeaweedKernel::comb_bitparallel(&x, &y) == SeaweedKernel::comb(&x, &y);
            (
                ref_ns.to_string(),
                format!("{:.2}", ref_ns as f64 / fast_ns as f64),
                if same { "yes" } else { "no" }.to_string(),
            )
        } else {
            (String::new(), String::new(), String::new())
        };
        comb.row(vec![
            n.to_string(),
            COMB_M.to_string(),
            ref_ns,
            fast_ns.to_string(),
            speedup,
            format!("{cells_per_us:.0}"),
            identical,
        ]);
    }

    // -------------------------------------------------------------------- mul
    let mut mul = Table::new(vec![
        "n",
        "ref ns",
        "ws ns",
        "batch ns/inst",
        "speedup",
        "elems/us",
        "identical",
    ]);
    for &n in &sizes {
        let pa = random_perm_rows(n, 0xA0 + n as u64);
        let pb = random_perm_rows(n, 0xB0 + n as u64);
        let instances: Vec<(PermutationMatrix, PermutationMatrix)> = (0..BATCH_K as u64)
            .map(|i| {
                (
                    PermutationMatrix::from_rows(random_perm_rows(n, 2 * i + 1)),
                    PermutationMatrix::from_rows(random_perm_rows(n, 2 * i + 2)),
                )
            })
            .collect();
        // Interleave the three variants round-robin so ambient load spikes hit
        // them equally; best-of across rounds then cancels the noise instead of
        // skewing one side of the speedup ratio.
        let (mut ref_ns, mut ws_ns, mut batch_total) = (u64::MAX, u64::MAX, u64::MAX);
        for _ in 0..runs_for(n) {
            ref_ns = ref_ns.min(bench_ns(1, total_ms / 10, || mul_rows_reference(&pa, &pb)));
            ws_ns = ws_ns.min(bench_ns(1, total_ms / 10, || mul_rows(&pa, &pb)));
            batch_total = batch_total.min(bench_ns(1, total_ms / 10, || mul_batch(&instances)));
        }
        let batch_ns = batch_total / instances.len() as u64;
        let identical = mul_rows(&pa, &pb) == mul_rows_reference(&pa, &pb)
            && mul_batch(&instances)
                .iter()
                .zip(&instances)
                .all(|(c, (a, b))| c.rows() == mul_rows_reference(a.rows(), b.rows()));
        mul.row(vec![
            n.to_string(),
            ref_ns.to_string(),
            ws_ns.to_string(),
            batch_ns.to_string(),
            format!("{:.2}", ref_ns as f64 / ws_ns as f64),
            format!("{:.0}", n as f64 / ws_ns as f64 * 1e3),
            if identical { "yes" } else { "no" }.to_string(),
        ]);
    }

    // ------------------------------------------------------- comb-par params
    let sweep_n = sizes.last().copied().unwrap_or(1 << 10).min(1 << 15);
    let sx = random_sequence(COMB_M, COMB_M as u32, 0xD0);
    let sy = random_sequence(sweep_n, COMB_M as u32, 0xD1);
    let mut params_table = Table::new(vec!["n", "min block", "max comb cols", "ns"]);
    for min_block in [64usize, 256, 1024] {
        for max_comb_cols in [1024usize, 4096, 16384] {
            let params = CombParams {
                min_block,
                max_comb_cols,
            };
            let ns = bench_ns(runs_for(sweep_n), total_ms, || {
                SeaweedKernel::comb_par_with(&sx, &sy, &params)
            });
            params_table.row(vec![
                sweep_n.to_string(),
                min_block.to_string(),
                max_comb_cols.to_string(),
                ns.to_string(),
            ]);
        }
    }

    if opts.json {
        println!(
            "{}",
            json_envelope(
                "exp_kernel_bench",
                &[
                    ("comb", comb.render_json()),
                    ("mul", mul.render_json()),
                    ("comb_par_params", params_table.render_json()),
                ]
            )
        );
        return;
    }
    println!(
        "E7: local kernel wall-clock (best-of timing, {} threads)\n",
        opts.effective_threads()
    );
    println!("seaweed comb — bit-parallel fast path vs crossing-history oracle (m = {COMB_M})\n");
    println!("{}", comb.render());
    println!(
        "steady-ant ⊡ — arena workspace / data-parallel batch vs allocate-per-level reference\n"
    );
    println!("{}", mul.render());
    println!("comb_par CombParams sweep (n = {sweep_n})\n");
    println!("{}", params_table.render());
    println!(
        "Reading: `identical` must be \"yes\" wherever the reference runs — the optimized\n\
         kernels are bit-identical, only faster. The comb reference column stops at\n\
         n = {REF_COMB_CAP} (its crossing bitset is quadratic; the fast path is linear-space\n\
         and continues), and the mul speedup column is the arena workspace against the\n\
         allocate-per-level recursion on the same operands."
    );
}
