//! Experiment E6 — Corollary 1.3.1: exact LCS through the Hunt–Szymanski reduction.
//! Reports correctness against the quadratic DP, the number of matching pairs
//! (the quantity behind the Õ(n²) total-space requirement) and the MPC round count.
//!
//! Run with: `cargo run --release -p bench --bin exp_lcs [-- --json --threads N]`

use bench_suite::{json_envelope, random_sequence, ExpOpts, Table};
use lis_mpc::lcs::lcs_mpc;
use monge_mpc::MulParams;
use mpc_runtime::{Cluster, MpcConfig};
use seaweed_lis::baselines::lcs_length_dp;

fn main() {
    let opts = ExpOpts::from_env();
    let mut table = Table::new(vec![
        "n",
        "alphabet",
        "match pairs",
        "pairs/n²",
        "LCS",
        "DP check",
        "rounds",
    ]);
    for &(n, alphabet) in &[
        (512usize, 4u32),
        (512, 64),
        (1024, 16),
        (2048, 256),
        (4096, 1024),
    ] {
        let a = random_sequence(n, alphabet, 11 + n as u64);
        let b = random_sequence(n, alphabet, 23 + n as u64);
        let dp = lcs_length_dp(&a, &b);
        let mut cluster = Cluster::new(MpcConfig::lenient(n * n, 0.5));
        let (lcs, pairs) = lcs_mpc(&mut cluster, &a, &b, &MulParams::default());
        assert_eq!(lcs, dp);
        table.row(vec![
            n.to_string(),
            alphabet.to_string(),
            pairs.to_string(),
            format!("{:.4}", pairs as f64 / (n * n) as f64),
            lcs.to_string(),
            "ok".to_string(),
            cluster.rounds().to_string(),
        ]);
    }
    if opts.json {
        println!(
            "{}",
            json_envelope("exp_lcs", &[("rows", table.render_json())])
        );
        return;
    }
    println!("E6: LCS via Hunt–Szymanski on the MPC simulator\n");
    println!("{}", table.render());
    println!(
        "Reading: the pair count — and with it the required total space — scales as ~n²/|Σ|,\n\
         which is exactly why Corollary 1.3.1 assumes the Õ(n²) total-space regime; small\n\
         alphabets are the expensive case, large alphabets approach linear total space."
    );
}
