//! Experiment E6 — Corollary 1.3.1: exact LCS through the Hunt–Szymanski reduction.
//! Reports correctness against a sequential baseline (the quadratic DP up to
//! `n = 4096`, the `O(P log² P)` seaweed reduction beyond it), the number of
//! matching pairs (the quantity behind the Õ(n²) total-space requirement), the
//! MPC round count and the (must-be-zero) space-violation count.
//!
//! Run with: `cargo run --release -p bench --bin exp_lcs
//! [-- --json --threads N --max-n N]` (a `--max-n` of 8192 or more extends the
//! fixed case list with string lengths doubling from 8192 up to it, using a
//! sparse `|Σ| = n/4` alphabet so the pair count stays near linear on the
//! large sizes).

use bench_suite::{json_envelope, random_sequence, size_sweep, ExpOpts, Table};
use lis_mpc::lcs::lcs_mpc;
use monge_mpc::MulParams;
use mpc_runtime::{Cluster, MpcConfig};
use seaweed_lis::baselines::lcs_length_dp;
use seaweed_lis::lcs::lcs_via_lis;

/// Largest size still checked against the quadratic DP.
const DP_CHECK_MAX: usize = 4096;

fn main() {
    let opts = ExpOpts::from_env();
    let mut table = Table::new(vec![
        "n",
        "alphabet",
        "match pairs",
        "pairs/n²",
        "LCS",
        "check",
        "rounds",
        "comm/n",
        "peak load",
        "violations",
    ]);
    let mut cases: Vec<(usize, u32)> =
        vec![(512, 4), (512, 64), (1024, 16), (2048, 256), (4096, 1024)];
    for n in size_sweep(8192, 4096, opts.max_n) {
        cases.push((n, (n / 4) as u32));
    }
    for (n, alphabet) in cases {
        let a = random_sequence(n, alphabet, 11 + n as u64);
        let b = random_sequence(n, alphabet, 23 + n as u64);
        let mut cluster = Cluster::new(MpcConfig::new(n * n, 0.5).recording());
        let (lcs, pairs) = lcs_mpc(&mut cluster, &a, &b, &MulParams::default());
        let check = if n <= DP_CHECK_MAX {
            assert_eq!(lcs, lcs_length_dp(&a, &b));
            "dp"
        } else {
            assert_eq!(lcs, lcs_via_lis(&a, &b));
            "seaweed"
        };
        let ledger = cluster.ledger();
        table.row(vec![
            n.to_string(),
            alphabet.to_string(),
            pairs.to_string(),
            format!("{:.4}", pairs as f64 / (n * n) as f64),
            lcs.to_string(),
            check.to_string(),
            cluster.rounds().to_string(),
            format!("{:.1}", ledger.communication as f64 / n as f64),
            ledger.max_machine_load.to_string(),
            ledger.space_violations.to_string(),
        ]);
    }
    if opts.json {
        println!(
            "{}",
            json_envelope("exp_lcs", &[("rows", table.render_json())])
        );
        return;
    }
    println!("E6: LCS via Hunt–Szymanski on the MPC simulator\n");
    println!("{}", table.render());
    println!(
        "Reading: the pair count — and with it the required total space — scales as ~n²/|Σ|,\n\
         which is exactly why Corollary 1.3.1 assumes the Õ(n²) total-space regime; small\n\
         alphabets are the expensive case, large alphabets approach linear total space. The\n\
         distributed sort-join and the strict LIS pipeline keep the violations column at zero."
    );
}
