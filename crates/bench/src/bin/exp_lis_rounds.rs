//! Experiment E4 — Theorem 1.3: the exact-LIS round count grows as `Θ(log n)`.
//! The harness fits `rounds ≈ a · log₂(n) + b` and reports the per-level round cost,
//! which must stay flat as n grows — alongside the communication volume, the peak
//! per-machine load and the (must-be-zero) space-violation count of the strict
//! space-conformant pipeline. Each size also runs the witness-enabled pipeline
//! (`lis_witness_mpc`): the `wit rounds` / `wit ratio` columns track the
//! traceback's overhead over length-only, asserted ≤ 2× (the recovered witness
//! is validated against the input on every row). A third run per size injects
//! a machine kill mid-merge (`rec rounds` / `rec ratio` columns): checkpoint
//! replication plus the repair must reproduce the fault-free outputs bit for
//! bit at ≤ 2× the length-only rounds, with zero space violations. The `ms` /
//! `wit ms` / `rec ms` columns record the simulated pipelines' wall-clock time,
//! tracking the bit-parallel comb and arena-backed steady-ant hot paths that do
//! the actual local work beneath the round accounting.
//!
//! Run with: `cargo run --release -p bench --bin exp_lis_rounds
//! [-- --json --threads N --max-n N]` (the size grid doubles from 2^11 up to
//! `--max-n`, default 2^15).

use bench_suite::{json_envelope, noisy_trend, size_sweep, ExpOpts, Table};
use lis_mpc::{lis_kernel_mpc, lis_witness_mpc};
use monge_mpc::MulParams;
use mpc_runtime::{Cluster, FaultPlan, MpcConfig};
use seaweed_lis::baselines::lis_length_patience;

fn main() {
    let opts = ExpOpts::from_env();
    let delta = 0.5;
    let mut table = Table::new(vec![
        "n",
        "LIS",
        "levels",
        "rounds",
        "rounds/level",
        "rounds/log2 n",
        "comm/n",
        "peak load",
        "budget s",
        "violations",
        "wit rounds",
        "wit ratio",
        "rec rounds",
        "rec ratio",
        "ms",
        "wit ms",
        "rec ms",
    ]);
    let mut samples = Vec::new();
    let mut sizes = size_sweep(1 << 11, 1 << 15, opts.max_n);
    if sizes.is_empty() {
        // --max-n below the default base: run that single size.
        sizes.push(opts.max_n.unwrap_or(1 << 11).max(16));
    }
    for n in sizes {
        let seq = noisy_trend(n, (n / 3).max(2) as u32, 0xBEEF + n as u64);
        let expected = lis_length_patience(&seq);
        let mut cluster = Cluster::new(MpcConfig::new(n, delta).recording());
        let started = std::time::Instant::now();
        let outcome = lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(outcome.length, expected, "correctness check at n = {n}");
        let rounds = cluster.rounds();

        // The witness-enabled pipeline on a fresh cluster: same kernel work
        // plus the O(log n)-round traceback; validate the witness and pin the
        // overhead to ≤ 2× of length-only.
        let mut witness_cluster = Cluster::new(MpcConfig::new(n, delta).recording());
        let witness_started = std::time::Instant::now();
        let traced = lis_witness_mpc(&mut witness_cluster, &seq, &MulParams::default());
        let witness_ms = witness_started.elapsed().as_secs_f64() * 1e3;
        let witness = traced.witness.expect("witness requested");
        assert_eq!(witness.len(), expected, "witness length at n = {n}");
        assert!(
            witness.windows(2).all(|w| seq[w[0]] < seq[w[1]]),
            "invalid witness at n = {n}"
        );
        let witness_rounds = witness_cluster.rounds();
        let ratio = witness_rounds as f64 / rounds.max(1) as f64;
        assert!(
            ratio <= 2.0,
            "witness recovery overhead {ratio:.2}× exceeds 2× at n = {n}"
        );

        // Fault-injected pipeline: kill machine 0 (owner of node 0 of every
        // merge level) mid-way through the merge phase and recover. Outputs
        // must be bit-identical to the fault-free witness run; the recovery
        // overhead (checkpoint replication + one repair) stays ≤ 2×.
        let (lo, hi) = witness_cluster
            .ledger()
            .superstep_span_of("lis-merge-L")
            .expect("merge levels present");
        let plan = FaultPlan::kill(0, lo + (hi - lo) / 2);
        let mut recovery_cluster =
            Cluster::new(MpcConfig::new(n, delta).recording().with_faults(plan));
        let recovery_started = std::time::Instant::now();
        let recovered = lis_witness_mpc(&mut recovery_cluster, &seq, &MulParams::default());
        let recovery_ms = recovery_started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(recovered.length, expected, "recovered length at n = {n}");
        assert_eq!(
            recovered.kernel, traced.kernel,
            "recovered kernel diverged at n = {n}"
        );
        assert_eq!(
            recovered.witness.as_deref(),
            Some(witness.as_slice()),
            "recovered witness diverged at n = {n}"
        );
        assert_eq!(recovery_cluster.ledger().kills(), 1, "the kill must fire");
        assert_eq!(
            recovery_cluster.ledger().space_violations,
            0,
            "recovery must stay space-conformant at n = {n}"
        );
        let recovery_rounds = recovery_cluster.rounds();
        // Overhead against the witness run it recovers (same work + faults).
        let recovery_ratio = recovery_rounds as f64 / witness_rounds.max(1) as f64;
        assert!(
            recovery_ratio <= 2.0,
            "recovery overhead {recovery_ratio:.2}× exceeds 2× at n = {n}"
        );

        let ledger = cluster.ledger();
        samples.push(((n as f64).log2(), rounds as f64));
        table.row(vec![
            n.to_string(),
            outcome.length.to_string(),
            outcome.levels.to_string(),
            rounds.to_string(),
            format!("{:.1}", rounds as f64 / outcome.levels.max(1) as f64),
            format!("{:.1}", rounds as f64 / (n as f64).log2()),
            format!("{:.1}", ledger.communication as f64 / n as f64),
            ledger.max_machine_load.to_string(),
            cluster.config().space.to_string(),
            ledger.space_violations.to_string(),
            witness_rounds.to_string(),
            format!("{ratio:.2}"),
            recovery_rounds.to_string(),
            format!("{recovery_ratio:.2}"),
            format!("{wall_ms:.1}"),
            format!("{witness_ms:.1}"),
            format!("{recovery_ms:.1}"),
        ]);
    }
    // Least-squares fit rounds = a·log2(n) + b (degenerate with one sample:
    // slope 0, intercept = the single measurement).
    let k = samples.len() as f64;
    let sx: f64 = samples.iter().map(|s| s.0).sum();
    let sy: f64 = samples.iter().map(|s| s.1).sum();
    let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
    let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
    let (a, b) = if samples.len() >= 2 {
        let a = (k * sxy - sx * sy) / (k * sxx - sx * sx);
        (a, (sy - a * sx) / k)
    } else {
        (0.0, sy)
    };

    if opts.json {
        println!(
            "{}",
            json_envelope(
                "exp_lis_rounds",
                &[
                    ("rows", table.render_json()),
                    ("fit_slope", format!("{a:.3}")),
                    ("fit_intercept", format!("{b:.3}")),
                ]
            )
        );
        return;
    }
    println!("E4: LIS rounds vs n (δ = {delta})\n");
    println!("{}", table.render());
    println!("least-squares fit: rounds ≈ {a:.1} · log2(n) {b:+.1}");
    println!(
        "Reading: the measured rounds follow a·log2(n)+b with a stable per-level cost — the\n\
         O(log n) fully-scalable exact-LIS bound of Theorem 1.3 — and the violations column\n\
         must be all-zero: the pipeline is space-conformant (budget-sized base blocks,\n\
         ordinal-multicast routing), which the CI strict leg asserts. The wit columns run\n\
         the witness-enabled pipeline (recorded merge tree + top-down traceback): its round\n\
         overhead over length-only is asserted ≤ 2× on every row. The rec columns re-run the\n\
         witness pipeline with machine 0 killed mid-merge: level checkpoints + O(1)-round\n\
         repair reproduce the fault-free outputs bit for bit, also asserted ≤ 2×. The ms\n\
         columns are wall-clock per pipeline run — the trajectory the local-kernel work\n\
         (bit-parallel comb, arena steady-ant) makes feasible out to n = 2^20 and beyond."
    );
}
