//! Experiment E2 — Theorem 1.1 headline: the round count of one implicit unit-Monge
//! multiplication is flat in `n` (for the paper's parameters) and compares against
//! the §1.4 warmup baseline whose recursion depth — and hence round count — grows
//! with `log n`.
//!
//! Run with: `cargo run --release -p bench-suite --bin exp_mul_rounds`

use bench_suite::{random_permutation, Table};
use monge_mpc::MulParams;
use mpc_runtime::{Cluster, MpcConfig};

fn measure(n: usize, delta: f64, params: &MulParams) -> (u64, u64, usize) {
    let a = random_permutation(n, 1000 + n as u64);
    let b = random_permutation(n, 2000 + n as u64);
    let mut cluster = Cluster::new(MpcConfig::new(n, delta));
    let _ = monge_mpc::mul(&mut cluster, &a, &b, params);
    let l = cluster.ledger();
    (l.rounds, l.communication, l.max_machine_load)
}

fn main() {
    println!("E2: rounds of one ⊡ multiplication vs n and δ\n");
    println!(
        "(\"paper\" rows use H = 8 — at these sizes the asymptotic n^{{(1-δ)/10}} is still ≈ 2 —\n\
         the warmup baseline keeps the binary splits of §1.4.)\n"
    );
    let mut table = Table::new(vec![
        "δ",
        "n",
        "rounds (paper, H=8)",
        "rounds (warmup H=2)",
        "comm (paper)",
        "peak load",
    ]);
    let paper = MulParams::default().with_h(8);
    for &delta in &[0.25, 0.5, 0.75] {
        // δ = 0.75 shrinks the grid spacing to n^{1/4}; cap n there to keep the
        // simulation wall-clock reasonable.
        let sizes: &[usize] = if delta < 0.7 {
            &[1 << 12, 1 << 14, 1 << 16]
        } else {
            &[1 << 12, 1 << 14]
        };
        for &n in sizes {
            let (rounds, comm, load) = measure(n, delta, &paper);
            let (warmup_rounds, _, _) = measure(n, delta, &MulParams::warmup());
            table.row(vec![
                format!("{delta}"),
                n.to_string(),
                rounds.to_string(),
                warmup_rounds.to_string(),
                comm.to_string(),
                load.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Reading: for fixed δ the H = 8 rounds stay (near-)constant as n grows 16×, because the\n\
         recursion depth log_H(n/s) barely moves; the warmup baseline's depth — and with it the\n\
         round count — grows with log n. This is the Theorem 1.1 vs §1.4 gap."
    );
}
