//! Experiment E2 — Theorem 1.1 headline: the round count of one implicit unit-Monge
//! multiplication is flat in `n` (for the paper's parameters) and compares against
//! the §1.4 warmup baseline whose recursion depth — and hence round count — grows
//! with `log n`. Also reports wall-clock time of the simulator's local phases,
//! which scales with `--threads` (the round counts must not).
//!
//! Run with: `cargo run --release -p bench --bin exp_mul_rounds [-- --json --threads N]`

use bench_suite::{json_envelope, random_permutation, ExpOpts, Table};
use monge_mpc::MulParams;
use mpc_runtime::{Cluster, MpcConfig};
use std::time::Instant;

struct Measurement {
    rounds: u64,
    comm: u64,
    load: usize,
    wall_ms: f64,
}

fn measure(n: usize, delta: f64, params: &MulParams) -> Measurement {
    let a = random_permutation(n, 1000 + n as u64);
    let b = random_permutation(n, 2000 + n as u64);
    // Forced fan-outs (H = 8 at every δ) sit outside the paper's parameter
    // regime; record any overshoot instead of panicking.
    let mut cluster = Cluster::new(MpcConfig::lenient(n, delta));
    let start = Instant::now();
    let _ = monge_mpc::mul(&mut cluster, &a, &b, params);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let l = cluster.ledger();
    Measurement {
        rounds: l.rounds,
        comm: l.communication,
        load: l.max_machine_load,
        wall_ms,
    }
}

fn main() {
    let opts = ExpOpts::from_env();
    let mut table = Table::new(vec![
        "δ",
        "n",
        "rounds (paper, H=8)",
        "rounds (warmup H=2)",
        "comm (paper)",
        "peak load",
        "wall ms (paper)",
        "wall ms (warmup)",
    ]);
    let paper = MulParams::default().with_h(8);
    for &delta in &[0.25, 0.5, 0.75] {
        // δ = 0.75 shrinks the grid spacing to n^{1/4}; cap n there to keep the
        // simulation wall-clock reasonable.
        let sizes: &[usize] = if delta < 0.7 {
            &[1 << 12, 1 << 14, 1 << 16]
        } else {
            &[1 << 12, 1 << 14]
        };
        for &n in sizes {
            let m = measure(n, delta, &paper);
            let w = measure(n, delta, &MulParams::warmup());
            table.row(vec![
                format!("{delta}"),
                n.to_string(),
                m.rounds.to_string(),
                w.rounds.to_string(),
                m.comm.to_string(),
                m.load.to_string(),
                format!("{:.1}", m.wall_ms),
                format!("{:.1}", w.wall_ms),
            ]);
        }
    }

    if opts.json {
        println!(
            "{}",
            json_envelope("exp_mul_rounds", &[("rows", table.render_json())])
        );
        return;
    }
    println!("E2: rounds of one ⊡ multiplication vs n and δ\n");
    println!(
        "(\"paper\" rows use H = 8 — at these sizes the asymptotic n^{{(1-δ)/10}} is still ≈ 2 —\n\
         the warmup baseline keeps the binary splits of §1.4. Wall-clock columns measure the\n\
         simulator's local phases on {} thread(s); rounds are thread-count invariant.)\n",
        opts.effective_threads()
    );
    println!("{}", table.render());
    println!(
        "Reading: for fixed δ the H = 8 rounds stay (near-)constant as n grows 16×, because the\n\
         recursion depth log_H(n/s) barely moves; the warmup baseline's depth — and with it the\n\
         round count — grows with log n. This is the Theorem 1.1 vs §1.4 gap."
    );
}
