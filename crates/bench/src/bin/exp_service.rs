//! Experiment E8 — the serving path: hot-kernel cache, batched witness
//! descents, and incremental append, measured end-to-end over the line-JSON
//! socket.
//!
//! Three claims, each asserted in-binary at the full problem size:
//!
//! * **cached ≥ 10× uncached** — re-ingesting a known sequence dedupes to a
//!   hash lookup on the hot kernel instead of a rebuild.
//! * **batched ≥ 2× one-at-a-time** — a multi-range witness request rides one
//!   traceback descent ([`lis_mpc::recover_batch`]); the same ranges issued
//!   serially pay one descent each. Answers are asserted identical.
//! * **append recombs only the spine** — extending the sequence by a block
//!   touches the O(log n) merge-tree spine: the cluster ledger's
//!   `service-append` communication equals exactly the items the spine
//!   recombed, and the resulting kernel is bit-identical to a full rebuild.
//!
//! Run with: `cargo run --release -p bench --bin exp_service
//! [-- --json --threads N --max-n N]` (default n = 2^16; the speedup
//! assertions arm at n ≥ 2^16, so smoke runs at smaller `--max-n` only check
//! correctness).

use bench_suite::{bench_ns, json_envelope, random_sequence, ExpOpts, Table};
use lis_mpc::AppendableLisKernel;
use lis_service::{Client, Server, ServiceConfig, Value};
use mpc_runtime::{Cluster, MpcConfig};
use seaweed_lis::lis::lis_kernel;
use std::time::{Duration, Instant};

/// Value ranges per batched witness request.
const RANGES: usize = 16;

/// Comb granularity of served kernels.
const BLOCK: usize = 1024;

/// Elements appended in the incremental-append measurement.
const APPEND_BLOCK: usize = 4096;

fn ingest_line(seq: &[u32]) -> String {
    let rendered: Vec<String> = seq.iter().map(|v| v.to_string()).collect();
    format!(r#"{{"op":"ingest","seq":[{}]}}"#, rendered.join(","))
}

fn expect_ok(response: &Value, what: &str) {
    assert_eq!(
        response.get("ok").and_then(Value::as_bool),
        Some(true),
        "{what} failed: {response}"
    );
}

/// Nested value ranges `[i·step, span)` — every query has a distinct, large
/// answer, so the batch exercises real per-query traffic.
fn value_ranges(span: u32) -> Vec<(u32, u32)> {
    (0..RANGES as u32)
        .map(|i| (i * (span / (2 * RANGES as u32)), span))
        .collect()
}

fn witness_positions(response: &Value) -> Vec<Vec<i64>> {
    response
        .get("witnesses")
        .and_then(Value::as_arr)
        .expect("witnesses")
        .iter()
        .map(|w| {
            w.get("positions")
                .and_then(Value::as_arr)
                .expect("positions")
                .iter()
                .map(|p| p.as_int().expect("position"))
                .collect()
        })
        .collect()
}

fn main() {
    let opts = ExpOpts::from_env();
    let n = opts.max_n.unwrap_or(1 << 16);
    let full_size = n >= (1 << 16);
    let span = (n as u32) / 2;
    let seq = random_sequence(n, span, 0xE8);

    let server = Server::start(ServiceConfig {
        block_size: BLOCK.min(n.max(8) / 4),
        batch_window: Duration::from_millis(1),
        ..ServiceConfig::default()
    })
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    // ------------------------------------------------------ cached vs uncached
    let line = ingest_line(&seq);
    let start = Instant::now();
    let built = client.request(&line).expect("ingest");
    let uncached_ns = start.elapsed().as_nanos() as u64;
    expect_ok(&built, "ingest");
    assert_eq!(built.get("cached").and_then(Value::as_bool), Some(false));
    let id = built
        .get("id")
        .and_then(Value::as_str)
        .expect("kernel id")
        .to_string();
    let lis = built.get("lis").and_then(Value::as_int).expect("lis") as usize;

    let cached_ns = bench_ns(5, 20, || {
        let response = client.request(&line).expect("re-ingest");
        assert_eq!(response.get("cached").and_then(Value::as_bool), Some(true));
        response
    });
    let cache_speedup = uncached_ns as f64 / cached_ns as f64;

    // ---------------------------------------------------- batched vs serial
    let ranges = value_ranges(span);
    let serial_lines: Vec<String> = ranges
        .iter()
        .map(|(lo, hi)| format!(r#"{{"op":"witness","id":"{id}","lo":{lo},"hi":{hi}}}"#))
        .collect();
    let rendered: Vec<String> = ranges
        .iter()
        .map(|(lo, hi)| format!("[{lo},{hi}]"))
        .collect();
    let batched_line = format!(
        r#"{{"op":"witness","id":"{id}","ranges":[{}]}}"#,
        rendered.join(",")
    );

    // Warm the trace so neither arm pays the one-time recording cost.
    expect_ok(
        &client.request(&serial_lines[0]).expect("warm"),
        "warm witness",
    );

    let start = Instant::now();
    let serial_answers: Vec<Vec<Vec<i64>>> = serial_lines
        .iter()
        .map(|line| {
            let response = client.request(line).expect("serial witness");
            expect_ok(&response, "serial witness");
            witness_positions(&response)
        })
        .collect();
    let serial_ns = start.elapsed().as_nanos() as u64;

    let start = Instant::now();
    let batched = client.request(&batched_line).expect("batched witness");
    let batched_ns = start.elapsed().as_nanos() as u64;
    expect_ok(&batched, "batched witness");
    assert_eq!(
        batched.get("batch").and_then(Value::as_int),
        Some(RANGES as i64),
        "the whole request must ride one descent"
    );
    let batched_answers = witness_positions(&batched);
    let flat_serial: Vec<Vec<i64>> = serial_answers.into_iter().flatten().collect();
    assert_eq!(
        batched_answers, flat_serial,
        "batched and one-at-a-time witnesses must agree"
    );
    let batch_speedup = serial_ns as f64 / batched_ns as f64;

    // ------------------------------------------------------------- append
    // Ledger proof, measured directly on the append engine: the spine recomb
    // is everything the append charges, and the folded kernel is bit-identical
    // to a from-scratch build of the full sequence.
    let block = random_sequence(APPEND_BLOCK.min(n), span, 0xE9);
    let mut full = seq.clone();
    full.extend_from_slice(&block);

    let mut cluster = Cluster::new(MpcConfig::lenient(full.len(), 0.5));
    let mut incremental = AppendableLisKernel::build(&mut cluster, &seq, BLOCK.min(n.max(8) / 4));
    incremental.kernel(&mut cluster); // settle the root before measuring
    let comm_before = cluster.ledger().scope_comm("service-append");
    let start = Instant::now();
    let stats = incremental.append(&mut cluster, &block);
    let append_ns = start.elapsed().as_nanos() as u64;
    let comm_delta = cluster.ledger().scope_comm("service-append") - comm_before;
    assert_eq!(
        comm_delta, stats.recombed_items as u64,
        "the ledger must charge exactly the recombed spine"
    );
    let spine_bound = full.len().next_power_of_two().trailing_zeros() as usize + 1;
    assert!(
        stats.spine_len <= spine_bound,
        "spine has {} blocks, bound is {spine_bound}",
        stats.spine_len
    );
    assert!(
        stats.recombed_items < full.len() + 3 * spine_bound * BLOCK.max(APPEND_BLOCK),
        "append recombed {} items — that is a rebuild, not a spine walk",
        stats.recombed_items
    );
    assert_eq!(
        incremental.kernel(&mut cluster),
        &lis_kernel(&full),
        "incremental append must be bit-identical to a full rebuild"
    );

    let start = Instant::now();
    let mut rebuilt_cluster = Cluster::new(MpcConfig::lenient(full.len(), 0.5));
    let rebuilt = AppendableLisKernel::build(&mut rebuilt_cluster, &full, BLOCK.min(n.max(8) / 4));
    let rebuild_ns = start.elapsed().as_nanos() as u64;
    let rebuild_comm = rebuilt_cluster.ledger().scope_comm("service-append");
    assert!(
        comm_delta < rebuild_comm,
        "spine recomb ({comm_delta}) must move less data than a rebuild ({rebuild_comm})"
    );
    drop(rebuilt);

    // The same append over the wire: the id re-keys to the full-sequence
    // hash, so ingesting `full` afterwards is a cache hit.
    let rendered: Vec<String> = block.iter().map(|v| v.to_string()).collect();
    let response = client
        .request(&format!(
            r#"{{"op":"append","id":"{id}","block":[{}]}}"#,
            rendered.join(",")
        ))
        .expect("append");
    expect_ok(&response, "append");
    let appended_id = response
        .get("id")
        .and_then(Value::as_str)
        .expect("new id")
        .to_string();
    let dedupe = client.request(&ingest_line(&full)).expect("full ingest");
    expect_ok(&dedupe, "full ingest");
    assert_eq!(
        dedupe.get("id").and_then(Value::as_str),
        Some(appended_id.as_str()),
        "append must re-key to the full-sequence content hash"
    );
    assert_eq!(dedupe.get("cached").and_then(Value::as_bool), Some(true));

    // ------------------------------------------------------------ wrap up
    let stats_response = client.request(r#"{"op":"stats"}"#).expect("stats");
    expect_ok(&stats_response, "stats");
    assert_eq!(
        stats_response.get("violations").and_then(Value::as_int),
        Some(0),
        "serving must not record space violations"
    );

    if full_size {
        assert!(
            cache_speedup >= 10.0,
            "cached ingest must be ≥ 10× uncached at n = 2^16 (got {cache_speedup:.1}×)"
        );
        assert!(
            batch_speedup >= 2.0,
            "batched witnesses must be ≥ 2× one-at-a-time at n = 2^16 (got {batch_speedup:.1}×)"
        );
    }

    let mut serving = Table::new(vec![
        "n",
        "LIS",
        "uncached ms",
        "cached us",
        "cache speedup",
        "queries",
        "serial ms",
        "batched ms",
        "batch speedup",
    ]);
    serving.row(vec![
        n.to_string(),
        lis.to_string(),
        format!("{:.1}", uncached_ns as f64 / 1e6),
        format!("{:.1}", cached_ns as f64 / 1e3),
        format!("{cache_speedup:.1}"),
        RANGES.to_string(),
        format!("{:.1}", serial_ns as f64 / 1e6),
        format!("{:.1}", batched_ns as f64 / 1e6),
        format!("{batch_speedup:.1}"),
    ]);

    let mut append = Table::new(vec![
        "n",
        "block",
        "spine len",
        "spine merges",
        "recombed items",
        "ledger comm",
        "rebuild comm",
        "append ms",
        "rebuild ms",
        "speedup",
        "identical",
    ]);
    append.row(vec![
        seq.len().to_string(),
        block.len().to_string(),
        stats.spine_len.to_string(),
        stats.spine_merges.to_string(),
        stats.recombed_items.to_string(),
        comm_delta.to_string(),
        rebuild_comm.to_string(),
        format!("{:.1}", append_ns as f64 / 1e6),
        format!("{:.1}", rebuild_ns as f64 / 1e6),
        format!("{:.1}", rebuild_ns as f64 / append_ns as f64),
        "true".to_string(),
    ]);

    client.request(r#"{"op":"shutdown"}"#).expect("shutdown");
    server.join();

    if opts.json {
        println!(
            "{}",
            json_envelope(
                "exp_service",
                &[
                    ("rows", serving.render_json()),
                    ("append", append.render_json()),
                ],
            )
        );
    } else {
        println!("serving (n = {n}):\n{}", serving.render());
        println!("\nincremental append:\n{}", append.render());
    }
}
