//! Experiment E3 — fully-scalable space behaviour: per-machine peak load and
//! communication against the `s = Õ(n^{1−δ})` budget as δ varies, for both the
//! multiplication (Theorem 1.1) and LIS (Theorem 1.3).
//!
//! With the space-conformant combine (tree grid phase + pierced-interval
//! routing) the ⊡ rows stay within the budget at every δ — zero violations —
//! while the LIS pipeline still overshoots by the constant factor of its block
//! kernels (see ROADMAP). The clusters run in record-only mode so the table can
//! show the overshoots instead of panicking.
//!
//! Run with: `cargo run --release -p bench --bin exp_space [-- --json --threads N]`

use bench_suite::{json_envelope, noisy_trend, random_permutation, ExpOpts, Table};
use lis_mpc::lis_length_mpc;
use monge_mpc::MulParams;
use mpc_runtime::{Cluster, MpcConfig};

fn main() {
    let opts = ExpOpts::from_env();
    let n = 1usize << 14;
    let mut table = Table::new(vec![
        "workload",
        "δ",
        "machines",
        "budget s",
        "peak load",
        "peak/s",
        "violations",
        "comm/n",
    ]);

    for &delta in &[0.25, 0.4, 0.5, 0.6, 0.75] {
        // Multiplication.
        let a = random_permutation(n, 1);
        let b = random_permutation(n, 2);
        let mut cluster = Cluster::new(MpcConfig::lenient(n, delta));
        let _ = monge_mpc::mul(&mut cluster, &a, &b, &MulParams::default());
        let l = cluster.ledger();
        let cfg = cluster.config();
        table.row(vec![
            "⊡ (Thm 1.1)".to_string(),
            format!("{delta}"),
            cfg.machines.to_string(),
            cfg.space.to_string(),
            l.max_machine_load.to_string(),
            format!("{:.2}", l.max_machine_load as f64 / cfg.space as f64),
            l.space_violations.to_string(),
            format!("{:.1}", l.communication as f64 / n as f64),
        ]);

        // LIS.
        let seq = noisy_trend(n, (n / 8) as u32, 3);
        let mut cluster = Cluster::new(MpcConfig::lenient(n, delta));
        let _ = lis_length_mpc(&mut cluster, &seq, &MulParams::default());
        let l = cluster.ledger();
        let cfg = cluster.config();
        table.row(vec![
            "LIS (Thm 1.3)".to_string(),
            format!("{delta}"),
            cfg.machines.to_string(),
            cfg.space.to_string(),
            l.max_machine_load.to_string(),
            format!("{:.2}", l.max_machine_load as f64 / cfg.space as f64),
            l.space_violations.to_string(),
            format!("{:.1}", l.communication as f64 / n as f64),
        ]);
    }
    if opts.json {
        println!(
            "{}",
            json_envelope("exp_space", &[("rows", table.render_json())])
        );
        return;
    }
    println!("E3: space profile at n = {n}\n");
    println!("{}", table.render());
    println!(
        "Reading: the per-machine budget shrinks as δ grows while the machine count grows. The\n\
         ⊡ rows run the space-conformant combine (H-ary tree grid phase, Lemma 3.12 pierced\n\
         routing) and must show zero violations at every δ — the CI strict leg asserts this.\n\
         The LIS rows still overshoot by the constant factor of their block kernels (each block\n\
         of size s combs a kernel of 2s seaweeds); making that path conformant is a ROADMAP item."
    );
}
