//! Experiment E3 — fully-scalable space behaviour: per-machine peak load and
//! communication against the `s = Õ(n^{1−δ})` budget as δ varies, for the
//! multiplication (Theorem 1.1), LIS (Theorem 1.3) and LCS (Corollary 1.3.1).
//!
//! With the space-conformant combine (tree grid phase + pierced-interval
//! ordinal-multicast routing) and the budget-sized LIS base blocks, every row
//! must show zero violations at every δ — the CI strict leg asserts this for
//! the ⊡ *and* the LIS/LCS rows. The clusters run in record-only mode so a
//! regression shows up as a nonzero count in the table instead of a panic.
//!
//! Run with: `cargo run --release -p bench --bin exp_space
//! [-- --json --threads N --max-n N]` (`--max-n` sets the instance size,
//! default 2^14; the LCS strings are `√n` long so the pair regime matches).

use bench_suite::{
    json_envelope, noisy_trend, random_permutation, random_sequence, ExpOpts, Table,
};
use lis_mpc::lcs::lcs_mpc;
use lis_mpc::{lis_length_mpc, lis_witness_mpc};
use monge_mpc::MulParams;
use mpc_runtime::{Cluster, FaultPlan, Ledger, MpcConfig};

fn main() {
    let opts = ExpOpts::from_env();
    let n = opts.max_n.unwrap_or(1 << 14);
    // Witness-phase aggregates across δ (the CI strict leg asserts these via
    // the JSON envelope: phases present, zero violations, rounds ≤ 2×).
    let mut witness_phases = 0usize;
    let mut witness_phase_violations = 0u64;
    let mut witness_round_ratio: f64 = 0.0;
    // Recovery aggregates across δ (same envelope contract: every scheduled
    // kill fires, recovery stays violation-free, overhead ≤ 2×).
    let mut recovery_kills = 0usize;
    let mut recovery_violations = 0u64;
    let mut recovery_round_ratio: f64 = 0.0;
    let mut table = Table::new(vec![
        "workload",
        "δ",
        "machines",
        "budget s",
        "rounds",
        "peak load",
        "peak/s",
        "violations",
        "comm/n",
    ]);
    let push_row = |table: &mut Table, workload: &str, cluster: &Cluster, scale: usize| {
        let l: &Ledger = cluster.ledger();
        let cfg = cluster.config();
        table.row(vec![
            workload.to_string(),
            format!("{}", cfg.delta),
            cfg.machines.to_string(),
            cfg.space.to_string(),
            l.rounds.to_string(),
            l.max_machine_load.to_string(),
            format!("{:.2}", l.max_machine_load as f64 / cfg.space as f64),
            l.space_violations.to_string(),
            format!("{:.1}", l.communication as f64 / scale as f64),
        ]);
    };

    for &delta in &[0.25, 0.4, 0.5, 0.6, 0.75] {
        // Multiplication.
        let a = random_permutation(n, 1);
        let b = random_permutation(n, 2);
        let mut cluster = Cluster::new(MpcConfig::new(n, delta).recording());
        let _ = monge_mpc::mul(&mut cluster, &a, &b, &MulParams::default());
        push_row(&mut table, "⊡ (Thm 1.1)", &cluster, n);

        // LIS.
        let seq = noisy_trend(n, (n / 8) as u32, 3);
        let mut cluster = Cluster::new(MpcConfig::new(n, delta).recording());
        let lis_len = lis_length_mpc(&mut cluster, &seq, &MulParams::default());
        let lis_rounds = cluster.rounds();
        push_row(&mut table, "LIS (Thm 1.3)", &cluster, n);

        // LIS with witness recovery: the top-down traceback (lis-witness-*
        // phases) must stay violation-free and cost ≤ 2× the length-only rounds.
        let mut cluster = Cluster::new(MpcConfig::new(n, delta).recording());
        let outcome = lis_witness_mpc(&mut cluster, &seq, &MulParams::default());
        let witness = outcome.witness.expect("witness requested");
        assert_eq!(
            witness.len(),
            lis_len,
            "witness length mismatch at δ = {delta}"
        );
        assert!(
            witness.windows(2).all(|w| seq[w[0]] < seq[w[1]]),
            "invalid witness at δ = {delta}"
        );
        let ledger = cluster.ledger();
        witness_phases += ledger
            .rounds_by_phase
            .keys()
            .filter(|k| k.starts_with("lis-witness-"))
            .count();
        witness_phase_violations += ledger
            .violations_by_phase
            .iter()
            .filter(|(k, _)| k.starts_with("lis-witness-"))
            .map(|(_, &v)| v)
            .sum::<u64>();
        witness_round_ratio =
            witness_round_ratio.max(cluster.rounds() as f64 / lis_rounds.max(1) as f64);
        push_row(&mut table, "LIS wit (Cor 1.3.2)", &cluster, n);

        // LIS under a machine kill: machine 0 (owner of node 0 of every merge
        // level) dies mid-merge; the level-checkpoint recovery must reproduce
        // the fault-free outputs bit for bit and stay within budget. Small δ
        // can fit the instance in a single base block (no merge levels): aim
        // the kill at the base phase instead, exercising the recovery-base
        // re-comb from the durable input.
        let target = cluster
            .ledger()
            .superstep_span_of("lis-merge-L")
            .map_or(2, |(lo, hi)| lo + (hi - lo) / 2);
        let plan = FaultPlan::kill(0, target);
        let mut faulted = Cluster::new(MpcConfig::new(n, delta).recording().with_faults(plan));
        let recovered = lis_witness_mpc(&mut faulted, &seq, &MulParams::default());
        assert_eq!(
            recovered.length, lis_len,
            "recovered length diverged at δ = {delta}"
        );
        assert_eq!(
            recovered.kernel, outcome.kernel,
            "recovered kernel diverged at δ = {delta}"
        );
        assert_eq!(
            recovered.witness.as_deref(),
            Some(witness.as_slice()),
            "recovered witness diverged at δ = {delta}"
        );
        let faulted_ledger = faulted.ledger();
        recovery_kills += faulted_ledger.kills();
        recovery_violations += faulted_ledger.space_violations;
        // Overhead against the witness run it recovers (same work + faults).
        recovery_round_ratio =
            recovery_round_ratio.max(faulted.rounds() as f64 / cluster.rounds().max(1) as f64);
        push_row(&mut table, "LIS rec (fault)", &faulted, n);

        // LCS: strings of length √n so the worst-case pair count matches the
        // n-item total-space budget of the other rows.
        let m = (n as f64).sqrt().round() as usize;
        let sa = random_sequence(m, (m / 4).max(2) as u32, 5);
        let sb = random_sequence(m, (m / 4).max(2) as u32, 7);
        let mut cluster = Cluster::new(MpcConfig::new(n, delta).recording());
        let _ = lcs_mpc(&mut cluster, &sa, &sb, &MulParams::default());
        push_row(&mut table, "LCS (Cor 1.3.1)", &cluster, n);
    }
    if opts.json {
        println!(
            "{}",
            json_envelope(
                "exp_space",
                &[
                    ("rows", table.render_json()),
                    ("witness_phases", witness_phases.to_string()),
                    (
                        "witness_phase_violations",
                        witness_phase_violations.to_string()
                    ),
                    (
                        "witness_max_round_ratio",
                        format!("{witness_round_ratio:.3}")
                    ),
                    ("recovery_kills", recovery_kills.to_string()),
                    ("recovery_violations", recovery_violations.to_string()),
                    (
                        "recovery_max_round_ratio",
                        format!("{recovery_round_ratio:.3}")
                    ),
                ]
            )
        );
        return;
    }
    println!("E3: space profile at n = {n}\n");
    println!("{}", table.render());
    println!(
        "Reading: the per-machine budget shrinks as δ grows while the machine count grows.\n\
         Every workload runs the space-conformant pipeline (H-ary tree grid phase, Lemma 3.12\n\
         pierced ordinal-multicast routing, budget-sized LIS base blocks, distributed\n\
         Hunt–Szymanski join) and must show zero violations at every δ — the CI strict leg\n\
         asserts this for the ⊡ rows and the LIS/LCS rows alike, including the witness\n\
         traceback ({witness_phases} lis-witness-* phases, {witness_phase_violations} violations, \
         ≤ {witness_round_ratio:.2}× the length-only rounds). The rec rows kill machine 0\n\
         mid-merge: level-checkpoint recovery reproduces the fault-free outputs bit for bit\n\
         ({recovery_kills} kills fired, {recovery_violations} violations, \
         ≤ {recovery_round_ratio:.2}× the fault-free witness rounds)."
    );
}
