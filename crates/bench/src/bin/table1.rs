//! Experiment E1 — reproduction of **Table 1** of the paper: round complexity and
//! scalability of massively-parallel LIS algorithms.
//!
//! The two executable rows are measured on the simulator: this paper's algorithm
//! (O(log n) rounds, fully scalable) and the §1.4 warmup baseline (binary splits,
//! Θ(log² n)-ish rounds in the multiplication depth). The published comparators
//! (KT10a, CHS23, IMS17) are reported analytically, as in the paper's table.
//!
//! Run with: `cargo run --release -p bench --bin table1 [-- --json --threads N]`

use bench_suite::{json_envelope, noisy_trend, ExpOpts, Table};
use lis_mpc::lis_kernel_mpc;
use monge_mpc::MulParams;
use mpc_runtime::{Cluster, MpcConfig};
use std::time::Instant;

fn measure(n: usize, delta: f64, params: &MulParams) -> (u64, usize, usize, f64) {
    let seq = noisy_trend(n, (n / 4).max(2) as u32, 0xC0FFEE + n as u64);
    let mut cluster = Cluster::new(MpcConfig::lenient(n, delta));
    let start = Instant::now();
    let outcome = lis_kernel_mpc(&mut cluster, &seq, params);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (
        cluster.rounds(),
        outcome.levels,
        cluster.ledger().max_machine_load,
        wall_ms,
    )
}

fn main() {
    let opts = ExpOpts::from_env();
    let delta = 0.5;
    let sizes = [1usize << 12, 1 << 14, 1 << 16];
    // At these input sizes the paper's asymptotic fan-out n^{(1-δ)/10} is still ≈ 2,
    // which would coincide with the warmup baseline; fixing H = 8 exhibits the
    // shallow-recursion regime the paper's analysis describes while the warmup keeps
    // its binary splits. Both rows solve the exact problem and are measured
    // identically.
    let paper_params = MulParams::default().with_h(8);

    let mut published = Table::new(vec!["reference", "rounds", "scalability", "approximation"]);
    published.row(vec!["[KT10a]", "O(log² n)", "δ < 1/3", "exact"]);
    published.row(vec!["[IMS17]", "O(log n)", "fully-scalable", "1 + ε"]);
    published.row(vec!["[IMS17]", "O(1)", "δ < 1/4", "1 + ε"]);
    published.row(vec!["[CHS23]", "O(log⁴ n)", "fully-scalable", "exact"]);
    published.row(vec!["this paper", "O(log n)", "fully-scalable", "exact"]);

    let mut measured = Table::new(vec![
        "algorithm",
        "n",
        "rounds",
        "merge levels",
        "rounds / log2(n)",
        "peak load / s",
        "wall ms",
    ]);
    for &n in &sizes {
        let s = MpcConfig::lenient(n, delta).space as f64;
        let log2n = (n as f64).log2();

        let (rounds, levels, load, wall_ms) = measure(n, delta, &paper_params);
        measured.row(vec![
            "this paper (H = 8)".to_string(),
            n.to_string(),
            rounds.to_string(),
            levels.to_string(),
            format!("{:.1}", rounds as f64 / log2n),
            format!("{:.2}", load as f64 / s),
            format!("{:.1}", wall_ms),
        ]);

        let (rounds, levels, load, wall_ms) = measure(n, delta, &MulParams::warmup());
        measured.row(vec![
            "warmup baseline (H = 2, §1.4)".to_string(),
            n.to_string(),
            rounds.to_string(),
            levels.to_string(),
            format!("{:.1}", rounds as f64 / log2n),
            format!("{:.2}", load as f64 / s),
            format!("{:.1}", wall_ms),
        ]);
    }

    if opts.json {
        println!(
            "{}",
            json_envelope(
                "table1",
                &[
                    ("published", published.render_json()),
                    ("measured", measured.render_json()),
                ]
            )
        );
        return;
    }
    println!("Table 1 (paper) — summary of massively parallel LIS algorithms");
    println!();
    println!("{}", published.render());
    println!(
        "Measured on the MPC simulator (δ = {delta}, {} thread(s)), exact LIS:",
        opts.effective_threads()
    );
    println!();
    println!("{}", measured.render());
    println!(
        "Reading: rounds / log2(n) stays flat for this paper's parameters (O(log n) total),\n\
         while the warmup baseline pays an extra Θ(log n) factor inside each multiplication,\n\
         mirroring the gap Table 1 reports between this paper and the prior exact algorithms."
    );
}
