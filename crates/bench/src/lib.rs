//! Shared helpers for the benchmark and experiment harness: deterministic workload
//! generators, command-line options, and table formatting (plain text and JSON)
//! used by the experiment binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use monge::PermutationMatrix;
use rand::prelude::*;

/// Command-line options shared by every `exp_*` / `table1` binary.
///
/// * `--json` — emit a machine-readable JSON document instead of the plain-text
///   tables, so perf PRs can diff numbers.
/// * `--threads N` — size the global thread pool before any work runs
///   (equivalent to `RAYON_NUM_THREADS=N`, but overriding it), so one binary
///   can be re-run at several thread counts to measure wall-clock speedup.
/// * `--grid-phase tree|reference` — restrict binaries that ablate the combine's
///   grid-phase strategy (currently `exp_ablation`) to one strategy; others
///   ignore it.
/// * `--max-n N` — scale the experiment's problem-size grid up to `N`
///   (binaries with a size sweep extend their grid; others size their single
///   instance from it).
#[derive(Clone, Debug, Default)]
pub struct ExpOpts {
    /// Emit JSON instead of plain-text tables.
    pub json: bool,
    /// Explicit thread-pool size (already applied by [`ExpOpts::from_env`]).
    pub threads: Option<usize>,
    /// Grid-phase restriction (`"tree"` or `"reference"`).
    pub grid_phase: Option<String>,
    /// Upper bound of the problem-size sweep (`--max-n`).
    pub max_n: Option<usize>,
}

impl ExpOpts {
    /// Parses `std::env::args`, applies `--threads` to the global pool, and
    /// returns the options. Unknown arguments print usage and exit.
    pub fn from_env() -> Self {
        fn usage(program: &str) -> ! {
            eprintln!(
                "usage: {program} [--json] [--threads N] [--grid-phase tree|reference] [--max-n N]"
            );
            std::process::exit(2);
        }
        let mut args = std::env::args();
        let program = args.next().unwrap_or_else(|| "exp".into());
        let mut opts = Self::default();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => opts.json = true,
                "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => opts.threads = Some(n),
                    _ => usage(&program),
                },
                "--max-n" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => opts.max_n = Some(n),
                    _ => usage(&program),
                },
                "--grid-phase" => match args.next().as_deref() {
                    Some(v @ ("tree" | "reference")) => opts.grid_phase = Some(v.to_string()),
                    _ => usage(&program),
                },
                other => match (
                    other.strip_prefix("--threads="),
                    other.strip_prefix("--grid-phase="),
                    other.strip_prefix("--max-n="),
                ) {
                    (Some(v), _, _) => match v.parse() {
                        Ok(n) if n > 0 => opts.threads = Some(n),
                        _ => usage(&program),
                    },
                    (_, Some(v @ ("tree" | "reference")), _) => {
                        opts.grid_phase = Some(v.to_string())
                    }
                    (_, _, Some(v)) => match v.parse() {
                        Ok(n) if n > 0 => opts.max_n = Some(n),
                        _ => usage(&program),
                    },
                    _ => usage(&program),
                },
            }
        }
        if let Some(n) = opts.threads {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .expect("configuring the global thread pool cannot fail");
        }
        opts
    }

    /// The thread count experiments should report: the explicit `--threads`
    /// value, or whatever the pool resolved from the environment.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(rayon::current_num_threads)
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Whether `s` matches the JSON number grammar exactly
/// (`-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`). Rust's `f64` parser is
/// laxer than JSON (`"+1"`, `"1."`, `".5"`), so cells must pass this check to
/// be emitted unquoted.
fn is_json_number(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    if b.first() == Some(&b'-') {
        i += 1;
    }
    let int_start = i;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    if i == int_start || (b[int_start] == b'0' && i - int_start > 1) {
        return false;
    }
    if i < b.len() && b[i] == b'.' {
        i += 1;
        let frac_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == frac_start {
            return false;
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        i += 1;
        if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
            i += 1;
        }
        let exp_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == exp_start {
            return false;
        }
    }
    i == b.len()
}

/// Renders a cell as a JSON value: numeric cells stay numbers, the rest
/// become strings.
fn json_cell(s: &str) -> String {
    if is_json_number(s) {
        s.to_string()
    } else {
        format!("\"{}\"", json_escape(s))
    }
}

/// Wraps named JSON fragments into one experiment document:
/// `{"experiment": ..., "threads": N, "<name>": <value>, ...}`.
///
/// `parts` values must already be valid JSON (e.g. from [`Table::render_json`]
/// or a bare number).
pub fn json_envelope(experiment: &str, parts: &[(&str, String)]) -> String {
    let mut out = format!(
        "{{\"experiment\":\"{}\",\"threads\":{}",
        json_escape(experiment),
        rayon::current_num_threads()
    );
    for (name, value) in parts {
        out.push_str(&format!(",\"{}\":{}", json_escape(name), value));
    }
    out.push('}');
    out
}

/// Doubling problem-size grid: `base, 2·base, …` up to `max_n` (when given)
/// or `default_max`. Used by the experiment binaries to honor `--max-n`; a
/// cap below `base` yields an *empty* grid, so a binary that appends the
/// sweep to a fixed case list can be held to the fixed list alone.
pub fn size_sweep(base: usize, default_max: usize, max_n: Option<usize>) -> Vec<usize> {
    let cap = max_n.unwrap_or(default_max);
    let mut ns = Vec::new();
    let mut n = base;
    while n <= cap {
        ns.push(n);
        n = n.saturating_mul(2);
    }
    ns
}

/// Deterministic random permutation of `0..n`.
pub fn random_permutation(n: usize, seed: u64) -> PermutationMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(&mut rng);
    PermutationMatrix::from_rows(v)
}

/// Deterministic random sequence with duplicates drawn from `0..alphabet`.
pub fn random_sequence(n: usize, alphabet: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..alphabet)).collect()
}

/// A noisy monotone series (LIS ≈ fraction of n), the workload used by the LIS
/// experiments so the answers are non-trivial in both directions.
pub fn noisy_trend(n: usize, noise: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| i as u32 + rng.gen_range(0..noise.max(1)))
        .collect()
}

/// Best-of wall-clock timing of `f` in nanoseconds: runs at least `min_runs`
/// times and until `min_total_ms` of accumulated time, whichever is later
/// (hard-capped at 1000 runs), and reports the fastest run. Best-of is robust
/// against scheduler noise for single-process kernels; the result is fed
/// through [`std::hint::black_box`] so the work is not optimized away.
pub fn bench_ns<R>(min_runs: usize, min_total_ms: u64, mut f: impl FnMut() -> R) -> u64 {
    let min_runs = min_runs.max(1);
    let min_total = std::time::Duration::from_millis(min_total_ms);
    let mut best = u64::MAX;
    let mut total = std::time::Duration::ZERO;
    let mut runs = 0usize;
    while runs < min_runs || (total < min_total && runs < 1000) {
        let start = std::time::Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        std::hint::black_box(&out);
        best = best.min(elapsed.as_nanos() as u64);
        total += elapsed;
        runs += 1;
    }
    best.max(1)
}

/// Simple fixed-width table printer for the experiment binaries.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as a JSON array of row objects keyed by the headers;
    /// numeric-looking cells are emitted as JSON numbers.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            for (j, (header, cell)) in self.headers.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json_escape(header), json_cell(cell)));
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_honors_the_cap() {
        assert_eq!(size_sweep(2048, 8192, None), vec![2048, 4096, 8192]);
        assert_eq!(size_sweep(2048, 8192, Some(4096)), vec![2048, 4096]);
        // A cap below the base yields an empty grid (no silent clamping up).
        assert!(size_sweep(8192, 4096, None).is_empty());
        assert!(size_sweep(8192, 4096, Some(4096)).is_empty());
        assert_eq!(size_sweep(8192, 4096, Some(16384)), vec![8192, 16384]);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_permutation(100, 7), random_permutation(100, 7));
        assert_eq!(random_sequence(50, 10, 3), random_sequence(50, 10, 3));
        assert_eq!(noisy_trend(50, 10, 3), noisy_trend(50, 10, 3));
    }

    #[test]
    fn table_renders_aligned_rows() {
        let mut t = Table::new(vec!["algo", "rounds"]);
        t.row(vec!["ours", "42"]);
        t.row(vec!["warmup", "130"]);
        let rendered = t.render();
        assert!(rendered.contains("ours"));
        assert!(rendered.lines().count() == 4);
    }

    #[test]
    fn table_renders_json_rows() {
        let mut t = Table::new(vec!["algo", "rounds", "ratio"]);
        t.row(vec!["ours \"fast\"", "42", "0.50"]);
        assert_eq!(
            t.render_json(),
            r#"[{"algo":"ours \"fast\"","rounds":42,"ratio":0.50}]"#
        );
    }

    #[test]
    fn json_cells_follow_json_number_grammar() {
        // Rust-parseable but JSON-invalid numbers must be quoted.
        let mut t = Table::new(vec!["a", "b", "c", "d", "e"]);
        t.row(vec!["+1", "1.", ".5", "007", "-0.5e+3"]);
        assert_eq!(
            t.render_json(),
            r#"[{"a":"+1","b":"1.","c":".5","d":"007","e":-0.5e+3}]"#
        );
    }

    #[test]
    fn json_envelope_wraps_parts() {
        let doc = json_envelope("exp_x", &[("rows", "[1,2]".to_string())]);
        assert!(doc.starts_with("{\"experiment\":\"exp_x\",\"threads\":"));
        assert!(doc.ends_with(",\"rows\":[1,2]}"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
