//! Shared helpers for the benchmark and experiment harness: deterministic workload
//! generators and plain-text table formatting used by the experiment binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use monge::PermutationMatrix;
use rand::prelude::*;

/// Deterministic random permutation of `0..n`.
pub fn random_permutation(n: usize, seed: u64) -> PermutationMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(&mut rng);
    PermutationMatrix::from_rows(v)
}

/// Deterministic random sequence with duplicates drawn from `0..alphabet`.
pub fn random_sequence(n: usize, alphabet: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..alphabet)).collect()
}

/// A noisy monotone series (LIS ≈ fraction of n), the workload used by the LIS
/// experiments so the answers are non-trivial in both directions.
pub fn noisy_trend(n: usize, noise: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| i as u32 + rng.gen_range(0..noise.max(1)))
        .collect()
}

/// Simple fixed-width table printer for the experiment binaries.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_permutation(100, 7), random_permutation(100, 7));
        assert_eq!(random_sequence(50, 10, 3), random_sequence(50, 10, 3));
        assert_eq!(noisy_trend(50, 10, 3), noisy_trend(50, 10, 3));
    }

    #[test]
    fn table_renders_aligned_rows() {
        let mut t = Table::new(vec!["algo", "rounds"]);
        t.row(vec!["ours", "42"]);
        t.row(vec!["warmup", "130"]);
        let rendered = t.render();
        assert!(rendered.contains("ours"));
        assert!(rendered.lines().count() == 4);
    }
}
