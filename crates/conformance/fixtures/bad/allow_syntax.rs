// Seed for the allow grammar itself: a reason-less allow is a finding, so
// suppressions can never silently rot into blanket waivers.

pub fn fan_out(work: Vec<u64>) -> u64 {
    // conformance: allow(raw-spawn)
    let handle = std::thread::spawn(move || work.iter().sum());
    handle.join().unwrap_or(0)
}
