// conformance-fixture: kernel-crate
// L2 seed: iterating a HashMap in a deterministic kernel crate — the visit
// order varies run to run, so anything accumulated from it is nondeterministic.

use std::collections::HashMap;

pub fn label_sum(weights: &HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (k, w) in weights.iter() {
        out.push(k ^ w);
    }
    out
}
