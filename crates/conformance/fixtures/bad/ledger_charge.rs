// conformance-fixture: runtime-cluster
// L3 seed: a public communicating primitive on the Cluster that never charges
// the ledger — its supersteps would be invisible to the space/round proofs.

pub struct Cluster;

impl Cluster {
    pub fn broadcast(&mut self, payload: &[u64]) -> Vec<u64> {
        payload.to_vec()
    }
}
