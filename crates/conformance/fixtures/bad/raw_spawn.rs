// L5 seed: a raw thread::spawn outside the thread shims — parallelism that
// bypasses the pool's deterministic chunking and budget discipline.

pub fn fan_out(work: Vec<u64>) -> u64 {
    let handle = std::thread::spawn(move || work.iter().sum());
    handle.join().unwrap_or(0)
}
