// L1 seed: an `unsafe` block with no justification comment near it.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
