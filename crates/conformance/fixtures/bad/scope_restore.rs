// L3 seed: a phase scope set but never restored — every later ledger entry
// would silently inherit this function's label.

pub struct Runtime;

impl Runtime {
    pub fn set_phase_scope(&mut self, _scope: Option<&'static str>) {}

    pub fn distribute(&mut self) {
        self.set_phase_scope(Some("distribute"));
        // …work…
    }
}
