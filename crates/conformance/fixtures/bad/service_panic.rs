// conformance-fixture: service-crate
// L4 seed: an unwrap on the request path — one malformed request would tear
// down the whole connection instead of answering `{"ok":false}`.

pub fn handle(line: &str) -> String {
    let n: u64 = line.trim().parse().unwrap();
    format!("{{\"ok\":true,\"n\":{n}}}")
}
