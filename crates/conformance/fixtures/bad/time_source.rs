// conformance-fixture: kernel-crate
// L2 seed: wall-clock reads inside a kernel crate leak timing into results.

use std::time::Instant;

pub fn stamp() -> u128 {
    Instant::now().elapsed().as_nanos()
}
