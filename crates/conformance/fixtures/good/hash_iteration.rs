// conformance-fixture: kernel-crate
// L2 counterpart: hash iteration is fine when the statement sorts the result
// (order-independent) or the container is a BTreeMap to begin with.

use std::collections::{BTreeMap, HashMap};

pub fn labels_sorted(weights: &HashMap<u64, u64>) -> Vec<u64> {
    let mut out: Vec<u64> = weights.keys().copied().collect();
    out.sort_unstable();
    out
}

pub fn label_walk(ordered: &BTreeMap<u64, u64>) -> Vec<u64> {
    ordered.iter().map(|(k, w)| k ^ w).collect()
}
