// conformance-fixture: runtime-cluster
// L3 counterpart: the primitive charges directly, and a sibling that only
// delegates to a charging method is also accepted (fixpoint delegation).

pub struct Superstep;
pub struct Cluster;

impl Cluster {
    pub fn broadcast(&mut self, payload: &[u64]) -> Vec<u64> {
        self.apply_step(payload.len());
        payload.to_vec()
    }

    pub fn broadcast_all(&mut self, payload: &[u64]) -> Vec<u64> {
        self.broadcast(payload)
    }

    fn apply_step(&mut self, _words: usize) {}
}
