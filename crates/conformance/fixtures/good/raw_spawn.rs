// L5 counterpart: a long-lived service thread with a justified allow naming
// its shutdown story.

pub fn watchdog(stop: std::sync::Arc<std::sync::atomic::AtomicBool>) {
    // conformance: allow(raw-spawn) — single long-lived watchdog; exits when
    // `stop` is set by the owner's Drop.
    std::thread::spawn(move || {
        while !stop.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::yield_now();
        }
    });
}
