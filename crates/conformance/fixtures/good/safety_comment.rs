// L1 counterpart: the same block, documented.

pub fn read_first(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees at least one byte, so the pointer
    // read is in bounds.
    unsafe { *bytes.as_ptr() }
}
