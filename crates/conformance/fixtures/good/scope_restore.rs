// L3 counterpart: the scope is restored to None before returning.

pub struct Runtime;

impl Runtime {
    pub fn set_phase_scope(&mut self, _scope: Option<&'static str>) {}

    pub fn distribute(&mut self) {
        self.set_phase_scope(Some("distribute"));
        // …work…
        self.set_phase_scope(None);
    }
}
