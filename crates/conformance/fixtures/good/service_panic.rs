// conformance-fixture: service-crate
// L4 counterpart: the failure comes back as a structured error response.

pub fn handle(line: &str) -> String {
    match line.trim().parse::<u64>() {
        Ok(n) => format!("{{\"ok\":true,\"n\":{n}}}"),
        Err(e) => format!("{{\"ok\":false,\"error\":\"{e}\"}}"),
    }
}
