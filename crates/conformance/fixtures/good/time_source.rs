// conformance-fixture: kernel-crate
// L2 counterpart: a justified allow names the lint and says why it is sound.

use std::time::Instant;

pub fn bench_probe() -> u128 {
    // conformance: allow(time-source) — diagnostic-only timing, never feeds
    // back into any computed value or ledger entry.
    Instant::now().elapsed().as_nanos()
}
