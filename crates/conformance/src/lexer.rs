//! A lightweight Rust lexer: just enough tokenization for lexical lint passes.
//!
//! The lexer's one job is to never confuse the *contexts* a pattern can occur
//! in: code, comments, string/char literals, and lifetimes. Lint passes match
//! on code tokens (`Ident`/`Punct`), so `"thread::spawn"` inside a string or a
//! doc-comment example never fires a lint, while comments stay available for
//! the `// SAFETY:` and `// conformance: allow(...)` vocabularies. Handles raw
//! strings (`r#"…"#`), byte strings, nested block comments, raw identifiers
//! and the `'a` lifetime vs `'a'` char-literal ambiguity.

/// What a token is; the lint passes dispatch on this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// Single punctuation character (`.`, `:`, `{`, …).
    Punct,
    /// String, raw-string, byte-string or char literal (contents opaque).
    Literal,
    /// Numeric literal.
    Number,
    /// `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, possibly nested.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True for tokens lint passes treat as code (not comments).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Tokenizes `src`. Unterminated literals/comments are tolerated (the rest of
/// the file becomes one token): the linter must never panic on weird input.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let count_lines = |s: &str| s.bytes().filter(|&c| c == b'\n').count() as u32;

    while i < b.len() {
        let c = b[i];
        let start_line = line;
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(b.len(), |p| i + p);
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: src[i..end].to_string(),
                    line: start_line,
                });
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let text = &src[i..j];
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: text.to_string(),
                    line: start_line,
                });
                line += count_lines(text);
                i = j;
            }
            b'"' => {
                let j = scan_string(b, i + 1);
                let text = &src[i..j];
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: text.to_string(),
                    line: start_line,
                });
                line += count_lines(text);
                i = j;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let j = scan_raw_or_byte_string(b, i);
                let text = &src[i..j];
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: text.to_string(),
                    line: start_line,
                });
                line += count_lines(text);
                i = j;
            }
            b'\'' => {
                // Lifetime `'a` (identifier after the quote, no closing quote
                // right behind it) vs char literal `'a'` / `'\n'`.
                let after = i + 1;
                let is_lifetime =
                    after < b.len() && (b[after].is_ascii_alphabetic() || b[after] == b'_') && {
                        let mut j = after;
                        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                            j += 1;
                        }
                        j >= b.len() || b[j] != b'\''
                    };
                if is_lifetime {
                    let mut j = after;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i..j].to_string(),
                        line: start_line,
                    });
                    i = j;
                } else {
                    let mut j = after;
                    while j < b.len() && b[j] != b'\'' {
                        if b[j] == b'\\' {
                            j += 1; // skip the escaped byte
                        }
                        j += 1;
                    }
                    j = (j + 1).min(b.len());
                    let text = &src[i..j];
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: text.to_string(),
                        line: start_line,
                    });
                    line += count_lines(text);
                    i = j;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line: start_line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'.')
                {
                    // Stop `1..n` from swallowing the range operator.
                    if b[j] == b'.' && j + 1 < b.len() && b[j + 1] == b'.' {
                        break;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Number,
                    text: src[i..j].to_string(),
                    line: start_line,
                });
                i = j;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line: start_line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Scans a plain `"…"` body starting after the opening quote; returns the
/// index one past the closing quote.
fn scan_string(b: &[u8], mut j: usize) -> usize {
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

/// Does `r…"`, `br…"` or `b"` start at `i`? (Raw identifiers `r#type` don't:
/// they have an identifier character after the `#`.)
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        let hashes_start = j;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
        // `r#ident` (raw identifier) has exactly one `#` then an ident char.
        if j < b.len() && b[j] == b'"' {
            return true;
        }
        if j == hashes_start {
            return false; // `r` alone is just an identifier prefix
        }
        return false;
    }
    j < b.len() && b[j] == b'"' && j > i // only the `b"…"` byte-string form
}

/// Scans a raw/byte string starting at `i`; returns the index one past it.
fn scan_raw_or_byte_string(b: &[u8], i: usize) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == b'"');
    j += 1; // opening quote
    if raw {
        while j < b.len() {
            if b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < b.len() && b[k] == b'#' && seen < hashes {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k;
                }
            }
            j += 1;
        }
        b.len()
    } else {
        scan_string(b, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("fn foo(x: u32) -> u32 { x + 1 }");
        assert_eq!(toks[0], (TokKind::Ident, "fn".into()));
        assert_eq!(toks[1], (TokKind::Ident, "foo".into()));
        assert!(toks.iter().any(|t| t == &(TokKind::Number, "1".into())));
    }

    #[test]
    fn strings_are_opaque() {
        let toks = lex(r#"let s = "thread::spawn inside a string";"#);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "spawn"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"has \"quotes\" and unsafe words\"#; let t = 2;";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.text == "unsafe"));
        assert!(toks.iter().any(|t| t.text == "t"));
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let src = "a\n/* outer /* inner */ still comment */\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokKind::BlockComment);
        assert_eq!(toks[2].text, "b");
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = lex("fn f<'a>(x: &'a u32) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            2
        );
    }

    #[test]
    fn doc_comment_examples_are_comments() {
        let src = "//! let x = foo().unwrap();\nfn real() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "unwrap"));
    }

    #[test]
    fn byte_strings() {
        let toks = lex("let b = b\"panic! bytes\"; let r = br##\"raw panic!\"##;");
        assert!(!toks.iter().any(|t| t.text == "panic"));
    }
}
