//! # conformance — the repo's own static analyzer
//!
//! The workspace rests on invariants no compiler checks: bit-identical
//! outputs and ledgers at every thread count, ledger discipline on every
//! communicating [`Cluster`] primitive, a panic-free service boundary, and a
//! single `unsafe` lifetime erasure whose soundness is an argued protocol
//! property. This crate makes those invariants *machine-checked*: a
//! lightweight Rust lexer ([`lexer`]), a per-file context model ([`model`]),
//! and a set of lint passes ([`passes`]) that walk the workspace and fail the
//! build on violations.
//!
//! Run it with `cargo run -p conformance -- check` from the workspace root
//! (CI's `analysis` leg does). Suppress a finding site-by-site with
//!
//! ```text
//! // conformance: allow(<lint>) — <reason>
//! ```
//!
//! where the reason is mandatory (an allow with no rationale is itself a
//! finding) and covers the directive's line plus the three lines below it.
//! The lint vocabulary is [`passes::LINTS`].
//!
//! [`Cluster`]: ../mpc_runtime/struct.Cluster.html

pub mod lexer;
pub mod model;
pub mod passes;

use model::{Diagnostic, SourceFile};
use std::path::{Path, PathBuf};

/// Lints one source text as if it lived at `rel` inside the workspace.
pub fn check_source(rel: &Path, src: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel, src);
    let mut diags = passes::lint_file(&file);
    for (line, name) in file.allow_names() {
        if !passes::known_lint(name) {
            diags.push(Diagnostic {
                lint: "allow-syntax",
                file: rel.to_path_buf(),
                line,
                msg: format!(
                    "allow names unknown lint `{name}` (known: {})",
                    passes::LINTS
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
    diags
}

/// Lints one file on disk; `root` anchors the workspace-relative path used
/// for scope decisions and display.
pub fn check_file(root: &Path, path: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let src = std::fs::read_to_string(path)?;
    let rel = path.strip_prefix(root).unwrap_or(path);
    Ok(check_source(rel, &src))
}

/// Directories the workspace walk descends into (relative to the root).
const WALK_ROOTS: [&str; 5] = ["crates", "shims", "src", "tests", "examples"];

/// Walks the workspace under `root` and lints every `.rs` file, skipping
/// build output and the seeded-violation fixtures.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for top in WALK_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut diags = Vec::new();
    for f in &files {
        diags.extend(check_file(root, f)?);
    }
    Ok(diags)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures/` holds seeded violations; `target/` holds build junk.
            if name == "fixtures" || name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_allow_name_is_reported() {
        let diags = check_source(
            Path::new("x.rs"),
            "// conformance: allow(no-such-lint) — because\nfn f() {}\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, "allow-syntax");
        assert!(diags[0].msg.contains("no-such-lint"));
    }

    #[test]
    fn clean_source_has_no_findings() {
        let diags = check_source(
            Path::new("crates/foo/src/lib.rs"),
            "pub fn f() -> u32 { 1 }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
