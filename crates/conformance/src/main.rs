//! `conformance` CLI. Usage:
//!
//! ```text
//! conformance check [--root <dir>] [paths…]   lint the workspace (or paths)
//! conformance list                            print the lint vocabulary
//! ```
//!
//! `check` exits 0 when no finding survives the allow directives, 1 when any
//! does, 2 on usage/IO errors. With explicit paths it lints exactly those
//! files/directories (fixture headers may retarget their crate scope), which
//! is how the seeded-violation fixtures are exercised from CI.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("list") => {
            for (name, what) in conformance::passes::LINTS {
                println!("{name:16} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut root: Option<PathBuf> = None;
            let mut paths: Vec<PathBuf> = Vec::new();
            while let Some(arg) = it.next() {
                if arg == "--root" {
                    match it.next() {
                        Some(r) => root = Some(PathBuf::from(r)),
                        None => return usage("--root needs a directory"),
                    }
                } else {
                    paths.push(PathBuf::from(arg));
                }
            }
            run_check(root, paths)
        }
        Some(other) => usage(&format!("unknown command `{other}`")),
        None => usage("missing command"),
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("error: {why}");
    eprintln!("usage: conformance check [--root <dir>] [paths…] | conformance list");
    ExitCode::from(2)
}

fn run_check(root: Option<PathBuf>, paths: Vec<PathBuf>) -> ExitCode {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = root
        .or_else(|| conformance::find_workspace_root(&cwd))
        .unwrap_or(cwd);

    let result = if paths.is_empty() {
        conformance::check_workspace(&root)
    } else {
        let mut diags = Vec::new();
        let mut err = None;
        for p in &paths {
            let outcome = if p.is_dir() {
                check_dir(&root, p)
            } else {
                conformance::check_file(&root, p)
            };
            match outcome {
                Ok(d) => diags.extend(d),
                Err(e) => {
                    err = Some(std::io::Error::new(
                        e.kind(),
                        format!("{}: {e}", p.display()),
                    ))
                }
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(diags),
        }
    };

    match result {
        Ok(diags) if diags.is_empty() => {
            println!("conformance: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!(
                "conformance: {} finding{} — see `conformance list` for the vocabulary; \
                 suppress a justified site with `// conformance: allow(<lint>) — <reason>`",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn check_dir(root: &Path, dir: &Path) -> std::io::Result<Vec<conformance::model::Diagnostic>> {
    let mut files = Vec::new();
    collect(dir, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for f in &files {
        diags.extend(conformance::check_file(root, f)?);
    }
    Ok(diags)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
