//! The per-file analysis model shared by every lint pass: lexed tokens plus
//! the three layers of repo-specific context — which *crate scope* the file
//! belongs to, which lines are *test code*, and which lines carry
//! `// conformance: allow(<lint>) — <reason>` suppressions.

use crate::lexer::{lex, Tok, TokKind};
use std::path::{Path, PathBuf};

/// Which invariant regime a file falls under. Determined from its workspace
/// path; fixtures override it with a `// conformance-fixture: <scope>` header
/// so seeded-violation files exercise the same passes from anywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrateScope {
    /// Deterministic kernel/pipeline crates: `seaweed-lis`, `monge`,
    /// `monge-mpc`, `lis-mpc`, `mpc-runtime`. Order- and time-dependence here
    /// breaks the bit-identical-ledger invariant.
    Kernel,
    /// The `lis-service` crate: the panic-free service boundary.
    Service,
    /// The file defining the `Cluster` communicating primitives.
    RuntimeCluster,
    /// The hand-rolled thread pool and the loom-mini shim: the only places
    /// allowed to spawn raw threads (their job is managing threads).
    ThreadShim,
    /// Everything else (bench harness, other shims, facade, tests, examples).
    Other,
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub lint: &'static str,
    pub file: PathBuf,
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.msg
        )
    }
}

/// A span of a `fn` item: its name and the token range of its body.
#[derive(Clone, Debug)]
pub struct FnSpan {
    pub name: String,
    pub line: u32,
    pub is_pub: bool,
    /// Token indices of the body, *excluding* the outer braces.
    pub body: std::ops::Range<usize>,
}

/// A lexed file plus its lint context.
pub struct SourceFile {
    /// Path relative to the workspace root (display + scope decisions).
    pub rel: PathBuf,
    pub toks: Vec<Tok>,
    pub scope: CrateScope,
    /// Whole file is test/bench/example context (`tests/`, `benches/`,
    /// `examples/`).
    pub test_file: bool,
    /// Line ranges covered by `#[cfg(test)]` items.
    test_regions: Vec<(u32, u32)>,
    /// `(line, lint)` pairs from well-formed allow directives.
    allows: Vec<(u32, String)>,
    /// Diagnostics produced while building the model (malformed directives).
    pub model_diags: Vec<Diagnostic>,
}

/// How many lines below it an allow directive covers (the directive line
/// itself plus this many following lines — enough for a comment directly
/// above a short multi-line statement).
const ALLOW_WINDOW: u32 = 3;

impl SourceFile {
    pub fn parse(rel: &Path, src: &str) -> SourceFile {
        let toks = lex(src);
        let mut scope = scope_from_path(rel, &toks);
        let test_file = is_test_path(rel);
        let mut allows = Vec::new();
        let mut model_diags = Vec::new();

        for t in &toks {
            if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            if let Some(forced) = fixture_scope(&t.text) {
                scope = forced;
            }
            match parse_allow(&t.text) {
                AllowParse::None => {}
                AllowParse::Ok(lints) => {
                    for l in lints {
                        allows.push((t.line, l));
                    }
                }
                AllowParse::Malformed(why) => model_diags.push(Diagnostic {
                    lint: "allow-syntax",
                    file: rel.to_path_buf(),
                    line: t.line,
                    msg: why,
                }),
            }
        }

        let test_regions = find_test_regions(&toks);
        SourceFile {
            rel: rel.to_path_buf(),
            toks,
            scope,
            test_file,
            test_regions,
            allows,
            model_diags,
        }
    }

    /// Is `line` inside test code (a test file or a `#[cfg(test)]` region)?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_file
            || self
                .test_regions
                .iter()
                .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// The `(line, lint-name)` pairs of every allow directive in the file
    /// (for unknown-name validation by the engine).
    pub fn allow_names(&self) -> impl Iterator<Item = (u32, &str)> + '_ {
        self.allows.iter().map(|(l, n)| (*l, n.as_str()))
    }

    /// Is `lint` suppressed at `line` by a nearby allow directive?
    pub fn allowed(&self, lint: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(l, name)| name == lint && (*l..=l.saturating_add(ALLOW_WINDOW)).contains(&line))
    }

    /// Code tokens only (comments stripped), with their original indices into
    /// `self.toks` so passes can look back at neighbouring comments.
    pub fn code(&self) -> Vec<(usize, &Tok)> {
        self.toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_code())
            .collect()
    }

    /// All `fn` items with resolvable brace-delimited bodies.
    pub fn fns(&self) -> Vec<FnSpan> {
        let code = self.code();
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < code.len() {
            if code[i].1.text == "fn" && code[i].1.kind == TokKind::Ident {
                // `pub` possibly separated by `(crate)` etc. sits left of any
                // of: const/async/unsafe/extern "…"/fn.
                let mut j = i;
                let mut is_pub = false;
                while j > 0 {
                    j -= 1;
                    let t = code[j].1;
                    match t.text.as_str() {
                        "pub" => {
                            is_pub = true;
                            break;
                        }
                        "const" | "async" | "unsafe" | "extern" | "crate" | ")" | "(" => {}
                        _ => break,
                    }
                }
                let Some(name_tok) = code.get(i + 1) else {
                    break;
                };
                let name = name_tok.1.text.clone();
                // Find the body `{`: first `{` at angle/paren/bracket depth 0.
                // `where` clauses and return types contain no stray braces in
                // this codebase; generic `<` depth is approximated by skipping
                // to the parameter `(` first.
                let mut k = i + 2;
                let mut depth = 0i32;
                let mut open = None;
                while k < code.len() {
                    match code[k].1.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            open = Some(k);
                            break;
                        }
                        ";" if depth == 0 => break, // trait method declaration
                        _ => {}
                    }
                    k += 1;
                }
                if let Some(open) = open {
                    let mut brace = 1i32;
                    let mut close = open + 1;
                    while close < code.len() && brace > 0 {
                        match code[close].1.text.as_str() {
                            "{" => brace += 1,
                            "}" => brace -= 1,
                            _ => {}
                        }
                        close += 1;
                    }
                    out.push(FnSpan {
                        name,
                        line: code[i].1.line,
                        is_pub,
                        body: code[open + 1].0..code[close - 1].0,
                    });
                }
            }
            i += 1;
        }
        out
    }
}

/// `// conformance-fixture: <scope>` header (fixture files only).
fn fixture_scope(comment: &str) -> Option<CrateScope> {
    let rest = comment.trim_start_matches('/').trim();
    let tag = rest.strip_prefix("conformance-fixture:")?.trim();
    match tag {
        "kernel-crate" => Some(CrateScope::Kernel),
        "service-crate" => Some(CrateScope::Service),
        "runtime-cluster" => Some(CrateScope::RuntimeCluster),
        "thread-shim" => Some(CrateScope::ThreadShim),
        _ => Some(CrateScope::Other),
    }
}

enum AllowParse {
    None,
    Ok(Vec<String>),
    Malformed(String),
}

/// Parses `conformance: allow(<lint>[, <lint>…]) — <reason>` out of a comment.
/// The reason is mandatory: an allow with no rationale is itself a finding.
fn parse_allow(comment: &str) -> AllowParse {
    // Directives are plain `//` comments whose body *starts* with
    // `conformance:` — doc comments and prose that merely mention the word
    // (or quote the syntax in an example) are never directives.
    let body = comment.trim_start();
    let Some(body) = body.strip_prefix("//") else {
        return AllowParse::None;
    };
    if body.starts_with('/') || body.starts_with('!') {
        return AllowParse::None; // doc comment
    }
    let Some(rest) = body.trim_start().strip_prefix("conformance:") else {
        return AllowParse::None;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return AllowParse::Malformed(
            "malformed directive: expected `conformance: allow(<lint>) — <reason>`".to_string(),
        );
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return AllowParse::Malformed("allow directive is missing `(<lint>)`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return AllowParse::Malformed("allow directive is missing the closing `)`".to_string());
    };
    let names: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        return AllowParse::Malformed("allow directive names no lint".to_string());
    }
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '-', ':'])
        .trim();
    if reason.is_empty() {
        return AllowParse::Malformed(format!(
            "allow({}) has no reason — write `conformance: allow({}) — <why this is sound>`",
            names.join(", "),
            names.join(", ")
        ));
    }
    AllowParse::Ok(names)
}

fn is_test_path(rel: &Path) -> bool {
    rel.components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests") | Some("benches") | Some("examples")
        )
    })
}

fn scope_from_path(rel: &Path, toks: &[Tok]) -> CrateScope {
    let p = rel.to_string_lossy().replace('\\', "/");
    if p.starts_with("shims/rayon") || p.starts_with("shims/loom") {
        return CrateScope::ThreadShim;
    }
    if p == "crates/mpc-runtime/src/cluster.rs" {
        return CrateScope::RuntimeCluster;
    }
    if p.starts_with("crates/lis-service/src") {
        return CrateScope::Service;
    }
    const KERNEL: [&str; 5] = [
        "crates/seaweed-lis/src",
        "crates/monge/src",
        "crates/monge-mpc/src",
        "crates/lis-mpc/src",
        "crates/mpc-runtime/src",
    ];
    if KERNEL.iter().any(|k| p.starts_with(k)) {
        return CrateScope::Kernel;
    }
    // A file that defines `impl Cluster` is the cluster file wherever it
    // lives (keeps the lint honest if the module is ever moved).
    let code: Vec<&Tok> = toks.iter().filter(|t| t.is_code()).collect();
    for w in code.windows(2) {
        if w[0].text == "impl" && w[1].text == "Cluster" {
            return CrateScope::RuntimeCluster;
        }
    }
    CrateScope::Other
}

/// Line ranges covered by `#[cfg(test)]` followed by an item with a brace
/// body (a `mod tests { … }` or a single test fn).
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let code: Vec<&Tok> = toks.iter().filter(|t| t.is_code()).collect();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 4 < code.len() {
        let is_cfg_test = code[i].text == "#"
            && code[i + 1].text == "["
            && code[i + 2].text == "cfg"
            && code[i + 3].text == "("
            && code[i + 4].text == "test";
        if is_cfg_test {
            // Skip to the first `{` after the attribute's closing `]`.
            let mut j = i + 5;
            let mut bracket = 2i32; // inside `[` and `(`
            while j < code.len() && bracket > 0 {
                match code[j].text.as_str() {
                    "[" | "(" => bracket += 1,
                    "]" | ")" => bracket -= 1,
                    _ => {}
                }
                j += 1;
            }
            while j < code.len() && code[j].text != "{" {
                if code[j].text == ";" {
                    break; // e.g. `#[cfg(test)] use …;`
                }
                j += 1;
            }
            if j < code.len() && code[j].text == "{" {
                let start = code[i].line;
                let mut depth = 1i32;
                let mut k = j + 1;
                while k < code.len() && depth > 0 {
                    match code[k].text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                let end = code.get(k.saturating_sub(1)).map_or(start, |t| t.line);
                regions.push((start, end));
                i = k;
                continue;
            }
        }
        i += 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn allow_directive_round_trip() {
        let src = "// conformance: allow(raw-spawn) — accept loop owns its threads\nfn f() {}\n";
        let f = SourceFile::parse(Path::new("crates/x/src/lib.rs"), src);
        assert!(f.model_diags.is_empty());
        assert!(f.allowed("raw-spawn", 1));
        assert!(f.allowed("raw-spawn", 2));
        assert!(!f.allowed("raw-spawn", 9));
        assert!(!f.allowed("service-panic", 2));
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "// conformance: allow(hash-iteration)\nfn f() {}\n";
        let f = SourceFile::parse(Path::new("a.rs"), src);
        assert_eq!(f.model_diags.len(), 1);
        assert!(f.model_diags[0].msg.contains("no reason"));
    }

    #[test]
    fn cfg_test_regions_cover_mod_tests() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let f = SourceFile::parse(Path::new("a.rs"), src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(4));
    }

    #[test]
    fn fixture_header_forces_scope() {
        let src = "// conformance-fixture: service-crate\nfn f() {}\n";
        let f = SourceFile::parse(Path::new("anywhere/at/all.rs"), src);
        assert_eq!(f.scope, CrateScope::Service);
    }

    #[test]
    fn fn_spans_find_bodies_and_pubness() {
        let src = "pub fn a(x: u32) -> u32 { x }\nfn b() { let c = |y: u32| y; }\n";
        let f = SourceFile::parse(Path::new("a.rs"), src);
        let fns = f.fns();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert!(fns[0].is_pub);
        assert!(!fns[1].is_pub);
    }

    #[test]
    fn impl_cluster_content_promotes_scope() {
        let src = "struct Cluster;\nimpl Cluster {\n    pub fn f(&self) {}\n}\n";
        let f = SourceFile::parse(Path::new("somewhere/else.rs"), src);
        assert_eq!(f.scope, CrateScope::RuntimeCluster);
    }
}
