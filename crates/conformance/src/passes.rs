//! The lint passes. Each pass enforces one repo invariant that no compiler
//! checks; see the crate docs for the vocabulary and `README.md` for the
//! rationale. Findings are suppressed site-by-site with
//! `// conformance: allow(<lint>) — <reason>` (the reason is mandatory).

use crate::lexer::{Tok, TokKind};
use crate::model::{CrateScope, Diagnostic, SourceFile};
use std::collections::BTreeSet;

/// The lint vocabulary: `(name, what it enforces)`.
pub const LINTS: [(&str, &str); 7] = [
    (
        "safety-comment",
        "every `unsafe` block or fn is preceded by a `// SAFETY:` comment arguing its soundness",
    ),
    (
        "hash-iteration",
        "kernel/pipeline crates never iterate a HashMap/HashSet without sorting the result \
         (iteration order is nondeterministic and would break bit-identical outputs/ledgers)",
    ),
    (
        "time-source",
        "kernel/pipeline crates never read wall-clock or thread identity \
         (`Instant::now`, `SystemTime`, `thread::current().id()`): outputs must be a pure \
         function of the input and the superstep schedule",
    ),
    (
        "ledger-charge",
        "every communicating `Cluster` primitive advances the superstep clock and charges \
         the ledger (routes through `account`/`apply_step`/`charge_*` or a charging sibling)",
    ),
    (
        "scope-restore",
        "every `set_phase_scope(Some(..))` in a function is restored: the function's last \
         `set_phase_scope` call passes `None`",
    ),
    (
        "service-panic",
        "no `panic!`/`unreachable!`/`todo!`/`unwrap`/`expect` on lis-service request paths: \
         the service boundary answers errors, it does not crash connections",
    ),
    (
        "raw-spawn",
        "no raw `std::thread::spawn`/`thread::Builder` outside the rayon/loom shims and the \
         server accept loop: ad-hoc threads bypass the pool's determinism and budget discipline",
    ),
];

/// True when `name` is a known lint.
pub fn known_lint(name: &str) -> bool {
    LINTS.iter().any(|(n, _)| *n == name)
}

/// Runs every applicable pass over one file.
pub fn lint_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = file.model_diags.clone();
    let code = file.code();
    safety_comment(file, &code, &mut out);
    if matches!(file.scope, CrateScope::Kernel | CrateScope::RuntimeCluster) {
        hash_iteration(file, &code, &mut out);
        time_source(file, &code, &mut out);
    }
    if file.scope == CrateScope::RuntimeCluster {
        ledger_charge(file, &code, &mut out);
    }
    scope_restore(file, &code, &mut out);
    if file.scope == CrateScope::Service {
        service_panic(file, &code, &mut out);
    }
    if file.scope != CrateScope::ThreadShim {
        raw_spawn(file, &code, &mut out);
    }
    out
}

/// Shorthand for pushing a finding unless an allow directive covers it.
fn report(
    file: &SourceFile,
    out: &mut Vec<Diagnostic>,
    lint: &'static str,
    line: u32,
    msg: String,
) {
    if !file.allowed(lint, line) {
        out.push(Diagnostic {
            lint,
            file: file.rel.clone(),
            line,
            msg,
        });
    }
}

/// Do `code[i..]` token texts match `pat` exactly?
fn seq(code: &[(usize, &Tok)], i: usize, pat: &[&str]) -> bool {
    pat.len() <= code.len() - i.min(code.len())
        && pat
            .iter()
            .enumerate()
            .all(|(k, p)| code.get(i + k).is_some_and(|(_, t)| t.text == *p))
}

// ---------------------------------------------------------------------------
// L1: safety-comment
// ---------------------------------------------------------------------------

/// How many lines above an `unsafe` token a `SAFETY` comment may sit. The
/// window absorbs an interposed `#[allow(unsafe_code)]` attribute and the
/// statement head (`let x: T = unsafe { … }`).
const SAFETY_WINDOW: u32 = 10;

fn safety_comment(file: &SourceFile, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    for &(_, t) in code {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let lo = t.line.saturating_sub(SAFETY_WINDOW);
        let documented = file.toks.iter().any(|c| {
            matches!(c.kind, TokKind::LineComment | TokKind::BlockComment)
                && (lo..=t.line).contains(&c.line)
                && c.text.contains("SAFETY")
        });
        if !documented {
            report(
                file,
                out,
                "safety-comment",
                t.line,
                "`unsafe` without a `// SAFETY:` comment within the preceding 10 lines — \
                 state the invariant that makes it sound"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L2: hash-iteration
// ---------------------------------------------------------------------------

/// Iteration adaptors whose results surface hash order.
const ITER_METHODS: [&str; 6] = ["iter", "iter_mut", "keys", "values", "values_mut", "drain"];

/// Order-insensitive statement escapes: the iterated items are re-sorted or
/// folded commutatively before anything order-dependent happens.
fn statement_escapes(code: &[(usize, &Tok)], from: usize) -> bool {
    let line = code[from].1.line;
    let mut k = from;
    // Scan to the end of the statement, or 3 lines past the flagged token —
    // whichever comes first — looking for a sort or a commutative fold. The
    // line window also catches `collect()` into a Vec sorted on the next line.
    while k < code.len() && code[k].1.line <= line + 3 {
        let t = code[k].1;
        if t.kind == TokKind::Ident
            && (t.text.starts_with("sort")
                || matches!(
                    t.text.as_str(),
                    "sum"
                        | "count"
                        | "max"
                        | "min"
                        | "all"
                        | "any"
                        | "fold"
                        | "BTreeMap"
                        | "BTreeSet"
                ))
        {
            return true;
        }
        k += 1;
    }
    false
}

fn hash_iteration(file: &SourceFile, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    // Pass 1: names bound to a HashMap/HashSet in this file — from type
    // annotations (`x: HashMap<…>`, incl. `&`/`mut`) and from constructor
    // initializers (`x = HashMap::new()` / `with_capacity`).
    let mut maps: BTreeSet<String> = BTreeSet::new();
    for i in 0..code.len() {
        let t = code[i].1;
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        let mut j = i;
        // Strip a path qualifier: `std::collections::HashMap`.
        while j >= 2 && code[j - 1].1.text == ":" && code[j - 2].1.text == ":" {
            j -= 2;
            if j > 0 && code[j - 1].1.kind == TokKind::Ident {
                j -= 1;
            } else {
                break;
            }
        }
        // Strip reference/mut qualifiers: `&HashMap`, `&mut HashMap`.
        while j > 0 && matches!(code[j - 1].1.text.as_str(), "&" | "mut") {
            j -= 1;
        }
        if j < 2 {
            continue;
        }
        let sep = code[j - 1].1.text.as_str();
        let name = code[j - 2].1;
        if name.kind != TokKind::Ident {
            continue;
        }
        match sep {
            // Annotation `name: HashMap<…>` — but not a `::` path segment.
            ":" if code
                .get(j.wrapping_sub(3))
                .is_none_or(|(_, t)| t.text != ":") =>
            {
                maps.insert(name.text.clone());
            }
            // Initializer `name = HashMap::new()` / `with_capacity(…)`.
            "=" => {
                maps.insert(name.text.clone());
            }
            _ => {}
        }
    }

    // Pass 2: flag iteration over those names.
    for i in 0..code.len() {
        let t = code[i].1;
        if t.kind != TokKind::Ident || !maps.contains(&t.text) {
            continue;
        }
        // `name.iter()` / `.keys()` / … / `.into_iter()`
        let method = if seq(code, i + 1, &["."]) {
            code.get(i + 2)
                .map(|(_, m)| m.text.as_str())
                .filter(|m| ITER_METHODS.contains(m) || *m == "into_iter")
        } else {
            None
        };
        // `for pat in name {` / `for pat in &name {` — the name directly
        // followed by `{` after an `in` within the same line-ish span.
        let for_iter = {
            let mut j = i;
            let mut saw_in = false;
            while j > 0 && code[j].1.line == t.line {
                j -= 1;
                if code[j].1.text == "in" {
                    saw_in = true;
                    break;
                }
            }
            saw_in && seq(code, i + 1, &["{"])
        };
        if method.is_none() && !for_iter {
            continue;
        }
        if statement_escapes(code, i) {
            continue;
        }
        if file.in_test_code(t.line) {
            continue;
        }
        let how = method.map_or("for-loop".to_string(), |m| format!(".{m}()"));
        report(
            file,
            out,
            "hash-iteration",
            t.line,
            format!(
                "iteration over hash-ordered `{}` via {how} in a deterministic crate — hash \
                 order varies across processes; sort the result, use a BTreeMap, or allowlist \
                 with a proof of order-independence",
                t.text
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// L2: time-source
// ---------------------------------------------------------------------------

fn time_source(file: &SourceFile, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    for i in 0..code.len() {
        let t = code[i].1;
        if t.kind != TokKind::Ident || file.in_test_code(t.line) {
            continue;
        }
        let found = if t.text == "Instant" && seq(code, i + 1, &[":", ":", "now"]) {
            Some("Instant::now()")
        } else if t.text == "SystemTime" {
            Some("SystemTime")
        } else if t.text == "thread" && seq(code, i + 1, &[":", ":", "current"]) {
            Some("thread::current()")
        } else {
            None
        };
        if let Some(what) = found {
            report(
                file,
                out,
                "time-source",
                t.line,
                format!(
                    "`{what}` in a deterministic crate — outputs and ledgers must not depend \
                     on wall-clock or thread identity; move timing to the bench harness or \
                     the service layer"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L3: ledger-charge
// ---------------------------------------------------------------------------

/// `Cluster` methods that are non-communicating by design. Everything else
/// public must charge the ledger (directly or via a charging sibling).
const NON_COMMUNICATING: [&str; 10] = [
    "new",          // construction
    "config",       // accessor
    "ledger",       // accessor
    "rounds",       // accessor
    "superstep",    // accessor
    "reset_ledger", // bookkeeping between runs, not a superstep
    "poll_kills",   // reads fault state injected at earlier barriers
    "set_phase",    // relabelling only
    "set_phase_scope",
    "collect", // end-of-algorithm readback, documented as uncharged
];

/// Direct evidence that a body charges the ledger / advances the clock.
const CHARGE_MARKERS: [&str; 5] = [
    "account",
    "apply_step",
    "charge_rounds",
    "charge_superstep",
    "bump_superstep",
];

fn ledger_charge(file: &SourceFile, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    // Restrict to fns inside `impl Cluster { … }` blocks.
    let mut ranges: Vec<std::ops::Range<usize>> = Vec::new();
    for i in 0..code.len() {
        if code[i].1.text == "impl" {
            // `impl Cluster {` possibly with generics on the impl.
            let mut j = i + 1;
            let mut is_cluster = false;
            while j < code.len() && code[j].1.text != "{" && code[j].1.line <= code[i].1.line + 2 {
                if code[j].1.text == "Cluster" {
                    is_cluster = true;
                }
                if code[j].1.text == "for" {
                    is_cluster = false; // trait impl for another type
                    break;
                }
                j += 1;
            }
            if is_cluster && j < code.len() && code[j].1.text == "{" {
                let mut depth = 1i32;
                let mut k = j + 1;
                while k < code.len() && depth > 0 {
                    match code[k].1.text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                ranges.push(code[j].0..code[k - 1].0);
            }
        }
    }
    if ranges.is_empty() {
        return;
    }

    let fns: Vec<_> = file
        .fns()
        .into_iter()
        .filter(|f| ranges.iter().any(|r| r.contains(&f.body.start)))
        .collect();

    let body_idents = |f: &crate::model::FnSpan| -> Vec<String> {
        file.toks[f.body.clone()]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    };

    // Fixpoint: a fn charges if it contains a marker or calls a charging fn.
    let mut charging: BTreeSet<String> = BTreeSet::new();
    for f in &fns {
        if body_idents(f)
            .iter()
            .any(|id| CHARGE_MARKERS.contains(&id.as_str()))
        {
            charging.insert(f.name.clone());
        }
    }
    loop {
        let before = charging.len();
        for f in &fns {
            if charging.contains(&f.name) {
                continue;
            }
            if body_idents(f).iter().any(|id| charging.contains(id)) {
                charging.insert(f.name.clone());
            }
        }
        if charging.len() == before {
            break;
        }
    }

    for f in &fns {
        if !f.is_pub
            || NON_COMMUNICATING.contains(&f.name.as_str())
            || charging.contains(&f.name)
            || file.in_test_code(f.line)
        {
            continue;
        }
        report(
            file,
            out,
            "ledger-charge",
            f.line,
            format!(
                "public `Cluster` primitive `{}` never charges the ledger: route its cost \
                 through `account`/`apply_step`/`charge_rounds`/`charge_superstep`, delegate \
                 to a charging primitive, or allowlist it with a proof it is non-communicating",
                f.name
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// L3: scope-restore
// ---------------------------------------------------------------------------

fn scope_restore(file: &SourceFile, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    // Work on code-token indices relative to `code`, mapping fn body ranges
    // (which are raw token indices) onto them.
    for f in file.fns() {
        if file.in_test_code(f.line) {
            continue;
        }
        let body: Vec<usize> = (0..code.len())
            .filter(|&k| f.body.contains(&code[k].0))
            .collect();
        let mut sets: Vec<(&str, u32)> = Vec::new(); // ("Some"/"None", line)
        for &k in &body {
            if code[k].1.text == "set_phase_scope" && seq(code, k + 1, &["("]) {
                let arg = code.get(k + 2).map(|(_, t)| t.text.as_str());
                match arg {
                    Some("None") => sets.push(("None", code[k].1.line)),
                    // A literal `Some(..)` or a computed argument both count
                    // as setting a scope (conservative).
                    _ => sets.push(("Some", code[k].1.line)),
                }
            }
        }
        let somes = sets.iter().filter(|(k, _)| *k == "Some").count();
        if somes == 0 {
            continue;
        }
        let last_is_none = sets.last().is_some_and(|(k, _)| *k == "None");
        if !last_is_none {
            let line = sets.last().map_or(f.line, |(_, l)| *l);
            report(
                file,
                out,
                "scope-restore",
                line,
                format!(
                    "`{}` sets a ledger phase scope but its last `set_phase_scope` call is \
                     not `None`: a leaked scope mislabels every later phase's rounds",
                    f.name
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L4: service-panic
// ---------------------------------------------------------------------------

fn service_panic(file: &SourceFile, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    for i in 0..code.len() {
        let t = code[i].1;
        if t.kind != TokKind::Ident || file.in_test_code(t.line) {
            continue;
        }
        let found = match t.text.as_str() {
            "panic" | "unreachable" | "todo" | "unimplemented" if seq(code, i + 1, &["!"]) => {
                Some(format!("{}!", t.text))
            }
            "unwrap" | "expect"
                if i > 0 && code[i - 1].1.text == "." && seq(code, i + 1, &["("]) =>
            {
                Some(format!(".{}()", t.text))
            }
            _ => None,
        };
        if let Some(what) = found {
            report(
                file,
                out,
                "service-panic",
                t.line,
                format!(
                    "`{what}` on a lis-service request path — the service boundary must \
                     answer `{{\"ok\":false}}`, not crash the connection; return a structured \
                     error or allowlist with a proof the failure is impossible"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L5: raw-spawn
// ---------------------------------------------------------------------------

fn raw_spawn(file: &SourceFile, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    for i in 0..code.len() {
        let t = code[i].1;
        if t.kind != TokKind::Ident || t.text != "thread" || file.in_test_code(t.line) {
            continue;
        }
        let found = if seq(code, i + 1, &[":", ":", "spawn"]) {
            Some("thread::spawn")
        } else if seq(code, i + 1, &[":", ":", "Builder"]) {
            Some("thread::Builder")
        } else {
            None
        };
        if let Some(what) = found {
            report(
                file,
                out,
                "raw-spawn",
                t.line,
                format!(
                    "raw `{what}` outside the thread shims — parallel work goes through the \
                     rayon pool (deterministic chunking, budget discipline); long-lived \
                     service threads need an allowlist entry naming their shutdown story"
                ),
            );
        }
    }
}
