//! Fixture acceptance: every seeded-violation file under `fixtures/bad/`
//! produces exactly the finding it seeds, every `fixtures/good/` counterpart
//! is clean, and the real workspace checks out clean end to end.

use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    conformance::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the conformance crate lives inside the workspace")
}

fn check_fixture(kind: &str, name: &str) -> Vec<conformance::model::Diagnostic> {
    let path = fixtures_dir().join(kind).join(format!("{name}.rs"));
    conformance::check_file(&workspace_root(), &path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Each `(fixture, lint)` pair: the bad file fires that lint, and nothing else.
const SEEDS: [(&str, &str); 7] = [
    ("safety_comment", "safety-comment"),
    ("hash_iteration", "hash-iteration"),
    ("time_source", "time-source"),
    ("ledger_charge", "ledger-charge"),
    ("scope_restore", "scope-restore"),
    ("service_panic", "service-panic"),
    ("raw_spawn", "raw-spawn"),
];

#[test]
fn every_seeded_violation_is_found() {
    for (fixture, lint) in SEEDS {
        let diags = check_fixture("bad", fixture);
        assert!(
            !diags.is_empty(),
            "bad/{fixture}.rs: expected a {lint} finding, got none"
        );
        assert!(
            diags.iter().all(|d| d.lint == lint),
            "bad/{fixture}.rs: expected only {lint}, got {diags:?}"
        );
    }
}

#[test]
fn every_good_counterpart_is_clean() {
    for (fixture, _) in SEEDS {
        let diags = check_fixture("good", fixture);
        assert!(diags.is_empty(), "good/{fixture}.rs: {diags:?}");
    }
}

#[test]
fn reasonless_allow_is_itself_a_finding() {
    let diags = check_fixture("bad", "allow_syntax");
    assert!(
        diags.iter().any(|d| d.lint == "allow-syntax"),
        "expected an allow-syntax finding for the reason-less allow: {diags:?}"
    );
    // And crucially, the reason-less allow does NOT suppress the violation.
    assert!(
        diags.iter().any(|d| d.lint == "raw-spawn"),
        "a malformed allow must not suppress the underlying finding: {diags:?}"
    );
}

#[test]
fn the_real_workspace_is_clean() {
    let diags = conformance::check_workspace(&workspace_root()).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "the workspace must stay conformance-clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
