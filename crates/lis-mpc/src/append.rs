//! Incremental append: grow a semi-local LIS kernel one block at a time,
//! re-combing only the new base block and re-running `⊡` up the **right spine**
//! of the merge tree instead of rebuilding from scratch.
//!
//! # Why append is spine-only
//!
//! The composition law `P_{Y₁Y₂} = (P₁ ⊕ I) ⊡ (I ⊕ P₂)` is exact and
//! associative, so the full kernel of a sequence equals the fold of its blocks'
//! kernels under *any* association. [`AppendableLisKernel`] keeps the blocks in
//! a binomial-counter spine: position-ordered segments whose sizes at least
//! double from the newest (top) to the oldest (bottom). Appending a block combs
//! it locally, pushes it on the spine, and carries — merging the top two
//! segments while the top has grown to more than half of the one below. A
//! carry cascade touches at most the `O(log n)` spine nodes; everything below
//! the first satisfied pair is untouched. The root kernel is a lazy fold of
//! the spine (`O(log n)` further merges), cached until the next append.
//!
//! # Rank stability under append
//!
//! The MPC pipeline relabels the input to global ranks `0..n`, but ranks shift
//! when the sequence grows. The spine instead keys every position by
//! `(value << 32) | (u32::MAX − position)`: keys are unique, never change as
//! the sequence grows, and their sorted order *is* the
//! [`seaweed_lis::lis::rank_sequence`] order (value ascending, ties by
//! descending position — the tie convention strict LIS needs). Since combing,
//! inflation and `⊡` composition consume values only through order
//! comparisons, the folded kernel is **bit-identical** to
//! [`seaweed_lis::lis::lis_kernel`] on the full sequence — the differential
//! tests (and the `properties.rs` proptest) assert exactly this.
//!
//! # Ledger accounting
//!
//! Every comb and merge is charged to the driving [`Cluster`] with the same
//! footprint the pipeline's distributed steps observe — a combed block
//! materializes its value set plus a `2B`-entry kernel (`3B` items,
//! `GROUP_MAP` rounds), a merge relabels to the union and runs one `⊡`
//! (`3·|union|` items, `SORT + GROUP_MAP` rounds) — under `service-append/…`
//! and `service-root/…` phase labels. [`mpc_runtime::Ledger::scope_comm`] over
//! those scopes is how a driver *proves* an append recombed only the spine:
//! the communication of one append is bounded by the touched spine nodes, not
//! by the sequence length times its merge depth.

use crate::lis::{prepare_merge, Block};
use monge::mul;
use mpc_runtime::{costs, Cluster};
use seaweed_lis::kernel::{compose_from_product, SeaweedKernel};
use seaweed_lis::lis::lis_kernel_permutation;

/// What one [`AppendableLisKernel::append`] call actually did — the
/// observable half of the spine-only cost claim (the ledger's
/// `service-append` scope is the other half).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppendStats {
    /// Base blocks combed from the appended elements (`⌈len / block_size⌉`).
    pub blocks_combed: usize,
    /// Carry merges (`⊡`) run up the spine.
    pub spine_merges: usize,
    /// Spine nodes after the append (≤ `log₂ n + 1` by the size invariant).
    pub spine_len: usize,
    /// Items the append materialized: `3B` per combed block plus `3·|union|`
    /// per carry merge — the comm the ledger's `service-append` scope saw.
    pub recombed_items: usize,
}

/// A semi-local LIS kernel over a growing `u32` sequence, maintained
/// incrementally (see the module docs for the spine construction and the
/// bit-identity argument).
#[derive(Clone, Debug)]
pub struct AppendableLisKernel {
    /// Elements appended so far (positions `0..len`).
    len: usize,
    /// Base block size: appended elements are combed in chunks of this size.
    block_size: usize,
    /// Position-ordered segments; sizes at least double from last to first.
    spine: Vec<Block>,
    /// Cached fold of the spine; `None` while dirty (after an append).
    root: Option<Block>,
    /// Carry merges run by the most recent root fold (0 while cached).
    last_fold_merges: usize,
}

/// Stable sort key of one `(value, position)` element: value-major,
/// position-descending minor — the [`seaweed_lis::lis::rank_sequence`] order,
/// frozen so it survives appends.
fn key_of(value: u32, pos: usize) -> usize {
    ((value as usize) << 32) | ((u32::MAX - pos as u32) as usize)
}

/// Combs one base block of keys locally: compact alphabet + bit-parallel comb,
/// exactly the pipeline's base step with keys in place of global ranks.
fn comb_base(keys: &[usize]) -> Block {
    let mut values = keys.to_vec();
    values.sort_unstable();
    let relabelled: Vec<u32> = keys
        .iter()
        .map(|&k| values.partition_point(|&v| v < k) as u32)
        .collect();
    Block {
        kernel: lis_kernel_permutation(&relabelled),
        values,
    }
}

/// Merges two adjacent segments: relabel to the union alphabet and compose
/// with one `⊡` (the pipeline's `prepare_merge` + steady-ant product).
fn merge_blocks(lo: &Block, hi: &Block) -> Block {
    let prep = prepare_merge(&lo.values, &lo.kernel, &hi.values, &hi.kernel);
    Block {
        kernel: compose_from_product(
            &prep.lo_inflated,
            &prep.hi_inflated,
            mul(&prep.operands.0, &prep.operands.1),
        ),
        values: prep.union,
    }
}

impl AppendableLisKernel {
    /// An empty kernel that combs appended elements in `block_size` chunks.
    pub fn new(block_size: usize) -> Self {
        const {
            assert!(
                usize::BITS >= 64,
                "the append spine packs (value, position) keys into 64-bit usize"
            )
        };
        Self {
            len: 0,
            block_size: block_size.max(1),
            spine: Vec::new(),
            root: None,
            last_fold_merges: 0,
        }
    }

    /// Builds the kernel of `seq` by appending it in one call — the honest
    /// "full rebuild" baseline an incremental append is compared against
    /// (same combs, same carry machinery, every node built from scratch).
    pub fn build(cluster: &mut Cluster, seq: &[u32], block_size: usize) -> Self {
        let mut this = Self::new(block_size);
        this.append(cluster, seq);
        this
    }

    /// Elements appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no elements have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The base block size appended elements are combed in.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Element counts of the spine segments, oldest first (each at least
    /// double the next — the invariant that keeps the spine logarithmic).
    pub fn spine_sizes(&self) -> Vec<usize> {
        self.spine.iter().map(|b| b.values.len()).collect()
    }

    /// Carry merges run by the most recent root fold
    /// ([`AppendableLisKernel::kernel`]); 0 while the fold is cached.
    pub fn last_fold_merges(&self) -> usize {
        self.last_fold_merges
    }

    /// Resident items held hot: every spine node's (and the cached root's)
    /// sorted value set plus kernel permutation entries. This is the
    /// footprint a kernel cache's byte budget charges for the entry.
    pub fn footprint_items(&self) -> usize {
        let node = |b: &Block| b.values.len() + b.kernel.checkpoint_entries();
        self.spine.iter().map(node).sum::<usize>() + self.root.as_ref().map(node).unwrap_or(0)
    }

    /// Appends `values` after the current sequence: combs them in
    /// `block_size` chunks, pushes each chunk on the spine and carries. Only
    /// the touched spine nodes are recombed — the returned [`AppendStats`]
    /// and the cluster's `service-append` ledger scope both say how many.
    pub fn append(&mut self, cluster: &mut Cluster, values: &[u32]) -> AppendStats {
        let mut stats = AppendStats {
            spine_len: self.spine.len(),
            ..AppendStats::default()
        };
        if values.is_empty() {
            return stats;
        }
        assert!(
            self.len + values.len() <= u32::MAX as usize,
            "the append spine indexes positions as u32"
        );
        self.root = None;
        self.last_fold_merges = 0;
        cluster.set_phase_scope(Some("service-append"));
        for chunk in values.chunks(self.block_size) {
            cluster.set_phase(Some("comb"));
            let keys: Vec<usize> = chunk
                .iter()
                .enumerate()
                .map(|(i, &v)| key_of(v, self.len + i))
                .collect();
            self.len += chunk.len();
            cluster.charge_superstep("service-comb", costs::GROUP_MAP, 3 * chunk.len() as u64);
            stats.blocks_combed += 1;
            stats.recombed_items += 3 * chunk.len();
            self.spine.push(comb_base(&keys));

            // Carry: merge the top two segments while the top has grown to
            // more than half of the one below, so sizes keep at least
            // doubling toward the bottom and the spine stays logarithmic.
            cluster.set_phase(Some("merge"));
            while self.spine.len() >= 2 {
                let top = self.spine[self.spine.len() - 1].values.len();
                let below = self.spine[self.spine.len() - 2].values.len();
                if 2 * top <= below {
                    break;
                }
                let hi = self.spine.pop().expect("len checked");
                let lo = self.spine.pop().expect("len checked");
                let union = top + below;
                cluster.charge_superstep(
                    "service-merge",
                    costs::SORT + costs::GROUP_MAP,
                    3 * union as u64,
                );
                stats.spine_merges += 1;
                stats.recombed_items += 3 * union;
                self.spine.push(merge_blocks(&lo, &hi));
            }
        }
        cluster.set_phase_scope(None::<String>);
        cluster.set_phase(None::<String>);
        stats.spine_len = self.spine.len();
        stats
    }

    /// The semi-local LIS kernel of everything appended so far — bit-identical
    /// to [`seaweed_lis::lis::lis_kernel`] on the full sequence. Folds the
    /// spine (`O(log n)` merges under the `service-root` scope) on the first
    /// call after an append, then serves the cached root.
    pub fn kernel(&mut self, cluster: &mut Cluster) -> &SeaweedKernel {
        self.fold(cluster);
        &self.root.as_ref().expect("fold caches a root").kernel
    }

    /// Window query `LIS(A[l..r))` off the (cached) root kernel.
    pub fn lis_window(&mut self, cluster: &mut Cluster, l: usize, r: usize) -> usize {
        self.kernel(cluster).lcs_window(l, r)
    }

    /// Maps a half-open **value** range `[lo, hi)` to the half-open global
    /// *rank* window occupied by elements with those values — the window
    /// vocabulary of [`crate::witness::recover_batch`] (ties are contiguous
    /// in rank space, so the mapping is exact).
    pub fn value_rank_window(&mut self, cluster: &mut Cluster, lo: u32, hi: u32) -> (usize, usize) {
        self.fold(cluster);
        let keys = &self.root.as_ref().expect("fold caches a root").values;
        (
            keys.partition_point(|&k| k < (lo as usize) << 32),
            keys.partition_point(|&k| k < (hi as usize) << 32),
        )
    }

    fn fold(&mut self, cluster: &mut Cluster) {
        if self.root.is_some() {
            return;
        }
        if self.spine.is_empty() {
            self.root = Some(Block {
                values: Vec::new(),
                kernel: lis_kernel_permutation(&[]),
            });
            return;
        }
        cluster.set_phase_scope(Some("service-root"));
        cluster.set_phase(Some("fold"));
        let mut merges = 0;
        let mut iter = self.spine.iter();
        let mut acc = iter.next().expect("spine non-empty").clone();
        for node in iter {
            let union = acc.values.len() + node.values.len();
            cluster.charge_superstep(
                "service-merge",
                costs::SORT + costs::GROUP_MAP,
                3 * union as u64,
            );
            merges += 1;
            acc = merge_blocks(&acc, node);
        }
        cluster.set_phase_scope(None::<String>);
        cluster.set_phase(None::<String>);
        debug_assert_eq!(acc.values.len(), self.len);
        self.last_fold_merges = merges;
        self.root = Some(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_runtime::MpcConfig;
    use rand::prelude::*;
    use seaweed_lis::lis::lis_kernel;

    fn lenient(n: usize) -> Cluster {
        Cluster::new(MpcConfig::lenient(n.max(4), 0.5))
    }

    #[test]
    fn incremental_append_is_bit_identical_to_rebuild() {
        let mut rng = StdRng::seed_from_u64(41);
        for &(n, bs) in &[(1usize, 4), (57, 8), (256, 16), (700, 32)] {
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..50)).collect();
            // Grow in random-size blocks…
            let mut cluster = lenient(n);
            let mut inc = AppendableLisKernel::new(bs);
            let mut at = 0;
            while at < n {
                let step = rng.gen_range(1..=(n - at).min(3 * bs));
                inc.append(&mut cluster, &seq[at..at + step]);
                at += step;
            }
            // …and compare against the one-shot build and the direct comb.
            let mut rebuilt = AppendableLisKernel::build(&mut cluster, &seq, bs);
            let direct = lis_kernel(&seq);
            assert_eq!(*rebuilt.kernel(&mut cluster), direct, "n={n} bs={bs}");
            let mut c2 = lenient(n);
            assert_eq!(*inc.kernel(&mut c2), direct, "n={n} bs={bs}");
        }
    }

    #[test]
    fn spine_stays_logarithmic_and_appends_touch_only_it() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut cluster = lenient(1 << 12);
        let mut kernel = AppendableLisKernel::new(16);
        let mut worst_merges = 0;
        for _ in 0..300 {
            let step = rng.gen_range(1..=24);
            let block: Vec<u32> = (0..step).map(|_| rng.gen_range(0..1000)).collect();
            let stats = kernel.append(&mut cluster, &block);
            worst_merges = worst_merges.max(stats.spine_merges);
            let bound = (kernel.len().max(2) as f64).log2().ceil() as usize + 1;
            assert!(
                stats.spine_len <= bound,
                "spine {} exceeds log bound {bound} at len {}",
                stats.spine_len,
                kernel.len()
            );
            assert!(
                stats.spine_merges <= bound + stats.blocks_combed,
                "carry cascade {} too long at len {}",
                stats.spine_merges,
                kernel.len()
            );
            // Sizes at least double toward the bottom.
            let sizes = kernel.spine_sizes();
            assert!(sizes.windows(2).all(|w| w[0] >= 2 * w[1]), "{sizes:?}");
        }
        assert!(worst_merges >= 2, "carries must actually cascade");
    }

    #[test]
    fn append_ledger_charges_only_the_spine() {
        let mut rng = StdRng::seed_from_u64(43);
        let n = 1 << 10;
        let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..5000)).collect();
        let mut build_cluster = lenient(n);
        let mut kernel = AppendableLisKernel::build(&mut build_cluster, &seq, 64);
        let _ = kernel.kernel(&mut build_cluster);
        let rebuild_comm = build_cluster.ledger().scope_comm("service-");

        // One small append on the big kernel: its service-append comm must be
        // bounded by the touched nodes (stats.recombed_items), and the append
        // plus its root re-fold must stay well under a fresh rebuild.
        let mut cluster = lenient(n);
        let block: Vec<u32> = (0..32).map(|_| rng.gen_range(0..5000)).collect();
        let stats = kernel.append(&mut cluster, &block);
        let append_comm = cluster.ledger().scope_comm("service-append");
        assert_eq!(append_comm, stats.recombed_items as u64);
        let _ = kernel.kernel(&mut cluster);
        assert!(kernel.last_fold_merges() <= kernel.spine_sizes().len().max(1));
        let total_comm = cluster.ledger().scope_comm("service-");
        assert!(
            2 * total_comm < rebuild_comm,
            "append+fold comm {total_comm} not clearly under rebuild comm {rebuild_comm}"
        );
        assert_eq!(cluster.ledger().scope_violations("service-"), 0);
    }

    #[test]
    fn window_and_rank_queries_match_the_direct_kernel() {
        let mut rng = StdRng::seed_from_u64(44);
        let n = 300;
        let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..40)).collect();
        let mut cluster = lenient(n);
        let mut kernel = AppendableLisKernel::build(&mut cluster, &seq, 16);
        let direct = seaweed_lis::lis::SemiLocalLis::new(&seq);
        for _ in 0..50 {
            let a = rng.gen_range(0..=n);
            let b = rng.gen_range(0..=n);
            let (l, r) = (a.min(b), a.max(b));
            assert_eq!(
                kernel.lis_window(&mut cluster, l, r),
                direct.lis_window(l, r),
                "[{l}, {r})"
            );
        }
        // Value→rank windows agree with counting over the sorted values.
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        for _ in 0..20 {
            let lo = rng.gen_range(0..45);
            let hi = rng.gen_range(lo..=45);
            let got = kernel.value_rank_window(&mut cluster, lo, hi);
            let want = (
                sorted.partition_point(|&v| v < lo),
                sorted.partition_point(|&v| v < hi),
            );
            assert_eq!(got, want, "values [{lo}, {hi})");
        }
    }

    #[test]
    fn empty_and_tiny_kernels() {
        let mut cluster = lenient(4);
        let mut kernel = AppendableLisKernel::new(8);
        assert!(kernel.is_empty());
        let stats = kernel.append(&mut cluster, &[]);
        assert_eq!(stats, AppendStats::default());
        assert_eq!(kernel.kernel(&mut cluster).y_len(), 0);
        kernel.append(&mut cluster, &[7]);
        assert_eq!(kernel.lis_window(&mut cluster, 0, 1), 1);
        assert_eq!(kernel.len(), 1);
        assert!(kernel.footprint_items() > 0);
    }
}
