//! Corollary 1.3.1: exact LCS length in `O(log n)` MPC rounds via Hunt–Szymanski.
//!
//! All matching pairs `(i, j)` of the two strings are listed in lexicographic order
//! (by `i` ascending, `j` descending) — a sort-join costing `O(1)` rounds — and the
//! LIS (strictly increasing in `j`) of that pair sequence equals the LCS. The pair
//! list can hold up to `|a| · |b|` entries, which is why the corollary assumes
//! `Õ(n²)` total space (`m = n^{1+δ}` machines); the simulator records the resulting
//! load so experiments can report it.

use crate::lis::lis_length_mpc;
use monge_mpc::MulParams;
use mpc_runtime::{costs, Cluster};
use std::collections::HashMap;
use std::hash::Hash;

/// Computes the LCS length of `a` and `b` on the cluster.
///
/// Returns the LCS length together with the number of matching pairs the
/// Hunt–Szymanski reduction produced (the quantity that drives the total space).
pub fn lcs_mpc<T: Eq + Hash + Clone>(
    cluster: &mut Cluster,
    a: &[T],
    b: &[T],
    params: &MulParams,
) -> (usize, usize) {
    // The sort-join producing the match pairs: one O(1)-round sort of both strings
    // by symbol plus a shuffle of the pairs.
    cluster.set_phase(Some("lcs-match-pairs"));
    cluster.charge_rounds("lcs-match-join", costs::SORT + costs::SHUFFLE);

    let mut positions: HashMap<&T, Vec<u32>> = HashMap::new();
    for (j, y) in b.iter().enumerate() {
        positions.entry(y).or_default().push(j as u32);
    }
    let mut seconds: Vec<u32> = Vec::new();
    for x in a {
        if let Some(js) = positions.get(x) {
            seconds.extend(js.iter().rev());
        }
    }
    let pair_count = seconds.len();
    cluster.set_phase(None::<String>);

    if pair_count == 0 {
        return (0, 0);
    }
    (lis_length_mpc(cluster, &seconds, params), pair_count)
}

/// Convenience wrapper returning only the LCS length.
pub fn lcs_length_mpc<T: Eq + Hash + Clone>(
    cluster: &mut Cluster,
    a: &[T],
    b: &[T],
    params: &MulParams,
) -> usize {
    lcs_mpc(cluster, a, b, params).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_runtime::MpcConfig;
    use rand::prelude::*;
    use seaweed_lis::baselines::lcs_length_dp;

    fn random_string(len: usize, alphabet: u32, rng: &mut StdRng) -> Vec<u32> {
        (0..len).map(|_| rng.gen_range(0..alphabet)).collect()
    }

    #[test]
    fn matches_dp_on_random_strings() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..12 {
            let m = rng.gen_range(0..80);
            let n = rng.gen_range(0..80);
            let alphabet = rng.gen_range(2..10);
            let a = random_string(m, alphabet, &mut rng);
            let b = random_string(n, alphabet, &mut rng);
            let total = (m * n).max(4);
            let mut cluster = Cluster::new(MpcConfig::lenient(total, 0.5).with_space(32));
            let got = lcs_length_mpc(&mut cluster, &a, &b, &MulParams::default());
            assert_eq!(got, lcs_length_dp(&a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn reports_pair_count() {
        let a = vec![1u32; 30];
        let b = vec![1u32; 20];
        let mut cluster = Cluster::new(MpcConfig::lenient(600, 0.5).with_space(64));
        let (len, pairs) = lcs_mpc(&mut cluster, &a, &b, &MulParams::default());
        assert_eq!(len, 20);
        assert_eq!(pairs, 600);
    }

    #[test]
    fn disjoint_alphabets() {
        let a = vec![1u32, 2, 3];
        let b = vec![4u32, 5, 6];
        let mut cluster = Cluster::new(MpcConfig::lenient(16, 0.5));
        assert_eq!(
            lcs_length_mpc(&mut cluster, &a, &b, &MulParams::default()),
            0
        );
    }

    #[test]
    fn identical_strings_use_linear_pairs_per_symbol_class() {
        let a: Vec<u32> = (0..60).collect();
        let mut cluster = Cluster::new(MpcConfig::lenient(64, 0.5).with_space(16));
        let (len, pairs) = lcs_mpc(&mut cluster, &a, &a, &MulParams::default());
        assert_eq!(len, 60);
        assert_eq!(pairs, 60);
    }
}
