//! Corollary 1.3.1: exact LCS length in `O(log n)` MPC rounds via Hunt–Szymanski.
//!
//! All matching pairs `(i, j)` of the two strings are listed in lexicographic order
//! (by `i` ascending, `j` descending) and the LIS (strictly increasing in `j`) of
//! that pair sequence equals the LCS. The pair list is produced *distributed*: a
//! sort-join groups both strings by symbol (`O(1)` rounds), each symbol class
//! emits its cross product with the outputs leaving rebalanced
//! ([`mpc_runtime::Cluster::group_map_rebalanced`] — no machine ever holds a
//! symbol class's full pair set), and one more sort puts the pairs in
//! lexicographic order. The pair list can hold up to `|a| · |b|` entries, which
//! is why the corollary assumes `Õ(n²)` total space (`m = n^{1+δ}` machines);
//! size the cluster for `|a| · |b|` and the whole pipeline — join included —
//! runs violation-free on strict clusters.

use crate::lis::{lis_length_mpc, lis_witness_mpc};
use monge_mpc::MulParams;
use mpc_runtime::Cluster;

/// Result of the MPC LCS computation with witness recovery
/// ([`lcs_witness_mpc`]).
#[derive(Clone, Debug)]
pub struct MpcLcsOutcome {
    /// Length of the longest common subsequence.
    pub length: usize,
    /// Number of matching pairs the Hunt–Szymanski reduction produced (the
    /// quantity that drives the corollary's total-space requirement).
    pub pairs: usize,
    /// One longest common subsequence as matched index pairs `(i, j)` with
    /// `a[i] == b[j]`, strictly ascending in both coordinates.
    pub witness: Vec<(usize, usize)>,
}

/// Computes the LCS length of `a` and `b` on the cluster.
///
/// Returns the LCS length together with the number of matching pairs the
/// Hunt–Szymanski reduction produced (the quantity that drives the total space).
///
/// The cluster should be sized for the corollary's regime (`n = |a| · |b|` in
/// the worst case): the match pairs are spread across all machines, so the
/// budget must cover `pairs / machines` items per machine.
pub fn lcs_mpc<T: Ord + std::hash::Hash + Clone + Send + Sync>(
    cluster: &mut Cluster,
    a: &[T],
    b: &[T],
    params: &MulParams,
) -> (usize, usize) {
    let pairs = match_pairs(cluster, a, b);
    let pair_count = pairs.len();
    if pair_count == 0 {
        return (0, 0);
    }
    let seconds: Vec<u32> = pairs.into_iter().map(|(_, j)| j).collect();
    (lis_length_mpc(cluster, &seconds, params), pair_count)
}

/// Computes the LCS length *and* recovers an actual common subsequence
/// (Corollary 1.3.1 with structured output): the Hunt–Szymanski match-pair
/// list is built as in [`lcs_mpc`], the LIS witness traceback runs over the
/// pairs' second coordinates ([`lis_witness_mpc`]), and the chosen pair-list
/// positions map back to `(i, j)` index pairs. Increasing position in the
/// lexicographically sorted list (with `j` descending within equal `i`) plus
/// strictly increasing `j` forces strictly increasing `i`, so the recovered
/// pairs form a genuine common subsequence of length [`MpcLcsOutcome::length`].
pub fn lcs_witness_mpc<T: Ord + std::hash::Hash + Clone + Send + Sync>(
    cluster: &mut Cluster,
    a: &[T],
    b: &[T],
    params: &MulParams,
) -> MpcLcsOutcome {
    let pairs = match_pairs(cluster, a, b);
    if pairs.is_empty() {
        return MpcLcsOutcome {
            length: 0,
            pairs: 0,
            witness: Vec::new(),
        };
    }
    let seconds: Vec<u32> = pairs.iter().map(|&(_, j)| j).collect();
    let outcome = lis_witness_mpc(cluster, &seconds, params);
    let witness: Vec<(usize, usize)> = outcome
        .witness
        .expect("lis_witness_mpc always recovers")
        .into_iter()
        .map(|p| (pairs[p].0 as usize, pairs[p].1 as usize))
        .collect();
    debug_assert!(witness
        .windows(2)
        .all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
    MpcLcsOutcome {
        length: outcome.length,
        pairs: pairs.len(),
        witness,
    }
}

/// The distributed Hunt–Szymanski sort-join: lists all matching pairs `(i, j)`
/// in lexicographic order (`i` ascending, `j` descending within equal `i`).
fn match_pairs<T: Ord + std::hash::Hash + Clone + Send + Sync>(
    cluster: &mut Cluster,
    a: &[T],
    b: &[T],
) -> Vec<(u32, u32)> {
    // Match positions travel as u32 (the pair count itself is re-guarded at
    // the LIS pipeline entry, since the pair list becomes its input).
    assert!(
        a.len() <= u32::MAX as usize && b.len() <= u32::MAX as usize,
        "lcs-mpc indexes string positions as u32: |a| = {} / |b| = {} exceeds u32::MAX",
        a.len(),
        b.len()
    );
    // An empty side means zero pairs: answer without touching the cluster. The
    // join used to run anyway and distribute the other string, which overflows
    // a strict cluster legitimately sized for the (zero-pair) |a|·|b| regime.
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    // The sort-join producing the match pairs, fully distributed: group both
    // strings by symbol, emit each class's cross product (outputs rebalanced),
    // then sort the pairs into Hunt–Szymanski order.
    cluster.set_phase(Some("lcs-match-pairs"));
    let a_items = cluster.distribute(
        a.iter()
            .enumerate()
            .map(|(i, x)| (x.clone(), false, i as u32))
            .collect::<Vec<_>>(),
    );
    let b_items = cluster.distribute(
        b.iter()
            .enumerate()
            .map(|(j, y)| (y.clone(), true, j as u32))
            .collect::<Vec<_>>(),
    );
    let both = cluster.concat(a_items, b_items);
    let pairs = cluster.group_map_rebalanced(
        both,
        |(sym, _, _)| sym.clone(),
        |_, items| {
            let mut is: Vec<u32> = Vec::new();
            let mut js: Vec<u32> = Vec::new();
            for (_, is_b, pos) in items {
                if is_b {
                    js.push(pos);
                } else {
                    is.push(pos);
                }
            }
            is.sort_unstable();
            js.sort_unstable_by_key(|&j| std::cmp::Reverse(j));
            let mut out = Vec::with_capacity(is.len() * js.len());
            for &i in &is {
                for &j in &js {
                    out.push((i, j));
                }
            }
            out
        },
    );
    let sorted = cluster.sort_by_key(pairs, |&(i, j)| (i, std::cmp::Reverse(j)));
    let out = cluster.collect(sorted);
    cluster.set_phase(None::<String>);
    out
}

/// Convenience wrapper returning only the LCS length.
pub fn lcs_length_mpc<T: Ord + std::hash::Hash + Clone + Send + Sync>(
    cluster: &mut Cluster,
    a: &[T],
    b: &[T],
    params: &MulParams,
) -> usize {
    lcs_mpc(cluster, a, b, params).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_runtime::MpcConfig;
    use rand::prelude::*;
    use seaweed_lis::baselines::lcs_length_dp;

    fn random_string(len: usize, alphabet: u32, rng: &mut StdRng) -> Vec<u32> {
        (0..len).map(|_| rng.gen_range(0..alphabet)).collect()
    }

    /// The corollary's regime: a strict cluster sized for `|a| · |b|` pairs.
    fn strict_cluster(total: usize, delta: f64) -> Cluster {
        Cluster::new(MpcConfig::new(total.max(4), delta))
    }

    #[test]
    fn matches_dp_on_random_strings() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..12 {
            let m = rng.gen_range(0..80);
            let n = rng.gen_range(0..80);
            let alphabet = rng.gen_range(2..10);
            let a = random_string(m, alphabet, &mut rng);
            let b = random_string(n, alphabet, &mut rng);
            let mut cluster = strict_cluster(m * n, 0.6);
            let got = lcs_length_mpc(&mut cluster, &a, &b, &MulParams::default());
            assert_eq!(got, lcs_length_dp(&a, &b), "a={a:?} b={b:?}");
            assert_eq!(cluster.ledger().space_violations, 0);
        }
    }

    #[test]
    fn reports_pair_count() {
        let a = vec![1u32; 30];
        let b = vec![1u32; 20];
        let mut cluster = strict_cluster(600, 0.5);
        let (len, pairs) = lcs_mpc(&mut cluster, &a, &b, &MulParams::default());
        assert_eq!(len, 20);
        assert_eq!(pairs, 600);
    }

    #[test]
    fn disjoint_alphabets() {
        let a = vec![1u32, 2, 3];
        let b = vec![4u32, 5, 6];
        let mut cluster = strict_cluster(16, 0.5);
        assert_eq!(
            lcs_length_mpc(&mut cluster, &a, &b, &MulParams::default()),
            0
        );
    }

    #[test]
    fn identical_strings_use_linear_pairs_per_symbol_class() {
        let a: Vec<u32> = (0..60).collect();
        let mut cluster = strict_cluster(64, 0.6);
        let (len, pairs) = lcs_mpc(&mut cluster, &a, &a, &MulParams::default());
        assert_eq!(len, 60);
        assert_eq!(pairs, 60);
    }

    #[test]
    fn lcs_witness_is_a_common_subsequence() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..8 {
            let m = rng.gen_range(0..60);
            let n = rng.gen_range(0..60);
            let alphabet = rng.gen_range(2..8);
            let a = random_string(m, alphabet, &mut rng);
            let b = random_string(n, alphabet, &mut rng);
            let mut cluster = strict_cluster(m * n, 0.6);
            let outcome = lcs_witness_mpc(&mut cluster, &a, &b, &MulParams::default());
            assert_eq!(outcome.length, lcs_length_dp(&a, &b), "a={a:?} b={b:?}");
            assert_eq!(outcome.witness.len(), outcome.length);
            assert!(outcome
                .witness
                .windows(2)
                .all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
            assert!(outcome.witness.iter().all(|&(i, j)| a[i] == b[j]));
            assert_eq!(cluster.ledger().space_violations, 0);
        }
    }

    #[test]
    fn empty_sides_skip_the_cluster() {
        // Regression: an empty string used to run the distributed join anyway,
        // overflowing strict clusters sized for the zero-pair regime.
        let b: Vec<u32> = (0..200).map(|i| i % 5).collect();
        let mut cluster = strict_cluster(4, 0.5);
        assert_eq!(
            lcs_mpc::<u32>(&mut cluster, &[], &b, &MulParams::default()),
            (0, 0)
        );
        assert_eq!(
            lcs_mpc::<u32>(&mut cluster, &b, &[], &MulParams::default()),
            (0, 0)
        );
        let outcome = lcs_witness_mpc::<u32>(&mut cluster, &[], &b, &MulParams::default());
        assert_eq!((outcome.length, outcome.pairs), (0, 0));
        assert!(outcome.witness.is_empty());
        assert_eq!(cluster.rounds(), 0, "no cluster work for empty sides");
    }

    #[test]
    fn lcs_witness_on_disjoint_alphabets_is_empty() {
        let a = vec![1u32, 2, 3];
        let b = vec![4u32, 5, 6];
        let mut cluster = strict_cluster(16, 0.5);
        let outcome = lcs_witness_mpc(&mut cluster, &a, &b, &MulParams::default());
        assert_eq!(outcome.length, 0);
        assert!(outcome.witness.is_empty());
    }

    #[test]
    fn heavy_symbol_classes_stay_within_budget() {
        // A two-symbol alphabet produces ~n²/2 pairs in two huge classes: the
        // rebalanced join must spread them instead of parking a class's whole
        // cross product on one machine (strict cluster: overshoot would panic).
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_string(48, 2, &mut rng);
        let b = random_string(48, 2, &mut rng);
        let mut cluster = strict_cluster(48 * 48, 0.6);
        let got = lcs_length_mpc(&mut cluster, &a, &b, &MulParams::default());
        assert_eq!(got, lcs_length_dp(&a, &b));
        assert_eq!(cluster.ledger().space_violations, 0);
    }
}
