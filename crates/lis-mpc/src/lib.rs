//! Massively-parallel LIS and LCS on top of the MPC unit-Monge multiplication.
//!
//! * [`lis`] — Theorem 1.3: the exact length of the longest increasing subsequence in
//!   `O(log n)` fully-scalable MPC rounds (and, as a by-product, the full semi-local
//!   LIS kernel — Corollary 1.3.2).
//! * [`lcs`] — Corollary 1.3.1: the exact LCS length via the Hunt–Szymanski
//!   reduction to LIS, assuming the Õ(n²)-total-space regime of the corollary.
//!
//! The divide and conquer follows §4.2 of the paper (and Theorem 1.2 of CHS23 that it
//! references): the sequence is cut into blocks, each block's seaweed kernel is
//! computed locally, and adjacent kernels are merged level by level — every level
//! costs `O(1)` rounds (relabelling by sorting plus one batched `⊡`), and there are
//! `O(log n)` levels.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lcs;
pub mod lis;

pub use lcs::lcs_length_mpc;
pub use lis::{lis_kernel_mpc, lis_length_mpc, MpcLisOutcome};
