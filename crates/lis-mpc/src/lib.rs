//! Massively-parallel LIS and LCS on top of the MPC unit-Monge multiplication.
//!
//! * [`lis`] — Theorem 1.3: the exact length of the longest increasing subsequence in
//!   `O(log n)` fully-scalable MPC rounds (and, as a by-product, the full semi-local
//!   LIS kernel — Corollary 1.3.2).
//! * [`lcs`] — Corollary 1.3.1: the exact LCS length via the Hunt–Szymanski
//!   reduction to LIS, assuming the Õ(n²)-total-space regime of the corollary.
//!
//! The divide and conquer follows §4.2 of the paper (and Theorem 1.2 of CHS23 that it
//! references): the sequence is cut into blocks, each block's seaweed kernel is
//! computed locally, and adjacent kernels are merged level by level — every level
//! costs `O(1)` rounds (relabelling by sorting plus one batched `⊡`), and there are
//! `O(log n)` levels.
//!
//! Both pipelines are **space-conformant**: they run on strict
//! [`mpc_runtime::MpcConfig::new`] clusters (any budget overshoot panics) with
//! zero recorded violations at every `δ`. Base blocks are sized off the
//! per-machine budget in one place ([`lis::base_block_size`]: the largest `B`
//! with `3·B·⌈⌈n/B⌉/m⌉ ≤ s`, because a block materializes its value set plus a
//! `2B`-entry kernel), block kernels are combed in budget-bounded streamed
//! sub-blocks and emitted entry-wise so the ledger sees their real footprint,
//! and every merge level runs its `⊡` under a `lis-merge-L<k>` ledger scope so
//! rounds, communication and loads are attributed per level.
//!
//! Beyond lengths, both pipelines recover actual **witnesses**:
//! [`lis::lis_witness_mpc`] returns the positions of one longest increasing
//! subsequence and [`lcs::lcs_witness_mpc`] one common subsequence's matched
//! index pairs, via the [`witness`] top-down traceback over the recorded merge
//! tree — `O(log n)` extra rounds under `lis-witness-L<k>` ledger scopes, still
//! strict.
//!
//! Both pipelines are also **fault-tolerant**: under a kill schedule
//! ([`mpc_runtime::MpcConfig::with_faults`]) every merge level's nodes double
//! as checkpoints replicated onto neighbor machines, and a machine crash at
//! any level is repaired by re-deriving the lost shard from the level below —
//! re-combing base blocks from the durable input (`recovery-base` scope) or
//! re-running the lost pairs' `⊡` merges from the level-(L−1) checkpoints
//! (`recovery-L<k>`), in `O(1)` extra rounds per fault. Straggler delays are
//! absorbed by the superstep barrier and charged to
//! [`mpc_runtime::Ledger::stall_rounds`]. Recovered lengths and witnesses are
//! bit-identical to the fault-free run, still strict (the private `recovery`
//! module documents the placement and repair rules).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod append;
pub mod lcs;
pub mod lis;
mod recovery;
pub mod witness;

pub use append::{AppendStats, AppendableLisKernel};
pub use lcs::{lcs_length_mpc, lcs_witness_mpc, MpcLcsOutcome};
pub use lis::{lis_kernel_mpc, lis_length_mpc, lis_witness_mpc, MpcLisOutcome};
pub use witness::{recover_batch, WitnessTrace};
