//! Theorem 1.3: exact LIS length in `O(log n)` fully-scalable MPC rounds.
//!
//! Level-by-level divide and conquer over the positions of the input sequence:
//!
//! 1. **Rank** the input (one `O(1)`-round sort): strictly increasing subsequences of
//!    the original sequence correspond exactly to increasing subsequences of the rank
//!    permutation (ties broken by descending position).
//! 2. **Base blocks**: the sequence is cut into blocks that fit into one machine's
//!    space; each machine combs the seaweed kernel of its block locally (one
//!    `group_map`).
//! 3. **Merge levels**: adjacent blocks are merged pairwise. Per level, every pair is
//!    relabelled to the union of its value sets (inflation — `O(1)` rounds of index
//!    arithmetic) and the two kernels are composed with one *batched* MPC unit-Monge
//!    multiplication (`monge_mpc::mul_batch`). The level count is `⌈log₂(n / B)⌉`,
//!    hence `O(log n)` rounds in total.
//!
//! The final kernel answers every semi-local (window) LIS query; the global LIS
//! length is read off the full window.

use monge_mpc::MulParams;
use mpc_runtime::{costs, Cluster};
use seaweed_lis::kernel::{compose_from_product, compose_operands, SeaweedKernel};
use seaweed_lis::lis::{lis_kernel_permutation, rank_sequence};

/// Result of the MPC LIS computation.
#[derive(Clone, Debug)]
pub struct MpcLisOutcome {
    /// Length of the longest strictly increasing subsequence.
    pub length: usize,
    /// The semi-local seaweed kernel of the whole sequence (Corollary 1.3.2): window
    /// queries `LIS(A[l..r))` are answered by [`SeaweedKernel::lcs_window`] /
    /// [`SeaweedKernel::queries`].
    pub kernel: SeaweedKernel,
    /// Number of merge levels executed (each `O(1)` rounds).
    pub levels: usize,
}

/// One block of the divide and conquer: its kernel is over the compact alphabet of
/// the block's own values; `values` maps that alphabet back to global ranks.
#[derive(Clone, Debug)]
struct Block {
    /// Sorted global ranks of the values occurring in this block.
    values: Vec<usize>,
    /// Kernel of (identity over `values`, block contents).
    kernel: SeaweedKernel,
}

/// Computes the full semi-local LIS kernel of `seq` on the cluster.
pub fn lis_kernel_mpc<T: Ord>(
    cluster: &mut Cluster,
    seq: &[T],
    params: &MulParams,
) -> MpcLisOutcome {
    let n = seq.len();
    if n == 0 {
        return MpcLisOutcome {
            length: 0,
            kernel: SeaweedKernel::comb(&[], &[]),
            levels: 0,
        };
    }

    // Step 1: ranking. One sort of (value, position) pairs (Lemma 2.5) plus an
    // inverse permutation (Lemma 2.3).
    cluster.set_phase(Some("lis-rank"));
    cluster.charge_rounds("lis-rank", costs::SORT + costs::INVERSE_PERMUTATION);
    let ranks = rank_sequence(seq);

    // Step 2: base blocks combed locally (one group_map).
    cluster.set_phase(Some("lis-base-blocks"));
    let block_size = cluster.config().space.clamp(4, n.max(4));
    let positions = cluster.distribute(
        ranks
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as u32, r))
            .collect::<Vec<_>>(),
    );
    let base: Vec<(u32, Block)> = {
        let bs = block_size as u32;
        let kernels = cluster.group_map(
            positions,
            move |&(pos, _)| pos / bs,
            move |&block_id, mut items| {
                items.sort_unstable_by_key(|&(pos, _)| pos);
                let block_values: Vec<u32> = items.iter().map(|&(_, r)| r).collect();
                let mut values: Vec<usize> = block_values.iter().map(|&r| r as usize).collect();
                values.sort_unstable();
                let relabelled: Vec<u32> = block_values
                    .iter()
                    .map(|&r| values.partition_point(|&v| v < r as usize) as u32)
                    .collect();
                let kernel = lis_kernel_permutation(&relabelled);
                vec![(block_id, Block { values, kernel })]
            },
        );
        let mut base = cluster.collect(kernels);
        base.sort_by_key(|&(id, _)| id);
        base
    };
    let mut blocks: Vec<Block> = base.into_iter().map(|(_, b)| b).collect();

    // Step 3: pairwise merge levels.
    let mut levels = 0;
    while blocks.len() > 1 {
        levels += 1;
        cluster.set_phase(Some("lis-merge"));
        // Relabelling both halves of every pair to the union alphabet is an O(1)
        // round sort (the §4.2 "relabel A_lo and A_hi" step).
        cluster.charge_rounds("lis-relabel", costs::SORT);

        // Prepare the padded ⊡ operands of every pair; odd block passes through.
        let mut pairs = Vec::new();
        let mut merged_meta = Vec::new();
        let mut leftover = None;
        let mut iter = blocks.into_iter();
        while let Some(lo) = iter.next() {
            match iter.next() {
                Some(hi) => {
                    let union: Vec<usize> = merge_sorted(&lo.values, &hi.values);
                    let lo_inflated = lo
                        .kernel
                        .inflate_rows(&positions_in(&union, &lo.values), union.len());
                    let hi_inflated = hi
                        .kernel
                        .inflate_rows(&positions_in(&union, &hi.values), union.len());
                    let (p1, p2) = compose_operands(&lo_inflated, &hi_inflated);
                    pairs.push((p1, p2));
                    merged_meta.push((lo_inflated, hi_inflated, union));
                }
                None => leftover = Some(lo),
            }
        }

        // One batched MPC multiplication merges every pair in the same rounds.
        let products = monge_mpc::mul_batch(cluster, &pairs, params);
        let mut next: Vec<Block> = products
            .into_iter()
            .zip(merged_meta)
            .map(|(prod, (lo_inf, hi_inf, union))| Block {
                values: union,
                kernel: compose_from_product(&lo_inf, &hi_inf, prod),
            })
            .collect();
        if let Some(b) = leftover {
            next.push(b);
        }
        blocks = next;
    }

    let root = blocks.pop().expect("at least one block");
    debug_assert_eq!(root.kernel.y_len(), n);
    let length = root.kernel.lcs_window(0, n);
    cluster.set_phase(None::<String>);
    MpcLisOutcome {
        length,
        kernel: root.kernel,
        levels,
    }
}

/// Computes only the LIS length (Theorem 1.3).
pub fn lis_length_mpc<T: Ord>(cluster: &mut Cluster, seq: &[T], params: &MulParams) -> usize {
    lis_kernel_mpc(cluster, seq, params).length
}

/// Positions of each element of `subset` within `superset` (both strictly
/// increasing, `subset ⊆ superset`).
fn positions_in(superset: &[usize], subset: &[usize]) -> Vec<usize> {
    subset
        .iter()
        .map(|&v| {
            let idx = superset.partition_point(|&u| u < v);
            debug_assert_eq!(superset[idx], v);
            idx
        })
        .collect()
}

/// Merges two strictly increasing sequences (their elements are disjoint because
/// global ranks are unique).
fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if j == b.len() || (i < a.len() && a[i] < b[j]) {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_runtime::MpcConfig;
    use rand::prelude::*;
    use seaweed_lis::baselines::{lis_length_patience, semi_local_lis_brute};

    fn cluster_for(n: usize, delta: f64) -> Cluster {
        Cluster::new(MpcConfig::lenient(n.max(4), delta))
    }

    #[test]
    fn matches_patience_on_random_permutations() {
        let mut rng = StdRng::seed_from_u64(1);
        for &n in &[1usize, 2, 10, 65, 130, 400, 1000] {
            let mut seq: Vec<u32> = (0..n as u32).collect();
            seq.shuffle(&mut rng);
            let mut cluster = cluster_for(n, 0.5);
            // A small space budget forces several merge levels.
            let mut cfg = cluster.config().clone();
            cfg.space = 32;
            cluster = Cluster::new(cfg);
            let got = lis_length_mpc(&mut cluster, &seq, &MulParams::default());
            assert_eq!(got, lis_length_patience(&seq), "n={n}");
        }
    }

    #[test]
    fn matches_patience_with_duplicates() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let n = rng.gen_range(1..300);
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..40)).collect();
            let mut cluster = Cluster::new(MpcConfig::lenient(n.max(4), 0.5).with_space(24));
            let got = lis_length_mpc(&mut cluster, &seq, &MulParams::default());
            assert_eq!(got, lis_length_patience(&seq), "{seq:?}");
        }
    }

    #[test]
    fn kernel_matches_sequential_divide_and_conquer() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200;
        let mut seq: Vec<u32> = (0..n as u32).collect();
        seq.shuffle(&mut rng);
        let mut cluster = Cluster::new(MpcConfig::lenient(n, 0.5).with_space(32));
        let outcome = lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
        let sequential = seaweed_lis::lis::lis_kernel(&seq);
        assert_eq!(outcome.kernel, sequential);
    }

    #[test]
    fn semi_local_queries_from_mpc_kernel() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 60;
        let mut seq: Vec<u32> = (0..n as u32).collect();
        seq.shuffle(&mut rng);
        let mut cluster = Cluster::new(MpcConfig::lenient(n, 0.5).with_space(16));
        let outcome = lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
        let brute = semi_local_lis_brute(&seq);
        let queries = outcome.kernel.queries();
        for l in 0..=n {
            for r in l..=n {
                assert_eq!(queries.lcs_window(l, r), brute[l][r], "[{l},{r})");
            }
        }
    }

    #[test]
    fn round_count_grows_logarithmically() {
        // Rounds per merge level are bounded by a constant; the number of levels is
        // ⌈log₂(n / B)⌉, so rounds/levels must stay flat as n grows.
        let mut per_level = Vec::new();
        for &n in &[256usize, 512, 1024, 2048] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let mut seq: Vec<u32> = (0..n as u32).collect();
            seq.shuffle(&mut rng);
            let mut cluster = Cluster::new(MpcConfig::lenient(n, 0.5).with_space(64));
            let outcome = lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
            assert_eq!(outcome.length, lis_length_patience(&seq));
            assert!(outcome.levels >= 2);
            per_level.push(cluster.rounds() as f64 / outcome.levels as f64);
        }
        let min = per_level.iter().cloned().fold(f64::MAX, f64::min);
        let max = per_level.iter().cloned().fold(0.0, f64::max);
        assert!(
            max <= 4.0 * min,
            "rounds per level should stay bounded: {per_level:?}"
        );
    }

    #[test]
    fn sorted_and_reversed_inputs() {
        let inc: Vec<u32> = (0..500).collect();
        let dec: Vec<u32> = (0..500).rev().collect();
        let mut cluster = Cluster::new(MpcConfig::lenient(500, 0.5).with_space(48));
        assert_eq!(
            lis_length_mpc(&mut cluster, &inc, &MulParams::default()),
            500
        );
        let mut cluster = Cluster::new(MpcConfig::lenient(500, 0.5).with_space(48));
        assert_eq!(lis_length_mpc(&mut cluster, &dec, &MulParams::default()), 1);
    }

    #[test]
    fn empty_and_singleton() {
        let mut cluster = cluster_for(4, 0.5);
        assert_eq!(
            lis_length_mpc::<u32>(&mut cluster, &[], &MulParams::default()),
            0
        );
        assert_eq!(
            lis_length_mpc(&mut cluster, &[7u32], &MulParams::default()),
            1
        );
    }
}
