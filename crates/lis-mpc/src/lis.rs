//! Theorem 1.3: exact LIS length in `O(log n)` fully-scalable MPC rounds.
//!
//! Level-by-level divide and conquer over the positions of the input sequence:
//!
//! 1. **Rank** the input (one `O(1)`-round sort): strictly increasing subsequences of
//!    the original sequence correspond exactly to increasing subsequences of the rank
//!    permutation (ties broken by descending position).
//! 2. **Base blocks**: the sequence is cut into blocks sized off the space budget
//!    (see [`base_block_size`]); each machine combs the seaweed kernel of its
//!    blocks locally in budget-bounded streamed sub-blocks
//!    ([`seaweed_lis::lis::lis_kernel_permutation_streamed`]) and emits the
//!    kernel *entries*, so the ledger observes the kernel's real `3B`-item
//!    footprint rather than an opaque handle.
//! 3. **Merge levels**: adjacent blocks are merged pairwise. Per level, every pair is
//!    relabelled to the union of its value sets (inflation — `O(1)` rounds of index
//!    arithmetic) and the two kernels are composed with one *batched* MPC unit-Monge
//!    multiplication (`monge_mpc::mul_batch`), run under a `lis-merge-L<k>` ledger
//!    scope so every inner `⊡` phase is attributed per level. Beneath the round
//!    accounting, every pair's local `⊡` runs on the arena-backed steady-ant
//!    kernel (`monge::steady_ant`): one reusable per-worker scratch workspace
//!    serves the entire level's merge batch, so the hot path allocates nothing
//!    but the results. The level count is `⌈log₂(n / B)⌉`, hence `O(log n)`
//!    rounds in total.
//!
//! The whole pipeline honors the strict `s = Õ(n^{1−δ})` budget: it runs on
//! [`mpc_runtime::MpcConfig::new`] (strict) clusters with zero recorded
//! violations. The final kernel answers every semi-local (window) LIS query; the
//! global LIS length is read off the full window.

use crate::recovery;
use crate::witness::{self, Provenance, TraceNode, WitnessTrace};
use monge::PermutationMatrix;
use monge_mpc::MulParams;
use mpc_runtime::{costs, Cluster, MpcConfig};
use seaweed_lis::kernel::{compose_from_product, compose_operands, SeaweedKernel};
use seaweed_lis::lis::{lis_kernel_permutation_streamed, rank_sequence};

/// Result of the MPC LIS computation.
#[derive(Clone, Debug)]
pub struct MpcLisOutcome {
    /// Length of the longest strictly increasing subsequence.
    pub length: usize,
    /// The semi-local seaweed kernel of the whole sequence (Corollary 1.3.2): window
    /// queries `LIS(A[l..r))` are answered by [`SeaweedKernel::lcs_window`] /
    /// [`SeaweedKernel::queries`].
    pub kernel: SeaweedKernel,
    /// Number of merge levels executed (each `O(1)` rounds).
    pub levels: usize,
    /// Positions (indices into the input) of one longest strictly increasing
    /// subsequence, present when witness recovery was requested
    /// ([`lis_witness_mpc`]); [`lis_kernel_mpc`] leaves it `None`.
    pub witness: Option<Vec<usize>>,
}

/// One block of the divide and conquer: its kernel is over the compact alphabet of
/// the block's own values; `values` maps that alphabet back to global ranks.
#[derive(Clone, Debug)]
pub(crate) struct Block {
    /// Sorted global ranks of the values occurring in this block.
    pub(crate) values: Vec<usize>,
    /// Kernel of (identity over `values`, block contents).
    pub(crate) kernel: SeaweedKernel,
}

/// Entry tags for the base-phase kernel emission: a block's sorted value set…
const KIND_VALUE: u8 = 0;
/// …and its kernel's entry → exit rows.
const KIND_EXIT: u8 = 1;

/// Combs one base block locally (in budget-bounded streamed sub-blocks) and
/// emits its checkpoint as `(block, kind, index, value)` entries — the shared
/// kernel of the base phase and of `recovery-base` re-combing.
pub(crate) fn comb_block_entries(
    block_id: u32,
    mut items: Vec<(u32, u32)>,
    chunk: usize,
) -> Vec<(u32, u8, u32, u32)> {
    items.sort_unstable_by_key(|&(pos, _)| pos);
    let block_values: Vec<u32> = items.iter().map(|&(_, r)| r).collect();
    let mut values: Vec<u32> = block_values.clone();
    values.sort_unstable();
    let relabelled: Vec<u32> = block_values
        .iter()
        .map(|&r| values.partition_point(|&v| v < r) as u32)
        .collect();
    let kernel = lis_kernel_permutation_streamed(&relabelled, chunk);
    let mut out = Vec::with_capacity(3 * values.len());
    for (i, &v) in values.iter().enumerate() {
        out.push((block_id, KIND_VALUE, i as u32, v));
    }
    for e in 0..kernel.permutation().size() {
        out.push((block_id, KIND_EXIT, e as u32, kernel.exit_of(e) as u32));
    }
    out
}

/// Rebuilds [`Block`]s from collected base-phase entries, keyed by block id
/// (ids need not be contiguous — recovery re-combs a sparse subset).
pub(crate) fn blocks_from_entries(mut flat: Vec<(u32, u8, u32, u32)>) -> Vec<(u32, Block)> {
    flat.sort_unstable();
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < flat.len() {
        let block_id = flat[i].0;
        let mut values = Vec::new();
        let mut exits = Vec::new();
        while i < flat.len() && flat[i].0 == block_id {
            let (_, kind, _, val) = flat[i];
            match kind {
                KIND_VALUE => values.push(val as usize),
                _ => exits.push(val),
            }
            i += 1;
        }
        let m = values.len();
        debug_assert_eq!(exits.len(), 2 * m);
        blocks.push((
            block_id,
            Block {
                values,
                kernel: SeaweedKernel::from_parts(m, m, PermutationMatrix::from_rows(exits)),
            },
        ));
    }
    blocks
}

/// The relabel-and-pad step of one pairwise merge, shared by the merge loop
/// and by `recovery-L<k>` re-derivation: both kernels inflated to the union
/// alphabet, plus the padded `⊡` operands.
pub(crate) struct MergePrep {
    /// Left child's kernel over the union alphabet.
    pub(crate) lo_inflated: SeaweedKernel,
    /// Right child's kernel over the union alphabet.
    pub(crate) hi_inflated: SeaweedKernel,
    /// Union of the children's sorted value sets.
    pub(crate) union: Vec<usize>,
    /// Padded operands for [`monge_mpc::mul_batch`].
    pub(crate) operands: (PermutationMatrix, PermutationMatrix),
}

/// Prepares one pair's merge (the §4.2 "relabel A_lo and A_hi" step).
pub(crate) fn prepare_merge(
    lo_values: &[usize],
    lo_kernel: &SeaweedKernel,
    hi_values: &[usize],
    hi_kernel: &SeaweedKernel,
) -> MergePrep {
    let union: Vec<usize> = merge_sorted(lo_values, hi_values);
    let lo_inflated = lo_kernel.inflate_rows(&positions_in(&union, lo_values), union.len());
    let hi_inflated = hi_kernel.inflate_rows(&positions_in(&union, hi_values), union.len());
    let operands = compose_operands(&lo_inflated, &hi_inflated);
    MergePrep {
        lo_inflated,
        hi_inflated,
        union,
        operands,
    }
}

/// Derives the base block size from the per-machine budget (the one place the
/// formula lives).
///
/// A block of `B` elements materializes, on the machine that combs it, its
/// sorted value set (`B` items) plus its seaweed kernel (`2B` permutation
/// entries) — `3B` resident items — and the greedy packing may co-locate up to
/// `⌈⌈n/B⌉ / m⌉` blocks on one machine. `B` is therefore the largest value not
/// exceeding the `⊡` local-solve threshold with
///
/// ```text
/// 3 · B · ⌈⌈n/B⌉ / m⌉ ≤ s
/// ```
///
/// (halving until it fits, floored at 4). With the default strict budget
/// (`s = 4·log₂(n)·n^{1−δ}`, threshold `s/4`) one block per machine satisfies
/// this at `B = s/4`, which is what the old `space`-sized blocks violated: a
/// block of `s` elements combs a kernel of `2s` seaweeds.
pub fn base_block_size(n: usize, config: &MpcConfig, local_threshold: usize) -> usize {
    let machines = config.machines.max(1);
    let mut b = local_threshold.min(n.max(4)).max(4);
    while b > 4 {
        let per_machine = n.div_ceil(b).div_ceil(machines);
        if 3 * b * per_machine <= config.space {
            break;
        }
        b = (b / 2).max(4);
    }
    b
}

/// Chunk size for streamed base-block combing: the largest sub-block whose
/// modeled `(2c)²`-bit crossing history fits the machine's word budget
/// (`c²/16 ≤ s`), floored at the direct-comb base. (The actual comb is the
/// history-free bit-parallel fast path; this budget keeps the space model
/// honest for the reference construction.)
fn comb_chunk(space: usize) -> usize {
    (4.0 * (space as f64).sqrt()).floor().max(32.0) as usize
}

/// Computes the full semi-local LIS kernel of `seq` on the cluster.
pub fn lis_kernel_mpc<T: Ord>(
    cluster: &mut Cluster,
    seq: &[T],
    params: &MulParams,
) -> MpcLisOutcome {
    pipeline(cluster, seq, params, false).0
}

/// Computes the LIS kernel *and* recovers an actual witness: the bottom-up merge
/// records, per level, each node's value set and kernel (the seaweed crossing
/// structure the split needs), then `lis_mpc::witness` runs the `O(log n)`-round
/// top-down traceback — splitting a value-window query at every merge
/// ([`seaweed_lis::lis::split_window_lis`]), reconstructing each base block's
/// slice locally, and concatenating the slices with one final rebalanced sort.
/// The returned outcome carries the witness as input positions
/// ([`MpcLisOutcome::witness`], always `Some`); the descent runs under
/// `lis-witness-L<k>` / `lis-witness-base` ledger scopes and stays strict.
pub fn lis_witness_mpc<T: Ord>(
    cluster: &mut Cluster,
    seq: &[T],
    params: &MulParams,
) -> MpcLisOutcome {
    let (mut outcome, trace) = pipeline(cluster, seq, params, true);
    let positions = match &trace {
        Some(trace) => witness::recover(cluster, trace, outcome.length),
        None => Vec::new(),
    };
    debug_assert_eq!(positions.len(), outcome.length);
    outcome.witness = Some(positions);
    outcome
}

/// The base block size the pipeline picks for a length-`n` sequence on
/// `config` — the one [`base_block_size`] call site's parameters, exposed so
/// out-of-pipeline trace builders ([`crate::witness::WitnessTrace::record`])
/// and incremental rebuilds can reproduce the pipeline's merge-tree shape
/// bit for bit.
pub fn pipeline_block_size(n: usize, config: &MpcConfig, params: &MulParams) -> usize {
    let local_threshold = params.resolved(config, n.max(2)).local_threshold;
    base_block_size(n, config, local_threshold)
}

/// The shared Theorem 1.3 pipeline; with `record` set, every level's nodes are
/// snapshotted into a [`WitnessTrace`] for the top-down traceback (in the model
/// the snapshots are the per-level kernel checkpoints left resident on the
/// machines that combed/merged them).
pub(crate) fn pipeline<T: Ord>(
    cluster: &mut Cluster,
    seq: &[T],
    params: &MulParams,
    record: bool,
) -> (MpcLisOutcome, Option<WitnessTrace>) {
    let n = seq.len();
    // Positions, ranks and kernel entries travel the cluster as u32: beyond
    // u32::MAX the casts below would silently truncate, so refuse loudly. (The
    // LCS pipeline funnels its match-pair list through here, so this guard also
    // caps the Corollary 1.3.1 pair count.)
    assert!(
        n <= u32::MAX as usize,
        "lis-mpc indexes positions and ranks as u32: n = {n} exceeds u32::MAX"
    );
    if n == 0 {
        return (
            MpcLisOutcome {
                length: 0,
                kernel: SeaweedKernel::comb(&[], &[]),
                levels: 0,
                witness: None,
            },
            None,
        );
    }

    // Fault tolerance: with kills scheduled, every level's nodes double as
    // checkpoints and are replicated onto neighbor machines; kills drained via
    // `poll_kills` destroy the lost shards, which are re-derived under
    // `recovery-*` scopes (see `crate::recovery`). Delays need no response —
    // the barrier absorbs them. `with_checkpoints` forces the replication
    // charges without faults, to measure the checkpoint overhead in isolation.
    let fault_tolerant = cluster.config().faults.has_kills();
    let replicate = fault_tolerant || cluster.config().checkpoints;
    let checkpoint = record || replicate;

    // Step 1: ranking. One sort of (value, position) pairs (Lemma 2.5) plus an
    // inverse permutation (Lemma 2.3).
    cluster.set_phase(Some("lis-rank"));
    cluster.charge_rounds("lis-rank", costs::SORT + costs::INVERSE_PERMUTATION);
    let ranks = rank_sequence(seq);

    // Step 2: base blocks, sized off the budget and combed locally in streamed
    // sub-blocks (one group_map). Each block emits its kernel as entries —
    // (block, kind, index, value) — so the ledger sees the true 3B-item
    // footprint per block and strict clusters enforce it.
    cluster.set_phase(Some("lis-base"));
    let block_size = pipeline_block_size(n, cluster.config(), params);
    let chunk = comb_chunk(cluster.config().space);
    let positions = cluster.distribute(
        ranks
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as u32, r))
            .collect::<Vec<_>>(),
    );
    let entries = {
        let bs = block_size as u32;
        cluster.group_map(
            positions,
            move |&(pos, _)| pos / bs,
            move |&block_id, items| comb_block_entries(block_id, items, chunk),
        )
    };
    let mut blocks: Vec<Block> = blocks_from_entries(cluster.collect(entries))
        .into_iter()
        .map(|(_, b)| b)
        .collect();

    // Kills fired during ranking or base combing destroyed base blocks before
    // any checkpoint existed; re-comb them from the durable input. The loop
    // re-polls because the repair's own barriers can fire further events.
    if fault_tolerant {
        loop {
            let killed = cluster.poll_kills();
            if killed.is_empty() {
                break;
            }
            recovery::repair_base(cluster, &mut blocks, &ranks, block_size, chunk, &killed);
        }
        cluster.set_phase(Some("lis-base"));
    }

    // Witness traceback checkpoints: level 0 = the base blocks as combed.
    let mut trace_levels: Vec<Vec<TraceNode>> = Vec::new();
    if checkpoint {
        trace_levels.push(
            blocks
                .iter()
                .enumerate()
                .map(|(i, b)| TraceNode {
                    values: b.values.clone(),
                    kernel: b.kernel.clone(),
                    prov: Provenance::Base { block: i as u32 },
                })
                .collect(),
        );
    }
    if replicate {
        recovery::checkpoint_blocks(cluster, &blocks);
    }

    // Step 3: pairwise merge levels, each under its own ledger scope so the
    // inner ⊡ phases are attributed per level (`lis-merge-L2/combine-route`).
    let mut levels = 0;
    while blocks.len() > 1 {
        levels += 1;
        cluster.set_phase_scope(Some(format!("lis-merge-L{levels}")));
        // Relabelling both halves of every pair to the union alphabet is an O(1)
        // round sort (the §4.2 "relabel A_lo and A_hi" step).
        cluster.set_phase(Some("relabel"));
        cluster.charge_rounds("lis-relabel", costs::SORT);

        // Prepare the padded ⊡ operands of every pair; odd block passes through.
        let mut pairs = Vec::new();
        let mut merged_meta = Vec::new();
        let mut leftover = None;
        let mut iter = blocks.into_iter();
        while let Some(lo) = iter.next() {
            match iter.next() {
                Some(hi) => {
                    let prep = prepare_merge(&lo.values, &lo.kernel, &hi.values, &hi.kernel);
                    pairs.push(prep.operands);
                    merged_meta.push((prep.lo_inflated, prep.hi_inflated, prep.union));
                }
                None => leftover = Some(lo),
            }
        }

        // One batched MPC multiplication merges every pair in the same rounds.
        let products = monge_mpc::mul_batch(cluster, &pairs, params);
        let mut next: Vec<Block> = products
            .into_iter()
            .zip(merged_meta)
            .map(|(prod, (lo_inf, hi_inf, union))| Block {
                values: union,
                kernel: compose_from_product(&lo_inf, &hi_inf, prod),
            })
            .collect();
        if let Some(b) = leftover {
            next.push(b);
        }
        // Kills fired during this level's barriers destroyed nodes under
        // construction; re-derive them from the level-(L−1) checkpoints.
        if fault_tolerant {
            loop {
                let killed = cluster.poll_kills();
                if killed.is_empty() {
                    break;
                }
                recovery::repair_level(
                    cluster,
                    &mut next,
                    &trace_levels[levels - 1],
                    levels,
                    &killed,
                    params,
                );
            }
            cluster.set_phase_scope(Some(format!("lis-merge-L{levels}")));
        }
        if checkpoint {
            // Provenance mirrors the construction order: pair p merged children
            // (2p, 2p+1) of the previous level; an odd leftover passed through.
            let prev_len = trace_levels.last().expect("level 0 recorded").len();
            trace_levels.push(
                next.iter()
                    .enumerate()
                    .map(|(i, b)| TraceNode {
                        values: b.values.clone(),
                        kernel: b.kernel.clone(),
                        prov: if 2 * i + 1 < prev_len {
                            Provenance::Merge {
                                lo: 2 * i,
                                hi: 2 * i + 1,
                            }
                        } else {
                            Provenance::Pass { child: 2 * i }
                        },
                    })
                    .collect(),
            );
        }
        if replicate {
            recovery::checkpoint_blocks(cluster, &next);
        }
        blocks = next;
    }
    cluster.set_phase_scope(None::<String>);

    let root = blocks.pop().expect("at least one block");
    // A kill landing after the final merge can take the root itself (node 0
    // lives on machine 0); its checkpoint replica restores it in one shuffle.
    if fault_tolerant {
        let killed = cluster.poll_kills();
        if killed.contains(&0) {
            cluster.set_phase_scope(Some("recovery-root"));
            cluster.set_phase(Some("restore"));
            cluster.charge_superstep(
                "restore",
                costs::RESTORE,
                (root.values.len() + root.kernel.checkpoint_entries()) as u64,
            );
            cluster.set_phase_scope(None::<String>);
        }
    }
    debug_assert_eq!(root.kernel.y_len(), n);
    let length = root.kernel.lcs_window(0, n);
    cluster.set_phase(None::<String>);
    let trace = record.then_some(WitnessTrace {
        ranks,
        block_size,
        levels: trace_levels,
    });
    (
        MpcLisOutcome {
            length,
            kernel: root.kernel,
            levels,
            witness: None,
        },
        trace,
    )
}

/// Computes only the LIS length (Theorem 1.3).
pub fn lis_length_mpc<T: Ord>(cluster: &mut Cluster, seq: &[T], params: &MulParams) -> usize {
    lis_kernel_mpc(cluster, seq, params).length
}

/// Positions of each element of `subset` within `superset` (both strictly
/// increasing, `subset ⊆ superset`).
fn positions_in(superset: &[usize], subset: &[usize]) -> Vec<usize> {
    subset
        .iter()
        .map(|&v| {
            let idx = superset.partition_point(|&u| u < v);
            debug_assert_eq!(superset[idx], v);
            idx
        })
        .collect()
}

/// Merges two strictly increasing sequences (their elements are disjoint because
/// global ranks are unique).
fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if j == b.len() || (i < a.len() && a[i] < b[j]) {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use seaweed_lis::baselines::{lis_length_patience, semi_local_lis_brute};

    /// A strict cluster at the paper's default budget: any overshoot panics, so
    /// every test doubles as a zero-violation assertion. Higher δ shrinks the
    /// per-machine budget and forces more merge levels.
    fn strict_cluster(n: usize, delta: f64) -> Cluster {
        Cluster::new(MpcConfig::new(n.max(4), delta))
    }

    #[test]
    fn matches_patience_on_random_permutations() {
        let mut rng = StdRng::seed_from_u64(1);
        for &n in &[1usize, 2, 10, 65, 130, 400, 1000] {
            let mut seq: Vec<u32> = (0..n as u32).collect();
            seq.shuffle(&mut rng);
            // A large δ forces several merge levels under the strict budget.
            let mut cluster = strict_cluster(n, 0.75);
            let got = lis_length_mpc(&mut cluster, &seq, &MulParams::default());
            assert_eq!(got, lis_length_patience(&seq), "n={n}");
            assert_eq!(cluster.ledger().space_violations, 0);
        }
    }

    #[test]
    fn matches_patience_with_duplicates() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let n = rng.gen_range(1..300);
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..40)).collect();
            let mut cluster = strict_cluster(n as usize, 0.7);
            let got = lis_length_mpc(&mut cluster, &seq, &MulParams::default());
            assert_eq!(got, lis_length_patience(&seq), "{seq:?}");
        }
    }

    #[test]
    fn kernel_matches_sequential_divide_and_conquer() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200;
        let mut seq: Vec<u32> = (0..n as u32).collect();
        seq.shuffle(&mut rng);
        let mut cluster = strict_cluster(n, 0.75);
        let outcome = lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
        assert!(outcome.levels >= 2, "the strict budget must force merging");
        let sequential = seaweed_lis::lis::lis_kernel(&seq);
        assert_eq!(outcome.kernel, sequential);
    }

    #[test]
    fn semi_local_queries_from_mpc_kernel() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 60;
        let mut seq: Vec<u32> = (0..n as u32).collect();
        seq.shuffle(&mut rng);
        let mut cluster = strict_cluster(n, 0.6);
        let outcome = lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
        let brute = semi_local_lis_brute(&seq);
        let queries = outcome.kernel.queries();
        for l in 0..=n {
            for r in l..=n {
                assert_eq!(queries.lcs_window(l, r), brute[l][r], "[{l},{r})");
            }
        }
    }

    #[test]
    fn round_count_grows_logarithmically() {
        // Rounds per merge level are bounded by a constant; the number of levels is
        // ⌈log₂(n / B)⌉, so rounds/levels must stay flat as n grows.
        let mut per_level = Vec::new();
        for &n in &[256usize, 512, 1024, 2048] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let mut seq: Vec<u32> = (0..n as u32).collect();
            seq.shuffle(&mut rng);
            let mut cluster = strict_cluster(n, 0.75);
            let outcome = lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
            assert_eq!(outcome.length, lis_length_patience(&seq));
            assert!(outcome.levels >= 2);
            per_level.push(cluster.rounds() as f64 / outcome.levels as f64);
        }
        let min = per_level.iter().cloned().fold(f64::MAX, f64::min);
        let max = per_level.iter().cloned().fold(0.0, f64::max);
        assert!(
            max <= 4.0 * min,
            "rounds per level should stay bounded: {per_level:?}"
        );
    }

    #[test]
    fn merge_phases_are_scoped_per_level() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 512;
        let mut seq: Vec<u32> = (0..n as u32).collect();
        seq.shuffle(&mut rng);
        let mut cluster = strict_cluster(n, 0.75);
        let outcome = lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
        let ledger = cluster.ledger();
        for level in 1..=outcome.levels {
            let prefix = format!("lis-merge-L{level}/");
            assert!(
                ledger
                    .rounds_by_phase
                    .keys()
                    .any(|k| k.starts_with(&prefix)),
                "no ledger phases recorded under {prefix}"
            );
        }
        // Strict cluster + explicit check: no phase recorded a violation.
        assert!(ledger.violations_by_phase.is_empty());
    }

    #[test]
    fn base_block_size_respects_budget() {
        // One block's 3B footprint times the blocks-per-machine factor must fit.
        for &(n, delta) in &[(1usize << 12, 0.5), (1 << 14, 0.75), (1 << 10, 0.25)] {
            let cfg = MpcConfig::new(n, delta);
            let thr = (cfg.space / 4).max(4);
            let b = base_block_size(n, &cfg, thr);
            let per_machine = n.div_ceil(b).div_ceil(cfg.machines);
            assert!(
                3 * b * per_machine <= cfg.space || b == 4,
                "B={b} overshoots at n={n} δ={delta}"
            );
            assert!(b <= thr);
        }
    }

    #[test]
    fn witness_is_valid_across_depths() {
        // The recovered positions must spell out an actual LIS — strictly
        // increasing positions and values, length equal to the kernel's — at
        // budgets forcing several merge levels (with odd block counts too).
        let mut rng = StdRng::seed_from_u64(11);
        for &(n, delta) in &[
            (1usize, 0.5),
            (5, 0.5),
            (130, 0.75),
            (400, 0.75),
            (1000, 0.6),
        ] {
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..60) as u32).collect();
            let mut cluster = strict_cluster(n, delta);
            let outcome = lis_witness_mpc(&mut cluster, &seq, &MulParams::default());
            let witness = outcome.witness.as_ref().expect("witness requested");
            assert_eq!(outcome.length, lis_length_patience(&seq), "n={n}");
            assert_eq!(witness.len(), outcome.length, "n={n}");
            assert!(witness.windows(2).all(|w| w[0] < w[1]));
            assert!(
                witness.windows(2).all(|w| seq[w[0]] < seq[w[1]]),
                "not strictly increasing: n={n} δ={delta}"
            );
            assert_eq!(cluster.ledger().space_violations, 0);
        }
    }

    #[test]
    fn witness_phases_are_scoped_and_cheap() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 512;
        let mut seq: Vec<u32> = (0..n as u32).collect();
        seq.shuffle(&mut rng);

        let mut plain = strict_cluster(n, 0.75);
        let _ = lis_kernel_mpc(&mut plain, &seq, &MulParams::default());
        let plain_rounds = plain.rounds();

        let mut traced = strict_cluster(n, 0.75);
        let outcome = lis_witness_mpc(&mut traced, &seq, &MulParams::default());
        assert!(outcome.levels >= 2);
        let ledger = traced.ledger();
        // Every merge level has a matching witness-descent scope, plus the base
        // reconstruction; none of them may violate the strict budget (the
        // cluster would have panicked) nor be recorded as violating.
        for level in 1..=outcome.levels {
            let prefix = format!("lis-witness-L{level}/");
            assert!(
                ledger
                    .rounds_by_phase
                    .keys()
                    .any(|k| k.starts_with(&prefix)),
                "no ledger phases recorded under {prefix}"
            );
        }
        assert!(ledger
            .rounds_by_phase
            .keys()
            .any(|k| k.starts_with("lis-witness-base/")));
        assert!(ledger.violations_by_phase.is_empty());
        // The descent is a small constant fraction of the bottom-up merge.
        assert!(
            traced.rounds() <= 2 * plain_rounds,
            "witness recovery more than doubled the rounds: {} vs {}",
            traced.rounds(),
            plain_rounds
        );
    }

    #[test]
    fn witness_on_duplicate_heavy_input() {
        // Ties rank right-to-left, so a valid witness exists even when the
        // sequence is mostly one value.
        let mut rng = StdRng::seed_from_u64(13);
        let seq: Vec<u32> = (0..300).map(|_| rng.gen_range(0..4) as u32).collect();
        let mut cluster = strict_cluster(seq.len(), 0.7);
        let outcome = lis_witness_mpc(&mut cluster, &seq, &MulParams::default());
        let witness = outcome.witness.unwrap();
        assert_eq!(witness.len(), lis_length_patience(&seq));
        assert!(witness.windows(2).all(|w| seq[w[0]] < seq[w[1]]));
    }

    #[test]
    fn witness_of_empty_and_constant_sequences() {
        let mut cluster = strict_cluster(4, 0.5);
        let outcome = lis_witness_mpc::<u32>(&mut cluster, &[], &MulParams::default());
        assert_eq!(outcome.witness.as_deref(), Some(&[][..]));
        let mut cluster = strict_cluster(64, 0.5);
        let outcome = lis_witness_mpc(&mut cluster, &[3u32; 64], &MulParams::default());
        assert_eq!(outcome.length, 1);
        assert_eq!(outcome.witness.unwrap().len(), 1);
    }

    #[test]
    fn single_kill_at_each_merge_level_recovers_bit_identically() {
        use mpc_runtime::FaultPlan;
        let mut rng = StdRng::seed_from_u64(21);
        let n = 512;
        let mut seq: Vec<u32> = (0..n as u32).collect();
        seq.shuffle(&mut rng);
        // Probe run: fault-free, to locate each merge level's superstep span.
        let mut probe = strict_cluster(n, 0.75);
        let baseline = lis_witness_mpc(&mut probe, &seq, &MulParams::default());
        let base_rounds = probe.rounds();
        assert!(baseline.levels >= 2);
        for level in 1..=baseline.levels {
            let (lo, hi) = probe
                .ledger()
                .superstep_span_of(&format!("lis-merge-L{level}/"))
                .expect("level ran");
            // Kill machine 0 mid-level: node 0 of every level lives there, so
            // the repair path genuinely re-derives (and the root restore runs
            // when the kill lands after the final merge).
            let plan = FaultPlan::kill(0, ((lo + hi) / 2).max(1));
            let mut faulty = Cluster::new(MpcConfig::new(n, 0.75).with_faults(plan));
            let outcome = lis_witness_mpc(&mut faulty, &seq, &MulParams::default());
            assert_eq!(outcome.length, baseline.length, "level {level}");
            assert_eq!(outcome.kernel, baseline.kernel, "level {level}");
            assert_eq!(outcome.witness, baseline.witness, "level {level}");
            let ledger = faulty.ledger();
            assert_eq!(ledger.kills(), 1, "level {level}");
            assert_eq!(ledger.space_violations, 0, "level {level}");
            assert!(
                faulty.rounds() <= 2 * base_rounds,
                "recovery overhead at level {level}: {} vs {base_rounds}",
                faulty.rounds()
            );
        }
    }

    #[test]
    fn kill_during_base_phase_recombs_from_input() {
        use mpc_runtime::FaultPlan;
        let mut rng = StdRng::seed_from_u64(22);
        let seq: Vec<u32> = (0..400).map(|_| rng.gen_range(0..80) as u32).collect();
        let mut probe = strict_cluster(seq.len(), 0.7);
        let baseline = lis_witness_mpc(&mut probe, &seq, &MulParams::default());
        // Superstep 1 is the rank sort; 2 the base group_map — both before any
        // checkpoint exists, so recovery must re-comb from the input.
        for at in [1, 2] {
            let mut faulty =
                Cluster::new(MpcConfig::new(seq.len(), 0.7).with_faults(FaultPlan::kill(0, at)));
            let outcome = lis_witness_mpc(&mut faulty, &seq, &MulParams::default());
            assert_eq!(outcome.length, baseline.length, "superstep {at}");
            assert_eq!(outcome.witness, baseline.witness, "superstep {at}");
            assert_eq!(faulty.ledger().space_violations, 0);
            assert!(faulty
                .ledger()
                .rounds_by_phase
                .keys()
                .any(|k| k.starts_with("recovery-base/")));
        }
    }

    #[test]
    fn straggler_delays_cost_stalls_not_rounds() {
        use mpc_runtime::FaultPlan;
        let mut rng = StdRng::seed_from_u64(23);
        let mut seq: Vec<u32> = (0..300).collect();
        seq.shuffle(&mut rng);
        let mut plain = strict_cluster(300, 0.7);
        let baseline = lis_witness_mpc(&mut plain, &seq, &MulParams::default());
        let plan = FaultPlan::delay(0, 2, 4).and_delay(1, 7, 3);
        let mut delayed = Cluster::new(MpcConfig::new(300, 0.7).with_faults(plan));
        let outcome = lis_witness_mpc(&mut delayed, &seq, &MulParams::default());
        assert_eq!(outcome.length, baseline.length);
        assert_eq!(outcome.kernel, baseline.kernel);
        assert_eq!(outcome.witness, baseline.witness);
        // Delay-only plans neither checkpoint nor recover: the synchronous
        // round count is exactly the fault-free one, the stall is ledgered.
        assert_eq!(delayed.rounds(), plain.rounds());
        assert_eq!(delayed.ledger().stall_rounds, 7);
        assert_eq!(delayed.ledger().fault_events.len(), 2);
    }

    #[test]
    fn forced_checkpoints_charge_replication_without_faults() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut seq: Vec<u32> = (0..512).collect();
        seq.shuffle(&mut rng);
        let mut plain = strict_cluster(512, 0.75);
        let baseline = lis_kernel_mpc(&mut plain, &seq, &MulParams::default());
        let mut ckpt = Cluster::new(MpcConfig::new(512, 0.75).with_checkpoints(true));
        let outcome = lis_kernel_mpc(&mut ckpt, &seq, &MulParams::default());
        assert_eq!(outcome.kernel, baseline.kernel);
        // One CHECKPOINT superstep per produced level (base + every merge).
        assert_eq!(
            ckpt.rounds() - plain.rounds(),
            (baseline.levels as u64 + 1) * costs::CHECKPOINT
        );
        assert_eq!(ckpt.ledger().space_violations, 0);
    }

    #[test]
    fn sorted_and_reversed_inputs() {
        let inc: Vec<u32> = (0..500).collect();
        let dec: Vec<u32> = (0..500).rev().collect();
        let mut cluster = strict_cluster(500, 0.7);
        assert_eq!(
            lis_length_mpc(&mut cluster, &inc, &MulParams::default()),
            500
        );
        let mut cluster = strict_cluster(500, 0.7);
        assert_eq!(lis_length_mpc(&mut cluster, &dec, &MulParams::default()), 1);
    }

    #[test]
    fn empty_and_singleton() {
        let mut cluster = strict_cluster(4, 0.5);
        assert_eq!(
            lis_length_mpc::<u32>(&mut cluster, &[], &MulParams::default()),
            0
        );
        assert_eq!(
            lis_length_mpc(&mut cluster, &[7u32], &MulParams::default()),
            1
        );
    }
}
