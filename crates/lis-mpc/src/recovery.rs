//! Level-checkpoint recovery for the Theorem 1.3 merge tree.
//!
//! The bottom-up pipeline already materializes, per level, every node's sorted
//! value set and seaweed kernel (the [`crate::witness`] trace). Under a fault
//! plan with kills ([`mpc_runtime::FaultPlan`]) those snapshots double as
//! **checkpoints**: after a level is produced, each node's `3|V|`-word
//! footprint (values + `2|V|`-entry kernel) is replicated onto a neighbor
//! machine in one shuffle ([`mpc_runtime::costs::CHECKPOINT`]), so a machine
//! crash never destroys the only copy.
//!
//! Placement is deterministic: merge-tree node `i` of any level is resident on
//! machine `i mod m` ([`machine_of_node`]), its replica on machine
//! `(i + 1) mod m` — which is why kills require `m ≥ 2`
//! ([`mpc_runtime::Cluster::new`] enforces this). When the pipeline drains a
//! kill ([`mpc_runtime::Cluster::poll_kills`]) it genuinely destroys the lost
//! nodes and re-derives them, in `O(1)` extra rounds per fault:
//!
//! * **Base level** ([`repair_base`], scope `recovery-base`): the input is
//!   durable (re-readable from distributed storage, as in any production MPC
//!   deployment), so the lost blocks are re-combed from their input elements
//!   with the same `group_map` the base phase ran — on just those blocks.
//! * **Merge level L** ([`repair_level`], scope `recovery-L<k>`): the lost
//!   pairs' children are refetched from their level-(L−1) checkpoint replicas
//!   (one [`mpc_runtime::costs::RESTORE`] shuffle), and the pairs' `⊡` merges
//!   are re-run for real with one batched [`monge_mpc::mul_batch`] on just the
//!   lost pairs; a lost pass-through node is a pure replica copy.
//! * **Witness descent** ([`restore_for_witness`], scope
//!   `recovery-witness-L<k>`): the descent's resident data *are* the
//!   checkpoints, so a kill only costs the replica restore; the in-flight
//!   split queries are re-derived deterministically from the level above.
//!
//! Because every re-derivation runs the same deterministic kernels on the same
//! checkpointed operands, recovered lengths and witnesses are **bit-identical**
//! to the fault-free run at every thread count, and the repaired run stays
//! strict (zero space violations) — the chaos harness and
//! `tests/properties.rs` assert exactly this.

use crate::lis::{blocks_from_entries, comb_block_entries, prepare_merge, Block};
use crate::witness::TraceNode;
use monge_mpc::MulParams;
use mpc_runtime::{costs, Cluster};
use seaweed_lis::kernel::{compose_from_product, SeaweedKernel};

/// Deterministic placement: merge-tree node `idx` (of any level) is resident
/// on machine `idx mod m`; its checkpoint replica lives on `(idx + 1) mod m`.
pub(crate) fn machine_of_node(idx: usize, machines: usize) -> usize {
    idx % machines.max(1)
}

/// Indices of the nodes (out of `count`) resident on any killed machine.
pub(crate) fn lost_nodes(count: usize, killed: &[usize], machines: usize) -> Vec<usize> {
    (0..count)
        .filter(|&i| killed.contains(&machine_of_node(i, machines)))
        .collect()
}

/// Checkpoint footprint of one node: its value set plus its kernel entries.
fn footprint(values: usize, kernel: &SeaweedKernel) -> u64 {
    (values + kernel.checkpoint_entries()) as u64
}

/// Replicates a freshly produced level's checkpoints onto neighbor machines:
/// one shuffle carrying every node's footprint, charged under the current
/// scope's `checkpoint` phase.
pub(crate) fn checkpoint_blocks(cluster: &mut Cluster, blocks: &[Block]) {
    let comm: u64 = blocks
        .iter()
        .map(|b| footprint(b.values.len(), &b.kernel))
        .sum();
    cluster.set_phase(Some("checkpoint"));
    cluster.charge_superstep("checkpoint", costs::CHECKPOINT, comm);
}

/// Re-derives base blocks lost to `killed` machines by re-combing them from
/// the durable input, under the `recovery-base` scope. Returns the number of
/// repaired blocks. The lost blocks are destroyed first — the recompute is the
/// only way their content comes back.
pub(crate) fn repair_base(
    cluster: &mut Cluster,
    blocks: &mut [Block],
    ranks: &[u32],
    block_size: usize,
    chunk: usize,
    killed: &[usize],
) -> usize {
    let machines = cluster.config().machines;
    let lost = lost_nodes(blocks.len(), killed, machines);
    if lost.is_empty() {
        return 0;
    }
    cluster.set_phase_scope(Some("recovery-base"));
    cluster.set_phase(Some("recomb"));
    for &i in &lost {
        blocks[i] = Block {
            values: Vec::new(),
            kernel: SeaweedKernel::comb(&[], &[]),
        };
    }
    let elems: Vec<(u32, u32)> = lost
        .iter()
        .flat_map(|&b| {
            let lo = b * block_size;
            let hi = ((b + 1) * block_size).min(ranks.len());
            (lo..hi).map(|p| (p as u32, ranks[p]))
        })
        .collect();
    let bs = block_size as u32;
    let entries = {
        let dv = cluster.distribute(elems);
        cluster.group_map(
            dv,
            move |&(pos, _)| pos / bs,
            move |&block_id, items| comb_block_entries(block_id, items, chunk),
        )
    };
    let flat = cluster.collect(entries);
    for (block_id, block) in blocks_from_entries(flat) {
        blocks[block_id as usize] = block;
    }
    cluster.set_phase_scope(None::<String>);
    lost.len()
}

/// Re-derives level-`level` nodes lost to `killed` machines from the
/// level-(L−1) checkpoints, under the `recovery-L<level>` scope: refetch the
/// children from their replicas (one restore shuffle), then re-run the lost
/// pairs' `⊡` merges with one real batched multiplication. Returns the number
/// of repaired nodes.
pub(crate) fn repair_level(
    cluster: &mut Cluster,
    nodes: &mut [Block],
    children: &[TraceNode],
    level: usize,
    killed: &[usize],
    params: &MulParams,
) -> usize {
    let machines = cluster.config().machines;
    let lost = lost_nodes(nodes.len(), killed, machines);
    if lost.is_empty() {
        return 0;
    }
    cluster.set_phase_scope(Some(format!("recovery-L{level}")));
    cluster.set_phase(Some("refetch"));
    let mut restore_comm = 0u64;
    let mut pairs = Vec::new();
    let mut merged = Vec::new();
    for &i in &lost {
        nodes[i] = Block {
            values: Vec::new(),
            kernel: SeaweedKernel::comb(&[], &[]),
        };
        if 2 * i + 1 < children.len() {
            // Same structural rule as the merge loop: pair i merged children
            // (2i, 2i+1); the odd leftover passed child 2i through.
            let (l, h) = (&children[2 * i], &children[2 * i + 1]);
            restore_comm +=
                footprint(l.values.len(), &l.kernel) + footprint(h.values.len(), &h.kernel);
            let prep = prepare_merge(&l.values, &l.kernel, &h.values, &h.kernel);
            pairs.push(prep.operands);
            merged.push((i, prep.lo_inflated, prep.hi_inflated, prep.union));
        } else {
            let c = &children[2 * i];
            restore_comm += footprint(c.values.len(), &c.kernel);
            nodes[i] = Block {
                values: c.values.clone(),
                kernel: c.kernel.clone(),
            };
        }
    }
    cluster.charge_superstep("restore", costs::RESTORE, restore_comm);

    if !pairs.is_empty() {
        cluster.set_phase(None::<String>);
        let products = monge_mpc::mul_batch(cluster, &pairs, params);
        for ((i, lo_inf, hi_inf, union), prod) in merged.into_iter().zip(products) {
            nodes[i] = Block {
                values: union,
                kernel: compose_from_product(&lo_inf, &hi_inf, prod),
            };
        }
    }
    cluster.set_phase_scope(None::<String>);
    lost.len()
}

/// Restores the witness descent's checkpointed nodes lost to `killed`
/// machines: one replica-restore shuffle under `scope` (the caller passes
/// `recovery-witness-L<k>`). The descent's split queries need no restore —
/// they are re-derived deterministically from the level above. Returns the
/// number of restored nodes.
pub(crate) fn restore_for_witness(
    cluster: &mut Cluster,
    level_nodes: &[TraceNode],
    killed: &[usize],
    scope: &str,
) -> usize {
    let machines = cluster.config().machines;
    let lost = lost_nodes(level_nodes.len(), killed, machines);
    if lost.is_empty() {
        return 0;
    }
    cluster.set_phase_scope(Some(scope.to_string()));
    cluster.set_phase(Some("restore"));
    let comm: u64 = lost
        .iter()
        .map(|&i| footprint(level_nodes[i].values.len(), &level_nodes[i].kernel))
        .sum();
    cluster.charge_superstep("restore", costs::RESTORE, comm);
    cluster.set_phase_scope(None::<String>);
    lost.len()
}
