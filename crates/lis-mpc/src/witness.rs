//! Distributed LIS witness recovery: the top-down traceback over the recorded
//! merge tree of Theorem 1.3.
//!
//! The bottom-up pass of [`crate::lis::lis_witness_mpc`] checkpoints every
//! level of the `lis-merge-L<k>` tree (each node's sorted value set and seaweed
//! kernel — in the model these stay resident on the machines that combed or
//! merged them). Recovery then descends the same tree in `O(log n)` rounds:
//!
//! 1. **Split** (per level, `O(1)` rounds): each active node holds a query
//!    "realize `t` witness elements using global ranks in `[vlo, vhi)`". At a
//!    merge node the query is split into per-child sub-queries with one
//!    Hirschberg-style scan over the children's checkpointed kernels
//!    ([`seaweed_lis::lis::split_window_lis`], built on the
//!    [`seaweed_lis::kernel::SeaweedKernel::x_prefix_lcs`] /
//!    [`x_suffix_lcs`](seaweed_lis::kernel::SeaweedKernel::x_suffix_lcs)
//!    value-window queries): because the witness increases in value as position
//!    grows, a threshold `w` separates the part realized in the left child
//!    (values `< w`) from the part in the right child (values `≥ w`), and
//!    `t` splits as `t_lo + t_hi`. Zero-length sub-queries are pruned. The
//!    scan touches one checkpointed entry per union value in the window —
//!    at most `n` items per level, which the simulation routes through a real
//!    prefix-sum superstep so the ledger observes the footprint — and the
//!    sub-queries leave with one shuffle.
//! 2. **Reconstruct** (base level): the surviving block-addressed queries are
//!    joined against the resident input elements with one
//!    [`mpc_runtime::Cluster::cogroup_map`]; each base block recovers its slice
//!    locally by patience sorting with parent pointers
//!    ([`seaweed_lis::lis::lis_witness_in_rank_range`]) — length exactly the
//!    split's `t`, by the split invariant.
//! 3. **Concatenate**: the chosen `(position, rank)` pairs are put in position
//!    order by one final rebalanced sort; ranks then increase along the result
//!    by construction, so the positions spell out an actual LIS.
//!
//! Every phase runs under a `lis-witness-L<k>` / `lis-witness-base` ledger
//! scope on the same strict cluster as the bottom-up pass; the descent adds
//! `O(1)` rounds per level, a small constant fraction of what the level's `⊡`
//! merge cost on the way up (the `exp_lis_rounds` harness asserts ≤ 2×
//! overall).
//!
//! # Batched descent
//!
//! The descent generalizes to *many* value-window queries at once
//! ([`recover_batch`]): every in-flight query carries its id down the same
//! schedule, so a batch of `q` queries still pays one candidate-scan superstep
//! and one shuffle per level — not `q` descents. The scanned candidates are
//! deduplicated across queries (the checkpoints are resident; one pass over a
//! level's entries serves every query that needs them), keeping the routed
//! footprint at most `n` items per level regardless of batch size. This is the
//! amortization the `lis-service` crate leans on to serve concurrent witness
//! queries against one hot kernel.
//!
//! A trace can come from the MPC pipeline (`lis_witness_mpc` records it as it
//! merges) or be recorded sequentially from the input with
//! [`WitnessTrace::record`] — the two are bit-identical at the same block size
//! because the `⊡` composition is exact, so a service can rebuild the trace of
//! a cached sequence without re-running the cluster pipeline.

use crate::recovery;
use mpc_runtime::{costs, Cluster};
use seaweed_lis::kernel::{compose_horizontal, SeaweedKernel};
use seaweed_lis::lis::{
    lis_kernel_permutation, lis_witness_in_rank_range, rank_sequence, split_window_lis,
};

/// Per-level checkpoints recorded by the bottom-up pass of
/// [`crate::lis::lis_witness_mpc`] (or sequentially by
/// [`WitnessTrace::record`]): everything the top-down traceback needs to
/// realize value-window witness queries without touching the pipeline again.
#[derive(Clone, Debug, PartialEq)]
pub struct WitnessTrace {
    /// Global rank of every input position (the sequence the blocks hold).
    pub(crate) ranks: Vec<u32>,
    /// Base block size (positions `[b·B, (b+1)·B)` form block `b`).
    pub(crate) block_size: usize,
    /// `levels[0]` = base blocks; `levels[k]` = nodes after `k` merge levels.
    pub(crate) levels: Vec<Vec<TraceNode>>,
}

/// One checkpointed node of the merge tree.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct TraceNode {
    /// Sorted global ranks present in the node's position range.
    pub(crate) values: Vec<usize>,
    /// Kernel over the compact alphabet of `values`.
    pub(crate) kernel: SeaweedKernel,
    /// Where the node came from (one level down).
    pub(crate) prov: Provenance,
}

/// Provenance of a checkpointed node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Provenance {
    /// A base block combed locally in step 2 of the pipeline.
    Base {
        /// Block id (= position `/ block_size`).
        block: u32,
    },
    /// Merged from children at indices `(lo, hi)` of the previous level.
    Merge {
        /// Left (earlier positions) child index.
        lo: usize,
        /// Right (later positions) child index.
        hi: usize,
    },
    /// The odd leftover block, passed through unchanged.
    Pass {
        /// Child index in the previous level.
        child: usize,
    },
}

impl WitnessTrace {
    /// Records the merge tree of `seq` sequentially, without a cluster: comb
    /// each `block_size`-element base block, then merge adjacent nodes
    /// pairwise level by level (odd leftovers pass through) exactly as the
    /// MPC pipeline does. Because the `⊡` composition is exact and
    /// associative, the resulting trace is **bit-identical** to the one
    /// `lis_witness_mpc` records at the same block size (see
    /// [`crate::lis::pipeline_block_size`] for the size the pipeline picks).
    pub fn record<T: Ord>(seq: &[T], block_size: usize) -> Self {
        let ranks = rank_sequence(seq);
        let block_size = block_size.max(1);
        let mut levels: Vec<Vec<TraceNode>> = Vec::new();
        if !ranks.is_empty() {
            levels.push(
                ranks
                    .chunks(block_size)
                    .enumerate()
                    .map(|(b, chunk)| base_node(b as u32, chunk))
                    .collect(),
            );
            while levels.last().expect("level pushed").len() > 1 {
                let prev = levels.last().expect("level pushed");
                let mut next: Vec<TraceNode> = Vec::with_capacity(prev.len().div_ceil(2));
                let mut i = 0;
                while i + 1 < prev.len() {
                    let (lo, hi) = (&prev[i], &prev[i + 1]);
                    let prep =
                        crate::lis::prepare_merge(&lo.values, &lo.kernel, &hi.values, &hi.kernel);
                    next.push(TraceNode {
                        kernel: compose_horizontal(&prep.lo_inflated, &prep.hi_inflated),
                        values: prep.union,
                        prov: Provenance::Merge { lo: i, hi: i + 1 },
                    });
                    i += 2;
                }
                if i < prev.len() {
                    next.push(TraceNode {
                        values: prev[i].values.clone(),
                        kernel: prev[i].kernel.clone(),
                        prov: Provenance::Pass { child: i },
                    });
                }
                levels.push(next);
            }
        }
        Self {
            ranks,
            block_size,
            levels,
        }
    }

    /// Length of the traced sequence.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the traced sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Base block size the trace was recorded at.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of merge levels above the base blocks.
    pub fn merge_levels(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Global rank of every input position (ties rank right-to-left, so
    /// strictly increasing subsequences of the input correspond exactly to
    /// increasing rank subsequences).
    pub fn ranks(&self) -> &[u32] {
        &self.ranks
    }

    /// The root kernel — the full semi-local LIS kernel of the traced
    /// sequence (equal to [`seaweed_lis::lis::lis_kernel`]). `None` only for
    /// the empty sequence.
    pub fn kernel(&self) -> Option<&SeaweedKernel> {
        self.levels
            .last()
            .and_then(|level| level.first())
            .map(|node| &node.kernel)
    }

    /// Length of the longest increasing subsequence of the traced sequence
    /// restricted to global ranks in `[vlo, vhi)`, read off the root kernel.
    /// This is the `t` that a `recover_batch` query for the same window will
    /// realize.
    pub fn value_window_lis(&self, vlo: usize, vhi: usize) -> usize {
        let Some(root) = self.levels.last().and_then(|level| level.first()) else {
            return 0;
        };
        let a = root.values.partition_point(|&v| v < vlo);
        let b = root.values.partition_point(|&v| v < vhi);
        root.kernel.lcs_x_window(a, b)
    }

    /// Length of the longest increasing subsequence of the traced sequence.
    pub fn lis_length(&self) -> usize {
        self.value_window_lis(0, self.ranks.len())
    }

    /// Total resident items across every checkpointed node: each node holds
    /// its sorted value set plus its kernel's permutation entries. This is the
    /// footprint a cache's byte budget should charge for keeping the trace
    /// hot.
    pub fn checkpoint_footprint(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .map(|node| node.values.len() + node.kernel.checkpoint_entries())
            .sum()
    }
}

/// Combs one base block of global ranks into a checkpointed node, exactly as
/// the pipeline's `comb_block_entries` does (compact alphabet + local comb).
fn base_node(block: u32, chunk: &[u32]) -> TraceNode {
    let mut values: Vec<usize> = chunk.iter().map(|&r| r as usize).collect();
    values.sort_unstable();
    let relabelled: Vec<u32> = chunk
        .iter()
        .map(|&r| values.partition_point(|&v| v < r as usize) as u32)
        .collect();
    TraceNode {
        kernel: lis_kernel_permutation(&relabelled),
        values,
        prov: Provenance::Base { block },
    }
}

/// A value-window witness query in flight, addressed to one node of a level:
/// `(query id, node index, vlo, vhi, t)`.
type Query = (usize, usize, usize, usize, usize);

/// Runs the top-down traceback for a whole batch of value-window witness
/// queries in **one** descent schedule.
///
/// Each window `(vlo, vhi)` asks for the positions of one longest increasing
/// subsequence of the traced sequence restricted to global ranks in
/// `[vlo, vhi)`; the target length is read off the root kernel
/// ([`WitnessTrace::value_window_lis`]), so the `i`-th returned vector has
/// exactly that length, its positions ascend and their ranks strictly
/// increase. The full-sequence witness is the window `(0, trace.len())`.
///
/// Every level still costs one candidate-scan superstep plus one shuffle no
/// matter how many queries ride the batch — the in-flight queries carry their
/// ids down a shared schedule and the scanned checkpoint candidates are
/// deduplicated across queries, so the routed footprint stays at most `n`
/// items per level. Ledger phases land under `<scope>-L<k>` / `<scope>-base`
/// labels (the pipeline uses `"lis-witness"`; the analytics service passes its
/// own `service-*` scope so batched descents are attributable).
pub fn recover_batch(
    cluster: &mut Cluster,
    trace: &WitnessTrace,
    windows: &[(usize, usize)],
    scope: &str,
) -> Vec<Vec<usize>> {
    let n = trace.ranks.len();
    let mut results: Vec<Vec<usize>> = vec![Vec::new(); windows.len()];
    if trace.levels.is_empty() {
        return results;
    }
    let top = trace.levels.len() - 1;
    let mut expected = vec![0usize; windows.len()];
    let mut queries: Vec<Query> = Vec::new();
    for (qid, &(vlo, vhi)) in windows.iter().enumerate() {
        assert!(
            vlo <= vhi && vhi <= n,
            "witness window [{vlo}, {vhi}) is invalid for a sequence of {n} ranks"
        );
        let t = trace.value_window_lis(vlo, vhi);
        expected[qid] = t;
        if t > 0 {
            queries.push((qid, 0, vlo, vhi, t));
        }
    }
    if queries.is_empty() {
        return results;
    }

    for level in (1..=top).rev() {
        cluster.set_phase_scope(Some(format!("{scope}-L{level}")));
        cluster.set_phase(Some("split"));
        let nodes = &trace.levels[level];
        let children = &trace.levels[level - 1];

        // The split scan touches one checkpointed kernel entry per union value
        // inside each active merge window; route that slice through a real
        // prefix-sum superstep so strict clusters observe the level's true
        // footprint. Candidates are deduplicated across the batch — the
        // checkpoints are resident, so one pass over a level's entries serves
        // every query that needs them — keeping this ≤ n items per level no
        // matter the batch size.
        // Each query's candidates inside a node form one contiguous index
        // interval, so the batch dedups by merging intervals per node and
        // emitting every candidate once — O(q log q + union) local work
        // instead of materializing (and sorting) one copy per query. The
        // emitted order equals the sorted-deduped order: nodes ascend, and a
        // node's values are its sorted, duplicate-free rank union.
        let mut intervals: Vec<(u32, u32, u32)> = queries
            .iter()
            .filter_map(|&(_, idx, vlo, vhi, _)| {
                let node = &nodes[idx];
                match node.prov {
                    Provenance::Merge { .. } => {
                        let a = node.values.partition_point(|&v| v < vlo);
                        let b = node.values.partition_point(|&v| v < vhi);
                        (a < b).then_some((idx as u32, a as u32, b as u32))
                    }
                    _ => None,
                }
            })
            .collect();
        intervals.sort_unstable();
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        let mut at = 0;
        while at < intervals.len() {
            let (idx, a, mut b) = intervals[at];
            at += 1;
            while at < intervals.len() && intervals[at].0 == idx && intervals[at].1 <= b {
                b = b.max(intervals[at].2);
                at += 1;
            }
            candidates.extend(
                nodes[idx as usize].values[a as usize..b as usize]
                    .iter()
                    .map(|&v| (idx, v as u32)),
            );
        }
        let cdv = cluster.distribute(candidates);
        let scanned = cluster.prefix_sums(cdv, |_| 1);
        drop(cluster.collect(scanned));
        // The pruned sub-queries leave for their child nodes' machines.
        cluster.charge_rounds("witness-route", costs::SHUFFLE);

        // A kill during this level's barriers costs one replica restore of the
        // lost checkpoints; the in-flight split queries are re-derived
        // deterministically from the level above (see `crate::recovery`).
        let killed = cluster.poll_kills();
        if !killed.is_empty() {
            recovery::restore_for_witness(
                cluster,
                children,
                &killed,
                &format!("recovery-witness-L{level}"),
            );
            cluster.set_phase_scope(Some(format!("{scope}-L{level}")));
        }

        let mut next: Vec<Query> = Vec::with_capacity(2 * queries.len());
        for (qid, idx, vlo, vhi, t) in queries.drain(..) {
            match nodes[idx].prov {
                Provenance::Pass { child } => next.push((qid, child, vlo, vhi, t)),
                Provenance::Merge { lo, hi } => {
                    let l = &children[lo];
                    let h = &children[hi];
                    let (w, t_lo, t_hi) = split_window_lis(
                        (&l.values, &l.kernel),
                        (&h.values, &h.kernel),
                        vlo,
                        vhi,
                        t,
                    );
                    if t_lo > 0 {
                        next.push((qid, lo, vlo, w, t_lo));
                    }
                    if t_hi > 0 {
                        next.push((qid, hi, w, vhi, t_hi));
                    }
                }
                Provenance::Base { .. } => unreachable!("base node above level 0"),
            }
        }
        queries = next;
    }

    // Base level: join the surviving block queries against the resident input
    // elements and reconstruct each slice where its block lives.
    cluster.set_phase_scope(Some(format!("{scope}-base")));
    cluster.set_phase(Some("reconstruct"));
    let base = &trace.levels[0];
    let block_size = trace.block_size as u32;
    let elements = cluster.distribute(
        trace
            .ranks
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as u32, r))
            .collect::<Vec<_>>(),
    );
    let base_queries: Vec<(u32, u32, u32, u32, u32)> = queries
        .into_iter()
        .map(|(qid, idx, vlo, vhi, t)| {
            let Provenance::Base { block } = base[idx].prov else {
                unreachable!("level-0 node without base provenance")
            };
            (block, qid as u32, vlo as u32, vhi as u32, t as u32)
        })
        .collect();
    let qdv = cluster.distribute(base_queries);
    let chosen = cluster.cogroup_map(
        elements,
        qdv,
        move |&(pos, _)| pos / block_size,
        |&(block, ..)| block,
        |_, elems, qs| {
            let mut out = Vec::new();
            for (_, qid, vlo, vhi, t) in qs {
                let slice = lis_witness_in_rank_range(&elems, vlo, vhi);
                assert_eq!(
                    slice.len(),
                    t as usize,
                    "base block failed to realize its split length"
                );
                out.extend(slice.into_iter().map(|(pos, rank)| (qid, pos, rank)));
            }
            out
        },
    );

    // A kill during the base reconstruction restores the lost level-0
    // checkpoints from their replicas; the chosen pairs re-derive locally.
    let killed = cluster.poll_kills();
    if !killed.is_empty() {
        recovery::restore_for_witness(cluster, &trace.levels[0], &killed, "recovery-witness-base");
        cluster.set_phase_scope(Some(format!("{scope}-base")));
    }

    // Final rebalanced sort puts every query's slices in position order; the
    // split thresholds guarantee ranks increase along each query's result.
    cluster.set_phase(Some("concat"));
    let sorted = cluster.sort_by_key(chosen, |&(qid, pos, _)| (qid, pos));
    let flat = cluster.collect(sorted);
    cluster.set_phase_scope(None::<String>);
    cluster.set_phase(None::<String>);

    debug_assert!(flat.windows(2).all(|w| w[0].0 != w[1].0 || w[0].2 < w[1].2));
    for (qid, pos, _) in flat {
        results[qid as usize].push(pos as usize);
    }
    for (qid, result) in results.iter().enumerate() {
        assert_eq!(
            result.len(),
            expected[qid],
            "query {qid} failed to realize its window LIS length"
        );
    }
    results
}

/// Runs the top-down traceback for the single full-sequence query and returns
/// the witness as input positions (ascending; ranks — hence original values —
/// strictly increase along it). This is [`recover_batch`] with the one window
/// `[0, n)` under the pipeline's `lis-witness` scope.
pub(crate) fn recover(cluster: &mut Cluster, trace: &WitnessTrace, length: usize) -> Vec<usize> {
    if length == 0 {
        return Vec::new();
    }
    let n = trace.ranks.len();
    let witness = recover_batch(cluster, trace, &[(0, n)], "lis-witness")
        .pop()
        .expect("one window in, one witness out");
    debug_assert_eq!(witness.len(), length);
    witness
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge_mpc::MulParams;
    use mpc_runtime::MpcConfig;
    use rand::prelude::*;
    use seaweed_lis::baselines::lis_length_patience;

    fn random_seq(rng: &mut StdRng, n: usize, alphabet: u32) -> Vec<u32> {
        (0..n).map(|_| rng.gen_range(0..alphabet)).collect()
    }

    /// The patience length of the subsequence with ranks restricted to a
    /// window — the brute-force answer `recover_batch` must realize.
    fn window_lis_brute(ranks: &[u32], vlo: usize, vhi: usize) -> usize {
        let filtered: Vec<u32> = ranks
            .iter()
            .copied()
            .filter(|&r| (vlo..vhi).contains(&(r as usize)))
            .collect();
        lis_length_patience(&filtered)
    }

    #[test]
    fn record_matches_pipeline_trace_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(31);
        for &(n, delta) in &[(37usize, 0.5), (130, 0.75), (400, 0.75), (513, 0.6)] {
            let seq = random_seq(&mut rng, n, 60);
            let params = MulParams::default();
            let mut cluster = Cluster::new(MpcConfig::new(n, delta));
            let (_, trace) = crate::lis::pipeline(&mut cluster, &seq, &params, true);
            let pipeline_trace = trace.expect("record requested");
            let recorded = WitnessTrace::record(&seq, pipeline_trace.block_size());
            assert_eq!(recorded, pipeline_trace, "n={n} δ={delta}");
        }
    }

    #[test]
    fn record_exposes_root_kernel_and_lengths() {
        let mut rng = StdRng::seed_from_u64(32);
        let seq = random_seq(&mut rng, 300, 40);
        let trace = WitnessTrace::record(&seq, 32);
        assert_eq!(trace.len(), 300);
        assert_eq!(trace.block_size(), 32);
        assert!(trace.merge_levels() >= 3);
        assert_eq!(trace.kernel(), Some(&seaweed_lis::lis::lis_kernel(&seq)));
        assert_eq!(trace.lis_length(), lis_length_patience(&seq));
        assert!(trace.checkpoint_footprint() > 0);

        let empty = WitnessTrace::record::<u32>(&[], 16);
        assert!(empty.is_empty());
        assert_eq!(empty.kernel(), None);
        assert_eq!(empty.lis_length(), 0);
        assert_eq!(empty.checkpoint_footprint(), 0);
    }

    #[test]
    fn batched_windows_realize_their_window_lis() {
        let mut rng = StdRng::seed_from_u64(33);
        for &n in &[1usize, 60, 257, 500] {
            let seq = random_seq(&mut rng, n, 50);
            let trace = WitnessTrace::record(&seq, 24);
            let mut windows = vec![(0, n)];
            for _ in 0..6 {
                let a = rng.gen_range(0..=n);
                let b = rng.gen_range(0..=n);
                windows.push((a.min(b), a.max(b)));
            }
            let mut cluster = Cluster::new(MpcConfig::lenient(n.max(4), 0.6));
            let results = recover_batch(&mut cluster, &trace, &windows, "test-witness");
            assert_eq!(results.len(), windows.len());
            for (&(vlo, vhi), positions) in windows.iter().zip(&results) {
                assert_eq!(
                    positions.len(),
                    window_lis_brute(trace.ranks(), vlo, vhi),
                    "window [{vlo}, {vhi}) at n={n}"
                );
                assert!(positions.windows(2).all(|w| w[0] < w[1]));
                let ranks: Vec<u32> = positions.iter().map(|&p| trace.ranks()[p]).collect();
                assert!(ranks.windows(2).all(|w| w[0] < w[1]));
                assert!(ranks.iter().all(|&r| (vlo..vhi).contains(&(r as usize))));
            }
        }
    }

    #[test]
    fn batch_descends_in_the_rounds_of_one_query() {
        // The amortization claim: q queries ride one schedule, so the round
        // count of a batched descent equals the single-query descent's.
        let mut rng = StdRng::seed_from_u64(34);
        let n = 512;
        let seq = random_seq(&mut rng, n, 80);
        let trace = WitnessTrace::record(&seq, 32);

        let mut solo = Cluster::new(MpcConfig::lenient(n, 0.7));
        let _ = recover_batch(&mut solo, &trace, &[(0, n)], "test-witness");

        let windows: Vec<(usize, usize)> = (0..8).map(|i| (i * 16, n - i * 16)).collect();
        let mut batched = Cluster::new(MpcConfig::lenient(n, 0.7));
        let _ = recover_batch(&mut batched, &trace, &windows, "test-witness");

        assert_eq!(
            batched.rounds(),
            solo.rounds(),
            "a batch must not pay extra descent rounds"
        );
    }

    #[test]
    fn empty_and_degenerate_windows_return_empty_witnesses() {
        let seq: Vec<u32> = vec![5, 5, 5, 5];
        let trace = WitnessTrace::record(&seq, 2);
        let mut cluster = Cluster::new(MpcConfig::lenient(4, 0.5));
        let results = recover_batch(&mut cluster, &trace, &[(2, 2), (0, 4)], "test-witness");
        assert_eq!(results[0], Vec::<usize>::new());
        assert_eq!(results[1].len(), 1, "all-equal sequence has LIS 1");

        let mut idle = Cluster::new(MpcConfig::lenient(4, 0.5));
        let results = recover_batch(&mut idle, &trace, &[(2, 2)], "test-witness");
        assert_eq!(results, vec![Vec::<usize>::new()]);
        assert_eq!(idle.rounds(), 0, "zero-t windows alone charge nothing");

        let empty = WitnessTrace::record::<u32>(&[], 4);
        let results = recover_batch(&mut idle, &empty, &[(0, 0)], "test-witness");
        assert_eq!(results, vec![Vec::<usize>::new()]);
    }
}
