//! Distributed LIS witness recovery: the top-down traceback over the recorded
//! merge tree of Theorem 1.3.
//!
//! The bottom-up pass of [`crate::lis::lis_witness_mpc`] checkpoints every
//! level of the `lis-merge-L<k>` tree (each node's sorted value set and seaweed
//! kernel — in the model these stay resident on the machines that combed or
//! merged them). Recovery then descends the same tree in `O(log n)` rounds:
//!
//! 1. **Split** (per level, `O(1)` rounds): each active node holds a query
//!    "realize `t` witness elements using global ranks in `[vlo, vhi)`". At a
//!    merge node the query is split into per-child sub-queries with one
//!    Hirschberg-style scan over the children's checkpointed kernels
//!    ([`seaweed_lis::lis::split_window_lis`], built on the
//!    [`seaweed_lis::kernel::SeaweedKernel::x_prefix_lcs`] /
//!    [`x_suffix_lcs`](seaweed_lis::kernel::SeaweedKernel::x_suffix_lcs)
//!    value-window queries): because the witness increases in value as position
//!    grows, a threshold `w` separates the part realized in the left child
//!    (values `< w`) from the part in the right child (values `≥ w`), and
//!    `t` splits as `t_lo + t_hi`. Zero-length sub-queries are pruned. The
//!    scan touches one checkpointed entry per union value in the window —
//!    at most `n` items per level, which the simulation routes through a real
//!    prefix-sum superstep so the ledger observes the footprint — and the
//!    sub-queries leave with one shuffle.
//! 2. **Reconstruct** (base level): the surviving block-addressed queries are
//!    joined against the resident input elements with one
//!    [`mpc_runtime::Cluster::cogroup_map`]; each base block recovers its slice
//!    locally by patience sorting with parent pointers
//!    ([`seaweed_lis::lis::lis_witness_in_rank_range`]) — length exactly the
//!    split's `t`, by the split invariant.
//! 3. **Concatenate**: the chosen `(position, rank)` pairs are put in position
//!    order by one final rebalanced sort; ranks then increase along the result
//!    by construction, so the positions spell out an actual LIS.
//!
//! Every phase runs under a `lis-witness-L<k>` / `lis-witness-base` ledger
//! scope on the same strict cluster as the bottom-up pass; the descent adds
//! `O(1)` rounds per level, a small constant fraction of what the level's `⊡`
//! merge cost on the way up (the `exp_lis_rounds` harness asserts ≤ 2×
//! overall).

use crate::recovery;
use mpc_runtime::{costs, Cluster};
use seaweed_lis::kernel::SeaweedKernel;
use seaweed_lis::lis::{lis_witness_in_rank_range, split_window_lis};

/// Per-level checkpoints recorded by the bottom-up pass.
pub(crate) struct WitnessTrace {
    /// Global rank of every input position (the sequence the blocks hold).
    pub(crate) ranks: Vec<u32>,
    /// Base block size (positions `[b·B, (b+1)·B)` form block `b`).
    pub(crate) block_size: usize,
    /// `levels[0]` = base blocks; `levels[k]` = nodes after `k` merge levels.
    pub(crate) levels: Vec<Vec<TraceNode>>,
}

/// One checkpointed node of the merge tree.
pub(crate) struct TraceNode {
    /// Sorted global ranks present in the node's position range.
    pub(crate) values: Vec<usize>,
    /// Kernel over the compact alphabet of `values`.
    pub(crate) kernel: SeaweedKernel,
    /// Where the node came from (one level down).
    pub(crate) prov: Provenance,
}

/// Provenance of a checkpointed node.
pub(crate) enum Provenance {
    /// A base block combed locally in step 2 of the pipeline.
    Base {
        /// Block id (= position `/ block_size`).
        block: u32,
    },
    /// Merged from children at indices `(lo, hi)` of the previous level.
    Merge {
        /// Left (earlier positions) child index.
        lo: usize,
        /// Right (later positions) child index.
        hi: usize,
    },
    /// The odd leftover block, passed through unchanged.
    Pass {
        /// Child index in the previous level.
        child: usize,
    },
}

/// A value-window witness query addressed to one node of a level:
/// `(node index, vlo, vhi, t)`.
type Query = (usize, usize, usize, usize);

/// Runs the top-down traceback and returns the witness as input positions
/// (ascending; ranks — hence original values — strictly increase along it).
pub(crate) fn recover(cluster: &mut Cluster, trace: &WitnessTrace, length: usize) -> Vec<usize> {
    if length == 0 {
        return Vec::new();
    }
    let n = trace.ranks.len();
    let top = trace.levels.len() - 1;
    let mut queries: Vec<Query> = vec![(0, 0, n, length)];

    for level in (1..=top).rev() {
        cluster.set_phase_scope(Some(format!("lis-witness-L{level}")));
        cluster.set_phase(Some("split"));
        let nodes = &trace.levels[level];
        let children = &trace.levels[level - 1];

        // The split scan touches one checkpointed kernel entry per union value
        // inside each active merge window; route that slice through a real
        // prefix-sum superstep so strict clusters observe the level's true
        // footprint (the windows are disjoint, so this is ≤ n items).
        let candidates: Vec<(u32, u32)> = queries
            .iter()
            .flat_map(|&(idx, vlo, vhi, _)| {
                let node = &nodes[idx];
                let slice = match node.prov {
                    Provenance::Merge { .. } => {
                        let a = node.values.partition_point(|&v| v < vlo);
                        let b = node.values.partition_point(|&v| v < vhi);
                        &node.values[a..b]
                    }
                    _ => &[],
                };
                slice.iter().map(move |&v| (idx as u32, v as u32))
            })
            .collect();
        let cdv = cluster.distribute(candidates);
        let scanned = cluster.prefix_sums(cdv, |_| 1);
        drop(cluster.collect(scanned));
        // The pruned sub-queries leave for their child nodes' machines.
        cluster.charge_rounds("witness-route", costs::SHUFFLE);

        // A kill during this level's barriers costs one replica restore of the
        // lost checkpoints; the in-flight split queries are re-derived
        // deterministically from the level above (see `crate::recovery`).
        let killed = cluster.poll_kills();
        if !killed.is_empty() {
            recovery::restore_for_witness(
                cluster,
                children,
                &killed,
                &format!("recovery-witness-L{level}"),
            );
            cluster.set_phase_scope(Some(format!("lis-witness-L{level}")));
        }

        let mut next: Vec<Query> = Vec::with_capacity(2 * queries.len());
        for (idx, vlo, vhi, t) in queries.drain(..) {
            match nodes[idx].prov {
                Provenance::Pass { child } => next.push((child, vlo, vhi, t)),
                Provenance::Merge { lo, hi } => {
                    let l = &children[lo];
                    let h = &children[hi];
                    let (w, t_lo, t_hi) = split_window_lis(
                        (&l.values, &l.kernel),
                        (&h.values, &h.kernel),
                        vlo,
                        vhi,
                        t,
                    );
                    if t_lo > 0 {
                        next.push((lo, vlo, w, t_lo));
                    }
                    if t_hi > 0 {
                        next.push((hi, w, vhi, t_hi));
                    }
                }
                Provenance::Base { .. } => unreachable!("base node above level 0"),
            }
        }
        queries = next;
    }

    // Base level: join the surviving block queries against the resident input
    // elements and reconstruct each slice where its block lives.
    cluster.set_phase_scope(Some("lis-witness-base"));
    cluster.set_phase(Some("reconstruct"));
    let base = &trace.levels[0];
    let block_size = trace.block_size as u32;
    let elements = cluster.distribute(
        trace
            .ranks
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as u32, r))
            .collect::<Vec<_>>(),
    );
    let base_queries: Vec<(u32, u32, u32, u32)> = queries
        .into_iter()
        .map(|(idx, vlo, vhi, t)| {
            let Provenance::Base { block } = base[idx].prov else {
                unreachable!("level-0 node without base provenance")
            };
            (block, vlo as u32, vhi as u32, t as u32)
        })
        .collect();
    let qdv = cluster.distribute(base_queries);
    let chosen = cluster.cogroup_map(
        elements,
        qdv,
        move |&(pos, _)| pos / block_size,
        |&(block, ..)| block,
        |_, elems, qs| {
            let mut out = Vec::new();
            for (_, vlo, vhi, t) in qs {
                let slice = lis_witness_in_rank_range(&elems, vlo, vhi);
                assert_eq!(
                    slice.len(),
                    t as usize,
                    "base block failed to realize its split length"
                );
                out.extend(slice);
            }
            out
        },
    );

    // A kill during the base reconstruction restores the lost level-0
    // checkpoints from their replicas; the chosen pairs re-derive locally.
    let killed = cluster.poll_kills();
    if !killed.is_empty() {
        recovery::restore_for_witness(cluster, &trace.levels[0], &killed, "recovery-witness-base");
        cluster.set_phase_scope(Some("lis-witness-base"));
    }

    // Final rebalanced sort puts the slices in position order; the split
    // thresholds guarantee ranks increase along it.
    cluster.set_phase(Some("concat"));
    let sorted = cluster.sort_by_key(chosen, |&(pos, _)| pos);
    let flat = cluster.collect(sorted);
    cluster.set_phase_scope(None::<String>);
    cluster.set_phase(None::<String>);

    debug_assert!(flat.windows(2).all(|w| w[0].1 < w[1].1));
    flat.into_iter().map(|(pos, _)| pos as usize).collect()
}
