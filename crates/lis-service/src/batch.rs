//! Cross-connection request coalescing: concurrent witness queries against
//! the same hot kernel ride **one** traceback descent.
//!
//! The first thread to ask for a kernel's witness becomes the *leader* of a
//! gathering batch; it waits one small gather window, closes the batch, runs a
//! single [`lis_mpc::recover_batch`] over every collected window, and
//! publishes the per-query results. Threads that arrive while the batch is
//! gathering become *followers*: they just park until the leader posts their
//! slot. Threads that arrive after the batch closed start the next one. The
//! descent schedule is what amortizes: `q` coalesced queries cost one
//! candidate-scan superstep and one shuffle per level instead of `q` descents
//! (see `lis_mpc::witness`).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks with poison recovery: every critical section in this module leaves
/// the slot state consistent (single-field writes), so a panic on another
/// connection must not take the whole coalescer down with it.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-query result: the witness positions, or the batch's error.
type BatchResult = Result<Vec<Vec<usize>>, String>;

struct SlotState {
    /// Windows gathered so far; a thread's index here is its result slot.
    windows: Vec<(usize, usize)>,
    /// Set by the leader when it takes the batch: latecomers must not join.
    closed: bool,
    /// Posted by the leader once the descent ran.
    result: Option<BatchResult>,
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// What one coalesced query observed — the result plus how many queries
/// actually shared its descent (surfaced in responses so callers can verify
/// batching happened).
#[derive(Clone, Debug)]
pub struct Coalesced {
    /// The witness positions for this thread's window.
    pub positions: Vec<usize>,
    /// Number of queries that rode the same descent (≥ 1).
    pub batch_size: usize,
}

/// The per-kernel batch coalescer (see module docs).
pub struct Coalescer {
    window: Duration,
    gathering: Mutex<HashMap<u64, Arc<Slot>>>,
}

impl Coalescer {
    /// A coalescer gathering each batch for `window` before it descends.
    pub fn new(window: Duration) -> Self {
        Self {
            window,
            gathering: Mutex::new(HashMap::new()),
        }
    }

    /// Submits one rank-window witness query against kernel `key`, coalescing
    /// it with concurrent queries for the same kernel. `descend` is invoked
    /// by exactly one thread per batch, with every gathered window; its
    /// result vector must be index-aligned with the input.
    pub fn submit<F>(
        &self,
        key: u64,
        window: (usize, usize),
        descend: F,
    ) -> Result<Coalesced, String>
    where
        F: FnOnce(&[(usize, usize)]) -> BatchResult,
    {
        // Join (or open) the gathering batch for this kernel. A closed slot
        // still briefly in the map means its leader is between "take" and
        // "remove" — retry until a fresh one opens.
        let (slot, my_index) = loop {
            let slot = {
                let mut gathering = lock_recover(&self.gathering);
                Arc::clone(gathering.entry(key).or_insert_with(|| {
                    Arc::new(Slot {
                        state: Mutex::new(SlotState {
                            windows: Vec::new(),
                            closed: false,
                            result: None,
                        }),
                        ready: Condvar::new(),
                    })
                }))
            };
            let mut state = lock_recover(&slot.state);
            if state.closed {
                drop(state);
                std::thread::yield_now();
                continue;
            }
            state.windows.push(window);
            let index = state.windows.len() - 1;
            drop(state);
            break (slot, index);
        };

        if my_index == 0 {
            // Leader: give followers the gather window, then close and run.
            std::thread::sleep(self.window);
            let windows = {
                let mut gathering = lock_recover(&self.gathering);
                let mut state = lock_recover(&slot.state);
                state.closed = true;
                gathering.remove(&key);
                state.windows.clone()
            };
            let result = descend(&windows);
            let mut state = lock_recover(&slot.state);
            state.result = Some(result);
            slot.ready.notify_all();
            drop(state);
        }

        // Everyone (leader included) reads their slot from the posted result.
        let mut state = lock_recover(&slot.state);
        while state.result.is_none() {
            state = slot
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let batch_size = state.windows.len();
        match state.result.as_ref() {
            Some(Ok(all)) => Ok(Coalesced {
                positions: all
                    .get(my_index)
                    .cloned()
                    .ok_or("batch result misaligned")?,
                batch_size,
            }),
            Some(Err(e)) => Err(e.clone()),
            // Unreachable (the wait loop above saw `Some`), but the service
            // boundary answers errors, it does not crash connections.
            None => Err("coalescer woke without a posted result".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn solo_query_descends_alone() {
        let coalescer = Coalescer::new(Duration::from_millis(1));
        let out = coalescer
            .submit(7, (2, 9), |windows| {
                assert_eq!(windows, &[(2, 9)]);
                Ok(windows.iter().map(|&(a, b)| vec![a, b]).collect())
            })
            .unwrap();
        assert_eq!(out.positions, vec![2, 9]);
        assert_eq!(out.batch_size, 1);
    }

    #[test]
    fn concurrent_queries_share_one_descent() {
        let coalescer = Arc::new(Coalescer::new(Duration::from_millis(60)));
        let descents = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..6)
            .map(|i| {
                let coalescer = Arc::clone(&coalescer);
                let descents = Arc::clone(&descents);
                std::thread::spawn(move || {
                    coalescer
                        .submit(1, (i, i + 10), |windows| {
                            descents.fetch_add(1, Ordering::SeqCst);
                            Ok(windows.iter().map(|&(a, b)| vec![a, b]).collect())
                        })
                        .unwrap()
                })
            })
            .collect();
        let results: Vec<Coalesced> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        // Each query got its own window back, correctly aligned…
        for (i, out) in results.iter().enumerate() {
            assert_eq!(out.positions, vec![i, i + 10]);
        }
        // …and the 60 ms gather window coalesced them into very few descents
        // (exactly one when all six arrive in time; never six).
        let ran = descents.load(Ordering::SeqCst);
        assert!(
            ran < 6,
            "no coalescing happened: {ran} descents for 6 queries"
        );
        assert!(results.iter().any(|r| r.batch_size >= 2));
    }

    #[test]
    fn different_kernels_do_not_coalesce() {
        let coalescer = Arc::new(Coalescer::new(Duration::from_millis(30)));
        let threads: Vec<_> = (0..2u64)
            .map(|key| {
                let coalescer = Arc::clone(&coalescer);
                std::thread::spawn(move || {
                    coalescer
                        .submit(key, (0, 1), |windows| {
                            Ok(vec![vec![windows.len()]; windows.len()])
                        })
                        .unwrap()
                })
            })
            .collect();
        for t in threads {
            let out = t.join().unwrap();
            assert_eq!(out.batch_size, 1, "distinct kernels must not share a batch");
        }
    }

    #[test]
    fn errors_propagate_to_every_member() {
        let coalescer = Arc::new(Coalescer::new(Duration::from_millis(40)));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let coalescer = Arc::clone(&coalescer);
                std::thread::spawn(move || {
                    coalescer.submit(9, (0, 1), |_| Err("descent failed".to_string()))
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap().unwrap_err(), "descent failed");
        }
    }
}
