//! The hot-kernel cache: built kernels, their query structures and recorded
//! merge-tree traces, keyed by a memoized content hash, with LRU eviction
//! under a byte budget derived from the checkpoint footprint.
//!
//! **Hash once at ingest.** An entry's key is the running FNV-1a state over
//! the sequence's `u32` elements. The state is memoized on the entry, so an
//! append extends the hash from the stored state in `O(block)` — the prefix is
//! never re-hashed — and re-submitting an identical sequence dedupes to a
//! cache hit instead of a rebuild (FNV is sequential, so `ingest(s)` and
//! `ingest(p) + append(q)` with `s = p ∥ q` land on the same key).
//!
//! **Byte budget.** Each entry charges what it actually keeps resident: the
//! raw sequence, the append spine's value sets and kernel permutation entries
//! ([`AppendableLisKernel::footprint_items`]), the lazily-built window-query
//! structure, and the witness trace's checkpoints
//! ([`WitnessTrace::checkpoint_footprint`]). When the total exceeds the
//! budget, least-recently-used entries are evicted (never the one being
//! served) and the eviction counter surfaces in every response.

use lis_mpc::{AppendStats, AppendableLisKernel, WitnessTrace};
use mpc_runtime::{Cluster, MpcConfig};
use seaweed_lis::lis::SemiLocalLis;
use std::collections::HashMap;

/// FNV-1a 64-bit offset basis (the hash of the empty sequence).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Extends a running FNV-1a state by a block of elements (little-endian
/// bytes); `extend_hash(FNV_OFFSET, seq)` is the content hash of `seq`.
pub fn extend_hash(mut state: u64, block: &[u32]) -> u64 {
    for &v in block {
        for byte in v.to_le_bytes() {
            state ^= byte as u64;
            state = state.wrapping_mul(FNV_PRIME);
        }
    }
    state
}

/// The content hash of a full sequence.
pub fn content_hash(seq: &[u32]) -> u64 {
    extend_hash(FNV_OFFSET, seq)
}

/// Hit/miss/eviction counters, surfaced in every service response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Requests served off a hot entry (including ingest dedupes).
    pub hits: u64,
    /// Requests that had to build (ingest) or could not find their id.
    pub misses: u64,
    /// Entries evicted to fit the byte budget.
    pub evictions: u64,
}

/// One hot kernel: the sequence, its append spine, and the lazily-built
/// query/traceback structures, plus the recording cluster whose ledger the
/// service's cost proofs read.
pub struct CacheEntry {
    /// Memoized FNV-1a state over `seq` (also the cache key and public id).
    hash: u64,
    /// The ingested sequence (appends extend it).
    seq: Vec<u32>,
    /// Lenient recording cluster carrying this entry's ledger.
    cluster: Cluster,
    /// The incrementally-maintained kernel.
    kernel: AppendableLisKernel,
    /// Window-query structure off the root kernel; dropped on append.
    queries: Option<SemiLocalLis>,
    /// Recorded merge tree for witness descents; dropped on append.
    trace: Option<WitnessTrace>,
    /// Space violations recorded by clusters this entry has retired (the
    /// cluster is re-sized when the sequence outgrows its budget basis).
    carried_violations: u64,
    /// LRU stamp.
    last_used: u64,
}

impl CacheEntry {
    fn new(seq: Vec<u32>, delta: f64, block_size: usize, stamp: u64) -> Self {
        let hash = content_hash(&seq);
        let mut cluster = cluster_for(seq.len(), delta);
        let kernel = AppendableLisKernel::build(&mut cluster, &seq, block_size);
        Self {
            hash,
            seq,
            cluster,
            kernel,
            queries: None,
            trace: None,
            carried_violations: 0,
            last_used: stamp,
        }
    }

    /// The public id (the content hash, hex).
    pub fn id(&self) -> String {
        format!("{:016x}", self.hash)
    }

    /// The ingested sequence.
    pub fn seq(&self) -> &[u32] {
        &self.seq
    }

    /// The recording cluster (for ledger reads).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The recording cluster, mutably (witness descents run on it).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The incrementally-maintained kernel.
    pub fn kernel_mut(&mut self) -> &mut AppendableLisKernel {
        &mut self.kernel
    }

    /// Space violations across this entry's whole history.
    pub fn violations(&self) -> u64 {
        self.carried_violations + self.cluster.ledger().space_violations
    }

    /// The window-query structure, built off the root kernel on first use
    /// and cached until the next append.
    pub fn queries(&mut self) -> &SemiLocalLis {
        let kernel = &mut self.kernel;
        let cluster = &mut self.cluster;
        self.queries
            .get_or_insert_with(|| SemiLocalLis::from_kernel(kernel.kernel(cluster)))
    }

    /// The recorded merge tree, rebuilt from the sequence on first use after
    /// an append (the rebuild is local; only descents touch the cluster).
    pub fn trace(&mut self) -> &WitnessTrace {
        let seq = &self.seq;
        let block_size = self.kernel.block_size();
        self.trace
            .get_or_insert_with(|| WitnessTrace::record(seq, block_size))
    }

    /// Maps a half-open value range to the rank-window vocabulary of
    /// [`lis_mpc::recover_batch`].
    pub fn value_rank_window(&mut self, lo: u32, hi: u32) -> (usize, usize) {
        self.kernel.value_rank_window(&mut self.cluster, lo, hi)
    }

    /// Runs one batched witness descent over rank windows, building the trace
    /// on first use. All windows share a single superstep schedule (see
    /// [`lis_mpc::recover_batch`]); windows must satisfy `lo ≤ hi ≤ n`.
    pub fn witness_batch(&mut self, windows: &[(usize, usize)], scope: &str) -> Vec<Vec<usize>> {
        let seq = &self.seq;
        let block_size = self.kernel.block_size();
        let trace = self
            .trace
            .get_or_insert_with(|| WitnessTrace::record(seq, block_size));
        lis_mpc::recover_batch(&mut self.cluster, trace, windows, scope)
    }

    /// Extends the sequence (and the memoized hash) by `block`; drops the
    /// query/trace structures, which rebuild lazily. Returns the spine stats
    /// of the incremental recomb.
    fn append(&mut self, block: &[u32], delta: f64) -> AppendStats {
        // Re-size the recording cluster when the sequence outgrows the budget
        // basis it was created with — a stale small basis would record
        // violations that say nothing about the algorithm. The retired
        // ledger's violations are carried so nothing is lost.
        let new_len = self.seq.len() + block.len();
        if new_len > self.cluster.config().n {
            self.carried_violations += self.cluster.ledger().space_violations;
            self.cluster = cluster_for(new_len * 2, delta);
        }
        self.hash = extend_hash(self.hash, block);
        self.seq.extend_from_slice(block);
        self.queries = None;
        self.trace = None;
        self.kernel.append(&mut self.cluster, block)
    }

    /// Bytes this entry keeps resident: sequence + spine (+ cached root) +
    /// query structure + trace checkpoints, at 8 bytes per modeled item.
    pub fn footprint_bytes(&self) -> usize {
        let mut items = self.seq.len() / 2; // u32 elements, 4 bytes each
        items += self.kernel.footprint_items();
        if self.queries.is_some() {
            items += self.seq.len();
        }
        if let Some(trace) = &self.trace {
            items += trace.checkpoint_footprint();
        }
        8 * items
    }
}

fn cluster_for(n: usize, delta: f64) -> Cluster {
    Cluster::new(MpcConfig::lenient(n.max(4), delta))
}

/// The LRU kernel cache (see module docs).
pub struct KernelCache {
    budget_bytes: usize,
    delta: f64,
    block_size: usize,
    tick: u64,
    entries: HashMap<u64, CacheEntry>,
    counters: CacheCounters,
}

impl KernelCache {
    /// An empty cache evicting above `budget_bytes`; kernels run their
    /// clusters at `delta` and comb appended blocks in `block_size` chunks.
    pub fn new(budget_bytes: usize, delta: f64, block_size: usize) -> Self {
        Self {
            budget_bytes,
            delta,
            block_size,
            tick: 0,
            entries: HashMap::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Current counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Number of resident entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Total resident bytes across entries.
    pub fn total_bytes(&self) -> usize {
        self.entries.values().map(CacheEntry::footprint_bytes).sum()
    }

    /// Space violations recorded across every resident entry's history.
    pub fn violations(&self) -> u64 {
        self.entries.values().map(CacheEntry::violations).sum()
    }

    fn stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Ingests a sequence: a known content hash dedupes to a hit; otherwise
    /// the kernel is built and cached. Returns the key and whether it hit.
    pub fn ingest(&mut self, seq: Vec<u32>) -> (u64, bool) {
        let hash = content_hash(&seq);
        let stamp = self.stamp();
        if let Some(entry) = self.entries.get_mut(&hash) {
            entry.last_used = stamp;
            self.counters.hits += 1;
            return (hash, true);
        }
        self.counters.misses += 1;
        let entry = CacheEntry::new(seq, self.delta, self.block_size, stamp);
        debug_assert_eq!(entry.hash, hash);
        self.entries.insert(hash, entry);
        self.evict_over_budget(hash);
        (hash, false)
    }

    /// Looks up a hot entry by key, bumping its LRU stamp. A miss only
    /// counts the miss — the caller reports the unknown id.
    pub fn get(&mut self, hash: u64) -> Option<&mut CacheEntry> {
        let stamp = self.stamp();
        match self.entries.get_mut(&hash) {
            Some(entry) => {
                entry.last_used = stamp;
                self.counters.hits += 1;
                Some(entry)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Accesses an entry without touching the hit/miss counters — for
    /// follow-up reads by an operation that already counted itself.
    pub fn peek(&mut self, hash: u64) -> Option<&mut CacheEntry> {
        self.entries.get_mut(&hash)
    }

    /// Parses a hex id back to the cache key.
    pub fn parse_id(id: &str) -> Result<u64, String> {
        u64::from_str_radix(id, 16).map_err(|_| format!("malformed kernel id `{id}`"))
    }

    /// Extends a hot entry by `block`. The entry is re-keyed under the
    /// extended content hash (so a later `ingest` of the full sequence hits).
    pub fn append(&mut self, hash: u64, block: &[u32]) -> Result<(u64, AppendStats), String> {
        let stamp = self.stamp();
        let Some(mut entry) = self.entries.remove(&hash) else {
            self.counters.misses += 1;
            return Err(format!("unknown kernel id `{hash:016x}`"));
        };
        self.counters.hits += 1;
        entry.last_used = stamp;
        let stats = entry.append(block, self.delta);
        let new_hash = entry.hash;
        self.entries.insert(new_hash, entry);
        self.evict_over_budget(new_hash);
        Ok((new_hash, stats))
    }

    /// Evicts least-recently-used entries (never `keep`) until the budget
    /// fits or only the protected entry remains.
    fn evict_over_budget(&mut self, keep: u64) {
        while self.total_bytes() > self.budget_bytes && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(&k, _)| k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.counters.evictions += 1;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_seq(rng: &mut StdRng, n: usize) -> Vec<u32> {
        (0..n).map(|_| rng.gen_range(0..1000)).collect()
    }

    #[test]
    fn hash_extension_matches_full_rehash() {
        let mut rng = StdRng::seed_from_u64(51);
        let seq = random_seq(&mut rng, 500);
        for cut in [0, 1, 250, 499, 500] {
            let extended = extend_hash(extend_hash(FNV_OFFSET, &seq[..cut]), &seq[cut..]);
            assert_eq!(extended, content_hash(&seq), "cut={cut}");
        }
        assert_ne!(content_hash(&[1, 2]), content_hash(&[2, 1]));
        assert_eq!(content_hash(&[]), FNV_OFFSET);
    }

    #[test]
    fn identical_resubmission_dedupes_to_one_build() {
        let mut rng = StdRng::seed_from_u64(52);
        let seq = random_seq(&mut rng, 200);
        let mut cache = KernelCache::new(usize::MAX, 0.5, 32);
        let (id1, hit1) = cache.ingest(seq.clone());
        let (id2, hit2) = cache.ingest(seq.clone());
        assert_eq!(id1, id2);
        assert!(!hit1 && hit2);
        assert_eq!(cache.entry_count(), 1);
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn append_rekeys_to_the_full_sequence_hash() {
        let mut rng = StdRng::seed_from_u64(53);
        let seq = random_seq(&mut rng, 300);
        let (prefix, suffix) = seq.split_at(200);
        let mut cache = KernelCache::new(usize::MAX, 0.5, 32);
        let (id, _) = cache.ingest(prefix.to_vec());
        let (new_id, stats) = cache.append(id, suffix).unwrap();
        assert_eq!(new_id, content_hash(&seq), "append key = full-sequence key");
        assert!(stats.blocks_combed >= 1);
        // Ingesting the full sequence now hits the appended entry.
        let (again, hit) = cache.ingest(seq.clone());
        assert_eq!(again, new_id);
        assert!(hit);
        // The appended kernel answers like a fresh build.
        let entry = cache.get(new_id).unwrap();
        let direct = SemiLocalLis::new(&seq);
        assert_eq!(
            entry.queries().lis_window(0, seq.len()),
            direct.lis_window(0, seq.len())
        );
        assert_eq!(entry.violations(), 0);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let mut rng = StdRng::seed_from_u64(54);
        let mut cache = KernelCache::new(1, 0.5, 16); // everything over budget
        let (a, _) = cache.ingest(random_seq(&mut rng, 100));
        let (b, _) = cache.ingest(random_seq(&mut rng, 100));
        // The just-inserted entry is protected; the older one is evicted.
        assert_eq!(cache.entry_count(), 1);
        assert!(cache.get(b).is_some());
        assert!(cache.get(a).is_none());
        assert_eq!(cache.counters().evictions, 1);

        // A generous budget keeps both.
        let mut cache = KernelCache::new(usize::MAX, 0.5, 16);
        cache.ingest(random_seq(&mut rng, 100));
        cache.ingest(random_seq(&mut rng, 100));
        assert_eq!(cache.entry_count(), 2);
        assert!(cache.total_bytes() > 0);
    }

    #[test]
    fn unknown_ids_count_misses_and_report() {
        let mut cache = KernelCache::new(usize::MAX, 0.5, 16);
        assert!(cache.get(42).is_none());
        assert!(cache.append(42, &[1]).unwrap_err().contains("unknown"));
        assert_eq!(cache.counters().misses, 2);
        assert!(KernelCache::parse_id("zz").is_err());
        assert_eq!(KernelCache::parse_id("2a").unwrap(), 42);
    }
}
