//! A minimal line-JSON value: hand-rolled parser and serializer, enough for
//! the service protocol (objects, arrays, strings, integers, booleans, null).
//!
//! The build environment has no crates registry, so this is deliberately a
//! dependency-free subset: numbers are 64-bit signed integers (the protocol
//! carries sequence values, indices and counters — never floats), strings
//! support the standard escapes plus BMP `\uXXXX`, and nesting depth is
//! capped so a hostile line cannot overflow the parser's stack.

use std::fmt;

/// Maximum nesting depth a parsed document may have.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value (integer-only numbers; see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the protocol never uses fractions or exponents).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved and lookups are linear (the
    /// protocol's objects have a handful of keys).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of integers from any iterator of `usize`.
    pub fn int_arr(items: impl IntoIterator<Item = usize>) -> Value {
        Value::Arr(items.into_iter().map(|i| Value::Int(i as i64)).collect())
    }

    /// Parses one JSON document, requiring it to span the whole input
    /// (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut at = 0;
        let value = parse_value(bytes, &mut at, 0)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(format!("trailing garbage at byte {at}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(bytes: &[u8], at: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*at..].starts_with(lit.as_bytes()) {
        *at += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {at}"))
    }
}

fn parse_value(bytes: &[u8], at: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(bytes, at);
    match bytes.get(*at) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, at, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, at, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, at, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, at).map(Value::Str),
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, at, depth + 1)?);
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {at}")),
                }
            }
        }
        Some(b'{') => {
            *at += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, at);
                let key = parse_string(bytes, at)?;
                skip_ws(bytes, at);
                expect(bytes, at, ":")?;
                let value = parse_value(bytes, at, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {at}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_int(bytes, at),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {at}")),
    }
}

fn parse_int(bytes: &[u8], at: &mut usize) -> Result<Value, String> {
    let start = *at;
    if bytes.get(*at) == Some(&b'-') {
        *at += 1;
    }
    while *at < bytes.len() && bytes[*at].is_ascii_digit() {
        *at += 1;
    }
    if matches!(bytes.get(*at), Some(b'.' | b'e' | b'E')) {
        return Err(format!(
            "non-integer numbers are not part of the protocol (byte {at})"
        ));
    }
    let text = std::str::from_utf8(&bytes[start..*at]).map_err(|e| e.to_string())?;
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|e| format!("bad integer `{text}`: {e}"))
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
    if bytes.get(*at) != Some(&b'"') {
        return Err(format!("expected string at byte {at}"));
    }
    *at += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*at) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match bytes.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes.get(*at + 1..*at + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *at += 4;
                    }
                    _ => return Err(format!("bad escape at byte {at}")),
                }
                *at += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*at..]).map_err(|e| e.to_string())?;
                let Some(c) = rest.chars().next() else {
                    return Err(format!("truncated string at byte {at}"));
                };
                if (c as u32) < 0x20 {
                    return Err(format!("raw control byte in string at {at}"));
                }
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        for text in [
            r#"{"op":"ingest","seq":[3,1,2]}"#,
            r#"{"ok":true,"id":"ab12","n":3,"lis":2}"#,
            r#"{"a":[],"b":{},"c":null,"d":-7,"e":"x\"\\\n"}"#,
            "[1,[2,[3,[4]]]]",
        ] {
            let v = Value::parse(text).expect(text);
            let printed = v.to_string();
            assert_eq!(Value::parse(&printed).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Value::parse(r#"{"op":"window","l":2,"r":9,"deep":{"x":[1,2]}}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("window"));
        assert_eq!(v.get("l").and_then(Value::as_int), Some(2));
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("x"))
                .and_then(Value::as_arr),
            Some(&[Value::Int(1), Value::Int(2)][..])
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a":}"#,
            "1.5",
            "1e9",
            "tru",
            r#""unterminated"#,
            "[1] []",
            &format!("{}1{}", "[".repeat(80), "]".repeat(80)),
        ] {
            assert!(Value::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn escapes_survive_round_trip() {
        let v = Value::Str("line\nwith \"quotes\" and \\ tab\t\u{1}".to_string());
        let printed = v.to_string();
        assert_eq!(Value::parse(&printed).unwrap(), v);
        assert_eq!(Value::parse(r#""A""#).unwrap(), Value::Str("A".into()));
    }
}
