//! Semi-local analytics service: serve window-LIS and LCS-witness queries
//! off hot kernels, at scale.
//!
//! Building a seaweed kernel costs `O(n log² n)` work; answering a window
//! query off a built kernel costs `O(log² n)`, and recovering a witness costs
//! one `O(log n)`-round descent. A service that rebuilds per query throws the
//! asymmetry away. This crate keeps the expensive artifacts **hot** and makes
//! the three costs that dominate a serving workload cheap:
//!
//! * **Hot-kernel cache** ([`cache`]) — built kernels, their query
//!   structures and recorded merge trees stay resident, keyed by a memoized
//!   content hash (sequences are hashed once at ingest; identical
//!   resubmissions dedupe to a cache hit). Eviction is LRU under a byte
//!   budget derived from the checkpoint footprint, and every response carries
//!   hit/miss/eviction counters.
//! * **Query batching** ([`batch`]) — concurrent witness queries against the
//!   same kernel coalesce into **one** traceback descent; `q` batched queries
//!   cost the superstep schedule of one ([`lis_mpc::recover_batch`]).
//! * **Incremental append** ([`lis_mpc::AppendableLisKernel`]) — extending a
//!   hot sequence recombs only the `O(log n)` merge-tree spine instead of
//!   rebuilding, bit-identical to a full rebuild, with the cluster ledger
//!   proving the spine-only cost under the `service-append` scope.
//!
//! The transport ([`server`]) is deliberately plain: line-JSON over TCP, one
//! thread per connection, no external dependencies (the JSON subset lives in
//! [`json`]). See [`protocol`] for the request vocabulary.
//!
//! ```
//! use lis_service::{Client, Server, ServiceConfig};
//!
//! let server = Server::start(ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let built = client.request(r#"{"op":"ingest","seq":[3,1,4,1,5,9,2,6]}"#).unwrap();
//! let id = built.get("id").and_then(|v| v.as_str()).unwrap().to_string();
//! let windows = client
//!     .request(&format!(r#"{{"op":"window","id":"{id}","l":0,"r":8}}"#))
//!     .unwrap();
//! assert_eq!(windows.get("lis").and_then(|v| v.as_arr()).unwrap()[0].as_int(), Some(4));
//! client.request(r#"{"op":"shutdown"}"#).unwrap();
//! server.join();
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod json;
pub mod protocol;
pub mod server;
pub mod service;

pub use batch::{Coalesced, Coalescer};
pub use cache::{content_hash, extend_hash, CacheCounters, CacheEntry, KernelCache};
pub use json::Value;
pub use protocol::{error_response, Request};
pub use server::{Client, Server};
pub use service::{Service, ServiceConfig};
