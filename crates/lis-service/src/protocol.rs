//! The line-JSON request vocabulary of the analytics service.
//!
//! One request per line, one response line per request. Every response is an
//! object with `"ok"`: successes carry op-specific fields plus a `"cache"`
//! counter block; failures are `{"ok":false,"error":"…"}` — service-facing
//! entry points never panic (window validation routes through
//! [`seaweed_lis::lis::SemiLocalLis::try_lis_window`]).
//!
//! | op        | fields                                   | answer |
//! |-----------|------------------------------------------|--------|
//! | `ingest`  | `seq: [u32]`                             | kernel id (content hash), LIS length; dedupes to a cache hit for a known sequence |
//! | `window`  | `id`, `l`, `r` *or* `windows: [[l,r]…]`  | `LIS(A[l..r))` per window, off the hot kernel |
//! | `witness` | `id`, optional `lo`/`hi` *or* `ranges: [[lo,hi]…]` (value ranges) | positions (and values) of one LIS using only values in `[lo, hi)`; multi-range requests ride **one** traceback descent |
//! | `append`  | `id`, `block: [u32]`                     | new kernel id + spine stats + ledger proof that only the spine was recombed |
//! | `stats`   | —                                        | cache and ledger counters |
//! | `shutdown`| —                                        | stops the server after responding |

use crate::json::Value;

/// A parsed service request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Build (or dedupe to) the kernel of a sequence.
    Ingest {
        /// The sequence to ingest.
        seq: Vec<u32>,
    },
    /// Window-LIS queries `LIS(A[l..r))` against a hot kernel.
    Window {
        /// Kernel id returned by `ingest`/`append`.
        id: String,
        /// Half-open position windows to answer.
        windows: Vec<(usize, usize)>,
    },
    /// Witness queries against a hot kernel, addressed by half-open **value**
    /// ranges (an empty list means one full-sequence witness).
    Witness {
        /// Kernel id returned by `ingest`/`append`.
        id: String,
        /// Half-open value ranges; each gets its own witness, all in one descent.
        ranges: Vec<(u32, u32)>,
    },
    /// Extend a hot kernel's sequence by a block.
    Append {
        /// Kernel id returned by `ingest`/`append`.
        id: String,
        /// Elements to append.
        block: Vec<u32>,
    },
    /// Cache and ledger counters.
    Stats,
    /// Stop the server after responding.
    Shutdown,
}

/// Reads a `u32` sequence out of an array field.
fn parse_u32_seq(value: &Value, field: &str) -> Result<Vec<u32>, String> {
    let items = value
        .as_arr()
        .ok_or_else(|| format!("`{field}` must be an array of integers"))?;
    items
        .iter()
        .map(|item| {
            let i = item
                .as_int()
                .ok_or_else(|| format!("`{field}` must contain only integers"))?;
            u32::try_from(i).map_err(|_| format!("`{field}` value {i} is out of u32 range"))
        })
        .collect()
}

/// Reads a non-negative index out of an integer field.
fn parse_index(value: &Value, field: &str) -> Result<usize, String> {
    let i = value
        .as_int()
        .ok_or_else(|| format!("`{field}` must be an integer"))?;
    usize::try_from(i).map_err(|_| format!("`{field}` must be non-negative"))
}

/// Reads an array of `[a, b]` integer pairs.
fn parse_pairs(value: &Value, field: &str) -> Result<Vec<(usize, usize)>, String> {
    let items = value
        .as_arr()
        .ok_or_else(|| format!("`{field}` must be an array of [a, b] pairs"))?;
    items
        .iter()
        .map(|item| {
            let pair = item
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("`{field}` entries must be [a, b] pairs"))?;
            Ok((parse_index(&pair[0], field)?, parse_index(&pair[1], field)?))
        })
        .collect()
}

fn required<'v>(request: &'v Value, field: &str) -> Result<&'v Value, String> {
    request
        .get(field)
        .ok_or_else(|| format!("missing `{field}` field"))
}

fn parse_id(request: &Value) -> Result<String, String> {
    Ok(required(request, "id")?
        .as_str()
        .ok_or("`id` must be a string")?
        .to_string())
}

impl Request {
    /// Parses one request object (already JSON-decoded).
    pub fn from_value(request: &Value) -> Result<Request, String> {
        let op = required(request, "op")?
            .as_str()
            .ok_or("`op` must be a string")?;
        match op {
            "ingest" => Ok(Request::Ingest {
                seq: parse_u32_seq(required(request, "seq")?, "seq")?,
            }),
            "window" => {
                let id = parse_id(request)?;
                let windows = match request.get("windows") {
                    Some(list) => parse_pairs(list, "windows")?,
                    None => vec![(
                        parse_index(required(request, "l")?, "l")?,
                        parse_index(required(request, "r")?, "r")?,
                    )],
                };
                Ok(Request::Window { id, windows })
            }
            "witness" => {
                let id = parse_id(request)?;
                let ranges = match request.get("ranges") {
                    Some(list) => parse_pairs(list, "ranges")?
                        .into_iter()
                        .map(|(a, b)| {
                            Ok((
                                u32::try_from(a).map_err(|_| "`ranges` value out of u32 range")?,
                                u32::try_from(b).map_err(|_| "`ranges` value out of u32 range")?,
                            ))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    None => match (request.get("lo"), request.get("hi")) {
                        (None, None) => Vec::new(),
                        (lo, hi) => {
                            let lo = lo.map(|v| parse_index(v, "lo")).transpose()?.unwrap_or(0);
                            let hi = hi
                                .map(|v| parse_index(v, "hi"))
                                .transpose()?
                                .unwrap_or(u32::MAX as usize);
                            vec![(
                                u32::try_from(lo).map_err(|_| "`lo` out of u32 range")?,
                                u32::try_from(hi).map_err(|_| "`hi` out of u32 range")?,
                            )]
                        }
                    },
                };
                Ok(Request::Witness { id, ranges })
            }
            "append" => Ok(Request::Append {
                id: parse_id(request)?,
                block: parse_u32_seq(required(request, "block")?, "block")?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        Request::from_value(&Value::parse(line)?)
    }
}

/// Builds the uniform `{"ok":false,"error":…}` failure response.
pub fn error_response(message: &str) -> Value {
    Value::obj(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::Str(message.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(
            Request::parse(r#"{"op":"ingest","seq":[3,1,2]}"#).unwrap(),
            Request::Ingest { seq: vec![3, 1, 2] }
        );
        assert_eq!(
            Request::parse(r#"{"op":"window","id":"ab","l":1,"r":4}"#).unwrap(),
            Request::Window {
                id: "ab".into(),
                windows: vec![(1, 4)]
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"window","id":"ab","windows":[[0,2],[1,3]]}"#).unwrap(),
            Request::Window {
                id: "ab".into(),
                windows: vec![(0, 2), (1, 3)]
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"witness","id":"ab"}"#).unwrap(),
            Request::Witness {
                id: "ab".into(),
                ranges: vec![]
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"witness","id":"ab","lo":5,"hi":9}"#).unwrap(),
            Request::Witness {
                id: "ab".into(),
                ranges: vec![(5, 9)]
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"witness","id":"ab","ranges":[[0,4],[2,8]]}"#).unwrap(),
            Request::Witness {
                id: "ab".into(),
                ranges: vec![(0, 4), (2, 8)]
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"append","id":"ab","block":[9]}"#).unwrap(),
            Request::Append {
                id: "ab".into(),
                block: vec![9]
            }
        );
        assert_eq!(Request::parse(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            Request::parse(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_bad_requests_with_reasons() {
        for (line, needle) in [
            (r#"{"seq":[1]}"#, "missing `op`"),
            (r#"{"op":"fly"}"#, "unknown op"),
            (r#"{"op":"ingest"}"#, "missing `seq`"),
            (r#"{"op":"ingest","seq":[-1]}"#, "out of u32 range"),
            (r#"{"op":"ingest","seq":"no"}"#, "must be an array"),
            (r#"{"op":"window","id":"x","l":1}"#, "missing `r`"),
            (r#"{"op":"window","l":0,"r":1}"#, "missing `id`"),
            (r#"{"op":"window","id":"x","windows":[[1]]}"#, "pairs"),
            (r#"{"op":"append","id":"x"}"#, "missing `block`"),
            ("not json", "expected"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn error_response_shape() {
        let v = error_response("boom");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Value::as_str), Some("boom"));
    }
}
