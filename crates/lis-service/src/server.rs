//! Line-JSON TCP transport: one request per line, one response line per
//! request, a thread per connection over one shared [`Service`].
//!
//! The `shutdown` op answers, flips the running flag, and pokes the accept
//! loop with a self-connection so the listener thread exits promptly. A
//! [`Client`] helper wraps the connect/write/read-line/parse dance for tests,
//! examples and benchmarks.

use crate::json::Value;
use crate::protocol::{error_response, Request};
use crate::service::{Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running analytics server; dropping it does **not** stop it — call
/// [`Server::shutdown`] (or send the `shutdown` op) and then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds a loopback listener on an OS-assigned port and starts serving.
    pub fn start(config: ServiceConfig) -> std::io::Result<Server> {
        Server::bind("127.0.0.1:0", config)
    }

    /// Binds `addr` and starts serving.
    pub fn bind(addr: &str, config: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(Service::new(config));
        let running = Arc::new(AtomicBool::new(true));
        let acceptor = {
            let running = Arc::clone(&running);
            // conformance: allow(raw-spawn) — the accept loop is the one
            // long-lived service thread; `Server::join` shuts it down by
            // clearing `running` and poking the socket.
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if !running.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let service = Arc::clone(&service);
                    let running = Arc::clone(&running);
                    // Detached: a connection thread lives until its client
                    // hangs up. Joining them here would deadlock `join()`
                    // against clients that outlive the shutdown request.
                    // conformance: allow(raw-spawn) — per-connection I/O
                    // threads; they exit when the client disconnects or
                    // `running` clears, and never touch the rayon pool.
                    std::thread::spawn(move || {
                        serve_connection(stream, &service, &running, addr);
                    });
                }
            })
        };
        Ok(Server {
            addr,
            running,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (connect a [`Client`] here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections (idempotent; also triggered by the
    /// `shutdown` op).
    pub fn shutdown(&self) {
        request_stop(&self.running, self.addr);
    }

    /// Waits for the accept loop to finish. In-flight connections drain on
    /// their own threads and end when their clients hang up.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Flips the running flag and unblocks the accept loop with a self-connect.
fn request_stop(running: &AtomicBool, addr: SocketAddr) {
    if running.swap(false, Ordering::SeqCst) {
        let _ = TcpStream::connect(addr);
    }
}

fn serve_connection(stream: TcpStream, service: &Service, running: &AtomicBool, addr: SocketAddr) {
    // One write per response: `write!` straight into a TcpStream would issue
    // a tiny packet per format fragment and stall on Nagle + delayed ACKs.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = match Request::parse(&line) {
            Ok(request) => {
                let stop = request == Request::Shutdown;
                (service.handle(&request), stop)
            }
            Err(e) => (error_response(&e), false),
        };
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .is_err()
        {
            break;
        }
        if stop {
            let _ = writer.flush();
            request_stop(running, addr);
            break;
        }
    }
}

/// A blocking line-JSON client for the analytics service.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request line and parses the response line.
    pub fn request(&mut self, line: &str) -> Result<Value, String> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer
            .write_all(framed.as_bytes())
            .map_err(|e| e.to_string())?;
        let mut response = String::new();
        let read = self
            .reader
            .read_line(&mut response)
            .map_err(|e| e.to_string())?;
        if read == 0 {
            return Err("server closed the connection".to_string());
        }
        Value::parse(response.trim_end())
    }

    /// Sends one request object and parses the response line.
    pub fn request_value(&mut self, request: &Value) -> Result<Value, String> {
        self.request(&request.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use seaweed_lis::lis::SemiLocalLis;
    use std::time::Duration;

    fn test_config() -> ServiceConfig {
        ServiceConfig {
            block_size: 32,
            batch_window: Duration::from_millis(40),
            ..ServiceConfig::default()
        }
    }

    fn ingest(client: &mut Client, seq: &[u32]) -> String {
        let rendered: Vec<String> = seq.iter().map(|v| v.to_string()).collect();
        let response = client
            .request(&format!(
                r#"{{"op":"ingest","seq":[{}]}}"#,
                rendered.join(",")
            ))
            .unwrap();
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
        response
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    }

    #[test]
    fn serves_windows_and_witnesses_over_the_wire() {
        let mut rng = StdRng::seed_from_u64(71);
        let seq: Vec<u32> = (0..256).map(|_| rng.gen_range(0..400)).collect();
        let direct = SemiLocalLis::new(&seq);

        let server = Server::start(test_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let id = ingest(&mut client, &seq);

        let response = client
            .request(&format!(
                r#"{{"op":"window","id":"{id}","windows":[[0,256],[30,90]]}}"#
            ))
            .unwrap();
        let lis = response.get("lis").and_then(Value::as_arr).unwrap();
        assert_eq!(lis[0].as_int().unwrap() as usize, direct.lis_window(0, 256));
        assert_eq!(lis[1].as_int().unwrap() as usize, direct.lis_window(30, 90));

        let response = client
            .request(&format!(r#"{{"op":"witness","id":"{id}"}}"#))
            .unwrap();
        let witnesses = response.get("witnesses").and_then(Value::as_arr).unwrap();
        let positions = witnesses[0]
            .get("positions")
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(positions.len(), direct.lis_window(0, direct.len()));

        // Malformed lines come back as error responses, not dropped sockets.
        let response = client.request("this is not json").unwrap();
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(false));
        let response = client
            .request(&format!(r#"{{"op":"window","id":"{id}","l":9,"r":3}}"#))
            .unwrap();
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(false));

        client.request(r#"{"op":"shutdown"}"#).unwrap();
        server.join();
    }

    #[test]
    fn second_connection_hits_the_hot_kernel() {
        let mut rng = StdRng::seed_from_u64(72);
        let seq: Vec<u32> = (0..200).map(|_| rng.gen_range(0..300)).collect();
        let server = Server::start(test_config()).unwrap();

        let mut first = Client::connect(server.addr()).unwrap();
        let id = ingest(&mut first, &seq);

        let mut second = Client::connect(server.addr()).unwrap();
        let again = ingest(&mut second, &seq);
        assert_eq!(id, again);
        let response = second.request(r#"{"op":"ingest","seq":[1,2,3]}"#).unwrap();
        assert_eq!(response.get("cached").and_then(Value::as_bool), Some(false));
        let response = second.request(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(response.get("entries").and_then(Value::as_int), Some(2));
        let counters = response.get("cache").unwrap();
        assert_eq!(counters.get("hits").and_then(Value::as_int), Some(1));

        server.shutdown();
        server.join();
    }

    #[test]
    fn concurrent_single_range_witnesses_coalesce_across_connections() {
        let mut rng = StdRng::seed_from_u64(73);
        let seq: Vec<u32> = (0..300).map(|_| rng.gen_range(0..500)).collect();
        let server = Server::start(test_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let id = ingest(&mut client, &seq);
        // Warm the trace so the batch leader's descent is cheap and the
        // followers' join window is easy to hit.
        client
            .request(&format!(r#"{{"op":"witness","id":"{id}"}}"#))
            .unwrap();

        let addr = server.addr();
        let threads: Vec<_> = (0..4u32)
            .map(|i| {
                let id = id.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let lo = i * 20;
                    let response = client
                        .request(&format!(
                            r#"{{"op":"witness","id":"{id}","lo":{lo},"hi":480}}"#
                        ))
                        .unwrap();
                    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
                    response.get("batch").and_then(Value::as_int).unwrap()
                })
            })
            .collect();
        let batches: Vec<i64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        // Correctness is asserted above; coalescing across sockets is timing
        // dependent, so just require the protocol reported sane batch sizes.
        assert!(batches.iter().all(|&b| (1..=4).contains(&b)), "{batches:?}");

        server.shutdown();
        server.join();
    }
}
