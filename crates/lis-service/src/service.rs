//! The service core: request handlers over the hot-kernel cache and the
//! batch coalescer. The server ([`crate::server`]) is a thin line-JSON
//! transport around [`Service::handle`].
//!
//! Locking discipline: the cache sits behind one mutex; handlers hold it for
//! the duration of one cache operation and never while waiting on the
//! coalescer. The coalescer's descend closure re-acquires the cache lock with
//! no other locks held, so leader threads cannot deadlock with handlers.

use crate::batch::Coalescer;
use crate::cache::{CacheCounters, KernelCache};
use crate::json::Value;
use crate::protocol::{error_response, Request};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// What a poisoned cache lock answers: the panic happened on *another*
/// connection; this one still gets a structured error, not a cascade.
const POISONED: &str = "kernel cache poisoned by a panic on another connection";

/// Tunables of a service instance.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Byte budget of the hot-kernel cache; LRU eviction above it.
    pub budget_bytes: usize,
    /// Space exponent δ of each kernel's recording cluster.
    pub delta: f64,
    /// Comb granularity for ingested sequences and appended blocks.
    pub block_size: usize,
    /// How long a witness batch leader waits for concurrent queries to join.
    pub batch_window: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            budget_bytes: 256 << 20,
            delta: 0.5,
            block_size: 1024,
            batch_window: Duration::from_millis(2),
        }
    }
}

/// The analytics service: a hot-kernel cache plus a per-kernel witness
/// coalescer. Shared across connection threads behind an `Arc`.
pub struct Service {
    cache: Mutex<KernelCache>,
    coalescer: Coalescer,
}

impl Service {
    /// A fresh service with an empty cache.
    pub fn new(config: ServiceConfig) -> Self {
        Self {
            cache: Mutex::new(KernelCache::new(
                config.budget_bytes,
                config.delta,
                config.block_size,
            )),
            coalescer: Coalescer::new(config.batch_window),
        }
    }

    /// Handles one parsed request, returning the response object. Never
    /// panics on user input: validation failures come back as
    /// `{"ok":false,"error":…}`.
    pub fn handle(&self, request: &Request) -> Value {
        match request {
            Request::Ingest { seq } => self.ingest(seq),
            Request::Window { id, windows } => self.window(id, windows),
            Request::Witness { id, ranges } => self.witness(id, ranges),
            Request::Append { id, block } => self.append(id, block),
            Request::Stats => self.stats(),
            Request::Shutdown => Value::obj(vec![
                ("ok", Value::Bool(true)),
                ("stopping", Value::Bool(true)),
            ]),
        }
    }

    /// Parses and handles one request line.
    pub fn handle_line(&self, line: &str) -> Value {
        match Request::parse(line) {
            Ok(request) => self.handle(&request),
            Err(e) => error_response(&e),
        }
    }

    /// Locks the cache; a poisoned lock becomes an error the caller returns
    /// as `{"ok":false}` instead of crashing the connection.
    fn lock_cache(&self) -> Result<MutexGuard<'_, KernelCache>, String> {
        self.cache.lock().map_err(|_| POISONED.to_string())
    }

    fn ingest(&self, seq: &[u32]) -> Value {
        let mut cache = match self.lock_cache() {
            Ok(cache) => cache,
            Err(e) => return error_response(&e),
        };
        let (hash, cached) = cache.ingest(seq.to_vec());
        let Some(entry) = cache.peek(hash) else {
            return error_response("ingested kernel evicted before it could be answered");
        };
        let id = entry.id();
        let n = entry.seq().len();
        let queries = entry.queries();
        let lis = queries.lis_window(0, queries.len());
        let counters = cache.counters();
        Value::obj(vec![
            ("ok", Value::Bool(true)),
            ("id", Value::Str(id)),
            ("n", Value::Int(n as i64)),
            ("lis", Value::Int(lis as i64)),
            ("cached", Value::Bool(cached)),
            ("cache", counter_block(counters)),
        ])
    }

    fn window(&self, id: &str, windows: &[(usize, usize)]) -> Value {
        let hash = match KernelCache::parse_id(id) {
            Ok(hash) => hash,
            Err(e) => return error_response(&e),
        };
        let mut cache = match self.lock_cache() {
            Ok(cache) => cache,
            Err(e) => return error_response(&e),
        };
        let Some(entry) = cache.get(hash) else {
            return error_response(&format!("unknown kernel id `{id}`"));
        };
        let queries = entry.queries();
        let mut answers = Vec::with_capacity(windows.len());
        for &(l, r) in windows {
            match queries.try_lis_window(l, r) {
                Ok(len) => answers.push(len),
                Err(e) => return error_response(&e.to_string()),
            }
        }
        let counters = cache.counters();
        Value::obj(vec![
            ("ok", Value::Bool(true)),
            ("id", Value::Str(id.to_string())),
            ("lis", Value::int_arr(answers)),
            ("cache", counter_block(counters)),
        ])
    }

    fn witness(&self, id: &str, ranges: &[(u32, u32)]) -> Value {
        let hash = match KernelCache::parse_id(id) {
            Ok(hash) => hash,
            Err(e) => return error_response(&e),
        };
        // An empty list means one full-sequence witness.
        let ranges: Vec<(u32, u32)> = if ranges.is_empty() {
            vec![(0, u32::MAX)]
        } else {
            ranges.to_vec()
        };
        if let Some(&(lo, hi)) = ranges.iter().find(|&&(lo, hi)| lo > hi) {
            return error_response(&format!("witness range [{lo}, {hi}) is inverted"));
        }

        let (witnesses, batch) = if ranges.len() > 1 {
            // A multi-range request is already a batch: one descent, no need
            // to wait for other connections.
            match self.descend(hash, &ranges) {
                Ok(all) => {
                    let size = all.len();
                    (all, size)
                }
                Err(e) => return error_response(&e),
            }
        } else {
            // A single-range request coalesces with concurrent queries for
            // the same kernel: whoever leads runs ONE descent for everyone.
            let (lo, hi) = ranges[0];
            let coalesced = self
                .coalescer
                .submit(hash, (lo as usize, hi as usize), |gathered| {
                    let value_ranges: Vec<(u32, u32)> = gathered
                        .iter()
                        .map(|&(lo, hi)| (lo as u32, hi as u32))
                        .collect();
                    self.descend(hash, &value_ranges)
                });
            match coalesced {
                Ok(out) => (vec![out.positions], out.batch_size),
                Err(e) => return error_response(&e),
            }
        };

        // Attach the witnessed values (read off the hot sequence).
        let mut cache = match self.lock_cache() {
            Ok(cache) => cache,
            Err(e) => return error_response(&e),
        };
        let Some(entry) = cache.peek(hash) else {
            return error_response(&format!("unknown kernel id `{id}`"));
        };
        let seq = entry.seq();
        let rendered: Vec<Value> = witnesses
            .iter()
            .map(|positions| {
                Value::obj(vec![
                    ("positions", Value::int_arr(positions.iter().copied())),
                    (
                        "values",
                        Value::int_arr(positions.iter().map(|&p| seq[p] as usize)),
                    ),
                ])
            })
            .collect();
        let counters = cache.counters();
        Value::obj(vec![
            ("ok", Value::Bool(true)),
            ("id", Value::Str(id.to_string())),
            ("witnesses", Value::Arr(rendered)),
            ("batch", Value::Int(batch as i64)),
            ("cache", counter_block(counters)),
        ])
    }

    /// One batched descent: maps value ranges to rank windows and recovers
    /// every witness in a single superstep schedule. Called either inline
    /// (multi-range request) or as the coalescer's leader closure — in both
    /// cases with no locks held on entry.
    fn descend(&self, hash: u64, ranges: &[(u32, u32)]) -> Result<Vec<Vec<usize>>, String> {
        let mut cache = self.lock_cache()?;
        let Some(entry) = cache.get(hash) else {
            return Err(format!("unknown kernel id `{hash:016x}`"));
        };
        let windows: Vec<(usize, usize)> = ranges
            .iter()
            .map(|&(lo, hi)| entry.value_rank_window(lo, hi))
            .collect();
        Ok(entry.witness_batch(&windows, "service-witness"))
    }

    fn append(&self, id: &str, block: &[u32]) -> Value {
        let hash = match KernelCache::parse_id(id) {
            Ok(hash) => hash,
            Err(e) => return error_response(&e),
        };
        let mut cache = match self.lock_cache() {
            Ok(cache) => cache,
            Err(e) => return error_response(&e),
        };
        let (new_hash, stats) = match cache.append(hash, block) {
            Ok(out) => out,
            Err(e) => return error_response(&e),
        };
        let Some(entry) = cache.peek(new_hash) else {
            return error_response("appended kernel evicted before it could be answered");
        };
        let new_id = entry.id();
        let n = entry.seq().len();
        let queries = entry.queries();
        let lis = queries.lis_window(0, queries.len());
        // Ledger proof surface: everything the append charged sits under the
        // `service-append` scope of this entry's cluster.
        let ledger = entry.cluster().ledger();
        let append_rounds = ledger.scope_rounds("service-append");
        let append_comm = ledger.scope_comm("service-append");
        let counters = cache.counters();
        Value::obj(vec![
            ("ok", Value::Bool(true)),
            ("id", Value::Str(new_id)),
            ("previous", Value::Str(id.to_string())),
            ("n", Value::Int(n as i64)),
            ("lis", Value::Int(lis as i64)),
            (
                "stats",
                Value::obj(vec![
                    ("blocks_combed", Value::Int(stats.blocks_combed as i64)),
                    ("spine_merges", Value::Int(stats.spine_merges as i64)),
                    ("spine_len", Value::Int(stats.spine_len as i64)),
                    ("recombed_items", Value::Int(stats.recombed_items as i64)),
                ]),
            ),
            (
                "ledger",
                Value::obj(vec![
                    ("append_rounds", Value::Int(append_rounds as i64)),
                    ("append_comm", Value::Int(append_comm as i64)),
                ]),
            ),
            ("cache", counter_block(counters)),
        ])
    }

    fn stats(&self) -> Value {
        let cache = match self.lock_cache() {
            Ok(cache) => cache,
            Err(e) => return error_response(&e),
        };
        Value::obj(vec![
            ("ok", Value::Bool(true)),
            ("entries", Value::Int(cache.entry_count() as i64)),
            ("bytes", Value::Int(cache.total_bytes() as i64)),
            ("violations", Value::Int(cache.violations() as i64)),
            ("cache", counter_block(cache.counters())),
        ])
    }
}

fn counter_block(counters: CacheCounters) -> Value {
    Value::obj(vec![
        ("hits", Value::Int(counters.hits as i64)),
        ("misses", Value::Int(counters.misses as i64)),
        ("evictions", Value::Int(counters.evictions as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use seaweed_lis::lis::SemiLocalLis;

    fn service() -> Service {
        Service::new(ServiceConfig {
            block_size: 32,
            batch_window: Duration::from_millis(1),
            ..ServiceConfig::default()
        })
    }

    fn ingest(service: &Service, seq: &[u32]) -> String {
        let rendered: Vec<String> = seq.iter().map(|v| v.to_string()).collect();
        let response = service.handle_line(&format!(
            r#"{{"op":"ingest","seq":[{}]}}"#,
            rendered.join(",")
        ));
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
        response
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    }

    #[test]
    fn ingest_window_and_append_round_trip() {
        let mut rng = StdRng::seed_from_u64(61);
        let seq: Vec<u32> = (0..300).map(|_| rng.gen_range(0..500)).collect();
        let service = service();
        let id = ingest(&service, &seq);

        let direct = SemiLocalLis::new(&seq);
        let response = service.handle_line(&format!(
            r#"{{"op":"window","id":"{id}","windows":[[0,300],[10,40],[250,300]]}}"#
        ));
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
        let lis = response.get("lis").and_then(Value::as_arr).unwrap();
        for (value, (l, r)) in lis.iter().zip([(0, 300), (10, 40), (250, 300)]) {
            assert_eq!(value.as_int().unwrap() as usize, direct.lis_window(l, r));
        }

        // Append, then query through the NEW id; the old id is retired.
        let block: Vec<u32> = (0..50).map(|_| rng.gen_range(0..500)).collect();
        let rendered: Vec<String> = block.iter().map(|v| v.to_string()).collect();
        let response = service.handle_line(&format!(
            r#"{{"op":"append","id":"{id}","block":[{}]}}"#,
            rendered.join(",")
        ));
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
        let new_id = response
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        assert_ne!(new_id, id);
        assert!(response
            .get("ledger")
            .and_then(|l| l.get("append_comm"))
            .is_some());

        let mut full = seq.clone();
        full.extend_from_slice(&block);
        let direct = SemiLocalLis::new(&full);
        let response = service.handle_line(&format!(
            r#"{{"op":"window","id":"{new_id}","l":0,"r":350}}"#
        ));
        let lis = response.get("lis").and_then(Value::as_arr).unwrap();
        assert_eq!(lis[0].as_int().unwrap() as usize, direct.lis_window(0, 350));
    }

    #[test]
    fn window_errors_are_responses_not_panics() {
        let service = service();
        let id = ingest(&service, &[3, 1, 4, 1, 5]);
        for (line, needle) in [
            (
                format!(r#"{{"op":"window","id":"{id}","l":4,"r":2}}"#),
                "window",
            ),
            (
                format!(r#"{{"op":"window","id":"{id}","l":0,"r":99}}"#),
                "length",
            ),
            (
                r#"{"op":"window","id":"00000000000000ff","l":0,"r":1}"#.to_string(),
                "unknown kernel id",
            ),
            (
                r#"{"op":"window","id":"not-hex","l":0,"r":1}"#.to_string(),
                "malformed",
            ),
        ] {
            let response = service.handle_line(&line);
            assert_eq!(
                response.get("ok").and_then(Value::as_bool),
                Some(false),
                "{line}"
            );
            let error = response.get("error").and_then(Value::as_str).unwrap();
            assert!(error.contains(needle), "{line}: {error}");
        }
    }

    #[test]
    fn witness_answers_are_real_increasing_subsequences() {
        let mut rng = StdRng::seed_from_u64(62);
        let seq: Vec<u32> = (0..400).map(|_| rng.gen_range(0..300)).collect();
        let service = service();
        let id = ingest(&service, &seq);
        let direct = SemiLocalLis::new(&seq);

        let response = service.handle_line(&format!(
            r#"{{"op":"witness","id":"{id}","ranges":[[0,300],[50,200],[120,121]]}}"#
        ));
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(response.get("batch").and_then(Value::as_int), Some(3));
        let witnesses = response.get("witnesses").and_then(Value::as_arr).unwrap();
        assert_eq!(witnesses.len(), 3);
        for (witness, (lo, hi)) in witnesses
            .iter()
            .zip([(0u32, 300u32), (50, 200), (120, 121)])
        {
            let positions: Vec<usize> = witness
                .get("positions")
                .and_then(Value::as_arr)
                .unwrap()
                .iter()
                .map(|p| p.as_int().unwrap() as usize)
                .collect();
            // Strictly increasing positions and values, all inside the range.
            for pair in positions.windows(2) {
                assert!(pair[0] < pair[1]);
                assert!(seq[pair[0]] < seq[pair[1]]);
            }
            for &p in &positions {
                assert!((lo..hi).contains(&seq[p]));
            }
            // And as long as the best possible inside the range.
            let filtered: Vec<u32> = seq
                .iter()
                .copied()
                .filter(|v| (lo..hi).contains(v))
                .collect();
            assert_eq!(positions.len(), seaweed_lis::lis::lis_length(&filtered));
        }

        // The full-sequence witness (no ranges) realizes the global LIS.
        let response = service.handle_line(&format!(r#"{{"op":"witness","id":"{id}"}}"#));
        let witnesses = response.get("witnesses").and_then(Value::as_arr).unwrap();
        let positions = witnesses[0]
            .get("positions")
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(positions.len(), direct.lis_window(0, direct.len()));

        // Inverted value ranges are rejected, not asserted on.
        let response = service.handle_line(&format!(
            r#"{{"op":"witness","id":"{id}","ranges":[[9,3]]}}"#
        ));
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn stats_and_dedupe_counters_flow_through() {
        let service = service();
        let id = ingest(&service, &[5, 2, 8, 6, 3, 6, 9, 7]);
        let again = ingest(&service, &[5, 2, 8, 6, 3, 6, 9, 7]);
        assert_eq!(id, again, "identical ingest dedupes to the same id");
        let response = service.handle_line(r#"{"op":"stats"}"#);
        assert_eq!(response.get("entries").and_then(Value::as_int), Some(1));
        assert_eq!(response.get("violations").and_then(Value::as_int), Some(0));
        let cache = response.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Value::as_int), Some(1));
        assert_eq!(cache.get("misses").and_then(Value::as_int), Some(1));
        assert!(response.get("bytes").and_then(Value::as_int).unwrap() > 0);
    }
}
