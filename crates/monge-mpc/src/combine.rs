//! The distributed H-way combine (§3.2–§3.3 of the paper).
//!
//! Input: the colored union permutation of every parent instance being combined at
//! this recursion level (each nonzero knows which of the `H` subproblems produced
//! it). Output: the nonzeros of each parent's product matrix.
//!
//! The combine runs in a constant number of primitive rounds per level:
//!
//! 1. **Grid-line phase** — for every vertical grid line `c` (a multiple of `G`)
//!    compute, for every color `q`, the demarcation row `b_q(c) = min{i : opt(i,c) > q}`
//!    (from the pairwise crossovers `cmp(c,q,r)` of §3.2 and the breakpoint
//!    reconstruction in `monge::multiway`).
//! 2. **Classification** — a subgrid crossed by a demarcation line is *active*;
//!    points in non-active subgrids survive iff their color equals the locally
//!    constant `opt` (Lemma 3.10).
//! 3. **Routing** — every active subgrid receives the union points in its row range
//!    and column range plus its corner `F_q` vector (see DESIGN.md for how this
//!    relates to the paper's tighter Lemma 3.12 routing).
//! 4. **Local phase** — each active subgrid is resolved on one machine with
//!    [`monge::multiway::process_subgrid`], emitting the interesting points of
//!    Lemma 3.9 and the surviving union points.

use crate::mul::Nonzero;
use crate::params::GridPhase;
use monge::multiway::{
    opt_breakpoints_from_cmp, process_subgrid, ColoredPoint, MultiwayOracle, SubgridInstance,
};
use mpc_runtime::{Cluster, DistVec};
use rayon::prelude::*;
use std::collections::HashMap;

/// A nonzero of the union permutation, tagged with its parent instance and color.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Colored {
    /// Parent instance being combined.
    pub inst: u64,
    /// Row of the nonzero in the parent's coordinates.
    pub row: u32,
    /// Column of the nonzero in the parent's coordinates.
    pub col: u32,
    /// Subproblem (color) that produced it.
    pub color: u16,
}

/// Static description of a parent instance participating in a combine.
#[derive(Clone, Copy, Debug)]
pub struct ParentSpec {
    /// Instance id.
    pub inst: u64,
    /// Matrix dimension of the parent.
    pub n: usize,
    /// Number of subproblems (colors) it was split into.
    pub h: usize,
    /// Grid spacing used for this parent.
    pub g: usize,
}

/// Identifies one subgrid of one parent: `(parent, grid row, grid column)`.
type Target = (u64, u32, u32);

/// An active subgrid descriptor produced by the classification phase.
#[derive(Clone, Debug)]
struct ActiveSubgrid {
    parent: u64,
    gi: u32,
    gj: u32,
    base_f: Vec<u64>,
}

/// Verdict of the classification phase for a single union point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verdict {
    /// The point's subgrid has constant `opt` equal to its color: it survives.
    Keep,
    /// Constant `opt` different from its color: it is dropped.
    Drop,
    /// The point lies in an active subgrid; the local phase decides.
    Active,
}

/// Payload routed to the final per-subgrid groups.
#[derive(Clone, Debug)]
enum Payload {
    Desc(Vec<u64>),
    RowPt(ColoredPoint),
    ColPt(ColoredPoint),
}

/// Per-line output of the grid phase: the demarcation rows `b_q(c)` for one vertical
/// grid line at column `c`.
#[derive(Clone, Debug)]
struct LineInfo {
    parent: u64,
    /// Grid-line column (a multiple of `G`, or `n`).
    c: u32,
    /// `b[q] = min{i : opt(i, c) > q}` (equal to `n + 1` when demarcation line `q`
    /// never crosses this grid line).
    b: Vec<u32>,
}

/// Runs the distributed combine for all `parents` at once and returns the product
/// nonzeros of every parent.
pub fn distributed_combine(
    cluster: &mut Cluster,
    colored: DistVec<Colored>,
    parents: &[ParentSpec],
    grid_phase: GridPhase,
) -> DistVec<Nonzero> {
    cluster.set_phase(Some("combine"));
    let specs: HashMap<u64, ParentSpec> = parents.iter().map(|p| (p.inst, *p)).collect();
    let specs = cluster.broadcast(specs);

    // Phase 1: per-line demarcation rows.
    let lines = match grid_phase {
        GridPhase::Reference | GridPhase::Tree => grid_phase_reference(cluster, &colored, &specs),
    };

    // Phase 2: classify points, enumerate active subgrids.
    let (active, classified) = classify(cluster, &colored, lines, &specs);
    let active = attach_base_f(cluster, &colored, active, &specs);

    // Points of non-active subgrids that survive (Lemma 3.10, constant case).
    let kept: DistVec<Nonzero> = {
        let kept_points = cluster.filter(classified.clone(), |(_, v)| *v == Verdict::Keep);
        cluster.map(&kept_points, |(p, _)| Nonzero {
            inst: p.inst,
            row: p.row,
            col: p.col,
        })
    };

    // Phase 3: routing.
    let points_only = cluster.map(&classified, |(p, _)| *p);
    let row_routed = route_band(cluster, &points_only, &active, &specs, true);
    let col_routed = route_band(cluster, &points_only, &active, &specs, false);
    let descs: DistVec<(Target, Payload)> = cluster.map(&active, |d| {
        ((d.parent, d.gi, d.gj), Payload::Desc(d.base_f.clone()))
    });
    let all_items = {
        let rc = cluster.concat(row_routed, col_routed);
        cluster.concat(rc, descs)
    };

    // Phase 4: local subgrid resolution.
    let specs_local = specs.clone();
    let subgrid_out: DistVec<Nonzero> = cluster.group_map(
        all_items,
        |(target, _)| *target,
        move |&(parent, gi, gj), items| resolve_subgrid(parent, gi, gj, items, &specs_local),
    );

    cluster.set_phase(None::<String>);
    cluster.concat(kept, subgrid_out)
}

/// Routes every point to the active subgrids whose row band (`by_rows = true`) or
/// column band contains it.
fn route_band(
    cluster: &mut Cluster,
    points: &DistVec<Colored>,
    active: &DistVec<ActiveSubgrid>,
    specs: &HashMap<u64, ParentSpec>,
    by_rows: bool,
) -> DistVec<(Target, Payload)> {
    #[derive(Clone, Debug)]
    enum Item {
        Point(Colored),
        Active(u64, u32, u32),
    }
    let pts = cluster.map(points, |p| Item::Point(*p));
    let ds = cluster.map(active, |d| Item::Active(d.parent, d.gi, d.gj));
    let both = cluster.concat(pts, ds);

    let key_specs = specs.clone();
    cluster.group_map(
        both,
        move |item| match item {
            Item::Point(p) => {
                let g = key_specs[&p.inst].g as u32;
                (p.inst, if by_rows { p.row / g } else { p.col / g })
            }
            Item::Active(parent, gi, gj) => (*parent, if by_rows { *gi } else { *gj }),
        },
        move |_, items| {
            let mut band_points = Vec::new();
            let mut band_subgrids = Vec::new();
            for item in items {
                match item {
                    Item::Point(p) => band_points.push(p),
                    Item::Active(parent, gi, gj) => band_subgrids.push((parent, gi, gj)),
                }
            }
            let mut out = Vec::with_capacity(band_points.len() * band_subgrids.len());
            for &(parent, gi, gj) in &band_subgrids {
                for p in &band_points {
                    let cp = ColoredPoint {
                        row: p.row,
                        col: p.col,
                        color: p.color,
                    };
                    let payload = if by_rows {
                        Payload::RowPt(cp)
                    } else {
                        Payload::ColPt(cp)
                    };
                    out.push(((parent, gi, gj), payload));
                }
            }
            out
        },
    )
}

/// Builds a [`SubgridInstance`] from the routed items and resolves it locally.
fn resolve_subgrid(
    parent: u64,
    gi: u32,
    gj: u32,
    items: Vec<(Target, Payload)>,
    specs: &HashMap<u64, ParentSpec>,
) -> Vec<Nonzero> {
    let spec = specs[&parent];
    let g = spec.g as u32;
    let n = spec.n as u32;
    let (r0, c0) = (gi * g, gj * g);
    let (r1, c1) = ((r0 + g).min(n), (c0 + g).min(n));

    let mut base_f = Vec::new();
    let mut row_pts = Vec::new();
    let mut col_pts = Vec::new();
    for (_, payload) in items {
        match payload {
            Payload::Desc(f) => base_f = f,
            Payload::RowPt(p) => row_pts.push(p),
            Payload::ColPt(p) => col_pts.push(p),
        }
    }
    assert!(
        !base_f.is_empty(),
        "active subgrid ({parent},{gi},{gj}) was routed without its descriptor"
    );
    row_pts.sort_unstable_by_key(|p| p.row);
    col_pts.sort_unstable_by_key(|p| p.col);
    let inst = SubgridInstance {
        r0,
        r1,
        c0,
        c1,
        h: spec.h as u16,
        base_f,
        row_pts,
        col_pts,
    };
    process_subgrid(&inst)
        .nonzeros
        .into_iter()
        .map(|(row, col)| Nonzero {
            inst: parent,
            row,
            col,
        })
        .collect()
}

// =====================================================================================
// Grid-line phase
// =====================================================================================

/// Reference grid-line phase: gathers each parent's union permutation on one machine
/// and computes the per-line demarcation rows with the sequential oracle.
///
/// The gather ignores the per-machine space budget for parents larger than `s`
/// (recorded by the ledger as violations); the paper's §3.2 H-ary tree descent
/// computes exactly the same `cmp(c, q, r)` values within the budget with the same
/// `O(1)` round structure. See DESIGN.md §3 for the substitution note.
fn grid_phase_reference(
    cluster: &mut Cluster,
    colored: &DistVec<Colored>,
    specs: &HashMap<u64, ParentSpec>,
) -> DistVec<LineInfo> {
    let specs = specs.clone();
    cluster.group_map(
        colored.clone(),
        |p| p.inst,
        move |&inst, points| {
            let spec = specs[&inst];
            let pts: Vec<ColoredPoint> = points
                .iter()
                .map(|p| ColoredPoint {
                    row: p.row,
                    col: p.col,
                    color: p.color,
                })
                .collect();
            let oracle = MultiwayOracle::new(&pts, spec.h);
            grid_lines(&oracle, spec)
        },
    )
}

/// Computes every vertical grid line's demarcation rows from an oracle.
///
/// The grid lines are independent of one another (each needs only the shared,
/// read-only oracle), so the `h²/2` crossover computations of every line run
/// concurrently — this is the §3.2 work the paper spreads over one machine per
/// line, and the dominant local cost of the combine.
fn grid_lines(oracle: &MultiwayOracle, spec: ParentSpec) -> Vec<LineInfo> {
    let n = spec.n as u32;
    let h = spec.h;
    let mut columns = Vec::new();
    let mut c = 0u32;
    loop {
        columns.push(c);
        if c >= n {
            break;
        }
        c = (c + spec.g as u32).min(n);
    }
    columns
        .into_par_iter()
        .map(|c| {
            let mut cmp = vec![vec![0u32; h]; h];
            for q in 0..h {
                for r in q + 1..h {
                    cmp[q][r] = oracle.cmp(n, c, q, r);
                }
            }
            let breakpoints = opt_breakpoints_from_cmp(&cmp, h, n);
            LineInfo {
                parent: spec.inst,
                c,
                b: b_vector(&breakpoints, h, n),
            }
        })
        .collect()
}

/// Converts `opt(·, c)` breakpoints into the demarcation rows
/// `b[q] = min{i : opt(i, c) > q}` (or `n + 1` when the line never crosses).
fn b_vector(breakpoints: &[(u32, u16)], h: usize, n: u32) -> Vec<u32> {
    let mut b = vec![n + 1; h];
    if let Some(&(_, first)) = breakpoints.first() {
        for q in 0..first {
            b[q as usize] = 0;
        }
    }
    for window in breakpoints.windows(2) {
        let (_, cur_val) = window[0];
        let (next_start, next_val) = window[1];
        for q in cur_val..next_val {
            b[q as usize] = next_start;
        }
    }
    b
}

/// Classifies points and enumerates active subgrids from the per-line information.
fn classify(
    cluster: &mut Cluster,
    colored: &DistVec<Colored>,
    lines: DistVec<LineInfo>,
    specs: &HashMap<u64, ParentSpec>,
) -> (DistVec<ActiveSubgrid>, DistVec<(Colored, Verdict)>) {
    #[derive(Clone, Debug)]
    enum BandItem {
        Line(LineInfo),
        Point(Colored),
    }
    #[derive(Clone, Debug)]
    enum BandOut {
        Active(ActiveSubgrid),
        Classified(Colored, Verdict),
    }

    // A grid line at column c borders the band to its right (if c < n) and the band
    // to its left (if c > 0); replicate it into both groups.
    let specs_lines = specs.clone();
    let line_items = cluster.flat_map(&lines, move |line| {
        let spec = specs_lines[&line.parent];
        let g = spec.g as u32;
        let n = spec.n as u32;
        let mut out = Vec::with_capacity(2);
        if line.c < n {
            out.push(((line.parent, line.c / g), BandItem::Line(line.clone())));
        }
        if line.c > 0 {
            out.push((
                (line.parent, (line.c - 1) / g),
                BandItem::Line(line.clone()),
            ));
        }
        out
    });
    let specs_pts = specs.clone();
    let point_items = cluster.map(colored, move |p| {
        let g = specs_pts[&p.inst].g as u32;
        ((p.inst, p.col / g), BandItem::Point(*p))
    });
    let all = cluster.concat(line_items, point_items);

    let specs_groups = specs.clone();
    let outputs: DistVec<BandOut> = cluster.group_map(
        all,
        |(key, _)| *key,
        move |&(parent, band), items| {
            let spec = specs_groups[&parent];
            let g = spec.g as u32;
            let n = spec.n as u32;
            let h = spec.h;
            let c_left = band * g;
            let c_right = (c_left + g).min(n);
            let mut left: Option<LineInfo> = None;
            let mut right: Option<LineInfo> = None;
            let mut points = Vec::new();
            for (_, item) in items {
                match item {
                    BandItem::Line(l) if l.c == c_left => left = Some(l),
                    BandItem::Line(l) if l.c == c_right => right = Some(l),
                    BandItem::Line(_) => {}
                    BandItem::Point(p) => points.push(p),
                }
            }
            let left = left.expect("left grid line missing for band");
            let right = right.expect("right grid line missing for band");

            // opt at a corner lying on a known grid line: #{q : b_q ≤ row}.
            let opt_on = |line: &LineInfo, row: u32| -> u16 {
                line.b.iter().filter(|&&bq| bq <= row).count() as u16
            };

            // Demarcation line q crosses subgrid (gi, band) iff
            // R_gi < b_q(c_left) and R_{gi+1} ≥ b_q(c_right).
            let band_rows = (n as usize).div_ceil(g as usize) as u32;
            let mut active_rows = std::collections::BTreeSet::new();
            for q in 0..h {
                let b_left = left.b[q];
                let b_right = right.b[q];
                for gi in 0..band_rows {
                    let r_lo = gi * g;
                    let r_hi = (r_lo + g).min(n);
                    if r_lo < b_left && r_hi >= b_right {
                        active_rows.insert(gi);
                    }
                }
            }

            let mut out = Vec::new();
            for &gi in &active_rows {
                out.push(BandOut::Active(ActiveSubgrid {
                    parent,
                    gi,
                    gj: band,
                    base_f: Vec::new(), // filled by `attach_base_f`
                }));
            }
            for p in points {
                let gi = p.row / g;
                let verdict = if active_rows.contains(&gi) {
                    Verdict::Active
                } else if opt_on(&left, gi * g) == p.color {
                    Verdict::Keep
                } else {
                    Verdict::Drop
                };
                out.push(BandOut::Classified(p, verdict));
            }
            out
        },
    );

    let active = cluster.filter(outputs.clone(), |o| matches!(o, BandOut::Active(_)));
    let active = cluster.map(&active, |o| match o {
        BandOut::Active(a) => a.clone(),
        BandOut::Classified(..) => unreachable!(),
    });
    let classified = cluster.filter(outputs, |o| matches!(o, BandOut::Classified(..)));
    let classified = cluster.map(&classified, |o| match o {
        BandOut::Classified(p, v) => (*p, *v),
        BandOut::Active(_) => unreachable!(),
    });
    (active, classified)
}

/// Attaches the corner `F_q` vectors to the active subgrid descriptors.
/// (`process_subgrid` only uses their pairwise differences, but the absolute values
/// are cheap to provide and simplify testing.)
fn attach_base_f(
    cluster: &mut Cluster,
    colored: &DistVec<Colored>,
    active: DistVec<ActiveSubgrid>,
    specs: &HashMap<u64, ParentSpec>,
) -> DistVec<ActiveSubgrid> {
    #[derive(Clone, Debug)]
    enum Item {
        Point(Colored),
        Desc(ActiveSubgrid),
    }
    let pts = cluster.map(colored, |p| Item::Point(*p));
    let ds = cluster.map(&active, |d| Item::Desc(d.clone()));
    let all = cluster.concat(pts, ds);
    let specs = specs.clone();
    cluster.group_map(
        all,
        |item| match item {
            Item::Point(p) => p.inst,
            Item::Desc(d) => d.parent,
        },
        move |&inst, items| {
            let spec = specs[&inst];
            let mut pts = Vec::new();
            let mut descs = Vec::new();
            for item in items {
                match item {
                    Item::Point(p) => pts.push(ColoredPoint {
                        row: p.row,
                        col: p.col,
                        color: p.color,
                    }),
                    Item::Desc(d) => descs.push(d),
                }
            }
            let oracle = MultiwayOracle::new(&pts, spec.h);
            descs
                .into_iter()
                .map(|mut d| {
                    let g = spec.g as u32;
                    d.base_f = oracle.f_vec(d.gi * g, d.gj * g);
                    d
                })
                .collect()
        },
    )
}
