//! The distributed H-way combine (§3.2–§3.3 of the paper).
//!
//! Input: the colored union permutation of every parent instance being combined at
//! this recursion level (each nonzero knows which of the `H` subproblems produced
//! it). Output: the nonzeros of each parent's product matrix.
//!
//! The combine runs in a constant number of primitive rounds per level:
//!
//! 1. **Grid-line phase** — for every vertical grid line `c` (a multiple of `G`)
//!    compute, for every color `q`, the demarcation row `b_q(c) = min{i : opt(i,c) > q}`
//!    (from the pairwise crossovers `cmp(c,q,r)` of §3.2 and the breakpoint
//!    reconstruction in `monge::multiway`). The default [`GridPhase::Tree`]
//!    strategy descends the colored H-ary tree level by level with batched
//!    rank-search packages ([`mpc_runtime::Cluster::rank_search_multi`]); every
//!    machine stays within its space budget and the `O(1)` round bound follows
//!    from the tree height `⌈log_H n⌉ ≤ 10/(1−δ)`.
//! 2. **Classification** — a subgrid crossed by a demarcation line is *active*;
//!    points in non-active subgrids survive iff their color equals the locally
//!    constant `opt` (Lemma 3.10). Each active subgrid is annotated with its
//!    *pierced interval* `[opt(r0,c0), opt(r1,c1)]` — the colors of the
//!    demarcation lines crossing it.
//! 3. **Routing** — with the default [`Routing::Pierced`] strategy (Lemma 3.12)
//!    every active subgrid receives only the union points in its row/column range
//!    whose color lies in its pierced interval, plus the corner `F` vector
//!    restricted to that interval. Colors outside the interval shift every
//!    in-window `F_q` by the same amount anywhere inside the subgrid, so they
//!    cannot change an `opt` comparison and need not travel. The
//!    [`Routing::Bands`] baseline ships the whole row/column ranges (factor-`H`
//!    more routed volume, measured by the ledger's `comm_by_phase`).
//! 4. **Local phase** — each active subgrid is resolved on one machine with
//!    [`monge::multiway::process_subgrid`], emitting the interesting points of
//!    Lemma 3.9 and the surviving union points.

use crate::mul::Nonzero;
use crate::params::{GridPhase, Routing};
use monge::multiway::{
    opt_breakpoints_from_cmp, process_subgrid, ColoredPoint, MultiwayOracle, SubgridInstance,
};
use mpc_runtime::{costs, Cluster, DistVec};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// A nonzero of the union permutation, tagged with its parent instance and color.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Colored {
    /// Parent instance being combined.
    pub inst: u64,
    /// Row of the nonzero in the parent's coordinates.
    pub row: u32,
    /// Column of the nonzero in the parent's coordinates.
    pub col: u32,
    /// Subproblem (color) that produced it.
    pub color: u16,
}

/// Static description of a parent instance participating in a combine.
#[derive(Clone, Copy, Debug)]
pub struct ParentSpec {
    /// Instance id.
    pub inst: u64,
    /// Matrix dimension of the parent.
    pub n: usize,
    /// Number of subproblems (colors) it was split into.
    pub h: usize,
    /// Grid spacing used for this parent.
    pub g: usize,
}

/// Identifies one subgrid of one parent: `(parent, grid row, grid column)`.
type Target = (u64, u32, u32);

/// An active subgrid descriptor produced by the classification phase.
#[derive(Clone, Debug)]
struct ActiveSubgrid {
    parent: u64,
    gi: u32,
    gj: u32,
    /// First color of the pierced interval: `opt` at the upper-left corner.
    wlo: u16,
    /// Last color of the pierced interval: `opt` at the lower-right corner.
    whi: u16,
    /// `F` at the upper-left corner, restricted to colors `wlo..=whi` (relative
    /// values; filled by the attach step).
    base_f: Vec<u64>,
}

/// Verdict of the classification phase for a single union point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verdict {
    /// The point's subgrid has constant `opt` equal to its color: it survives.
    Keep,
    /// Constant `opt` different from its color: it is dropped.
    Drop,
    /// The point lies in an active subgrid; the local phase decides.
    Active,
}

/// Payload routed to the final per-subgrid groups.
#[derive(Clone, Debug)]
enum Payload {
    /// The subgrid descriptor: first window color and the window `F` vector.
    Desc {
        wlo: u16,
        base_f: Vec<u64>,
    },
    RowPt(ColoredPoint),
    ColPt(ColoredPoint),
}

/// Per-line output of the grid phase: the demarcation rows `b_q(c)` for one vertical
/// grid line at column `c`.
#[derive(Clone, Debug)]
struct LineInfo {
    parent: u64,
    /// Grid-line column (a multiple of `G`, or `n`).
    c: u32,
    /// `b[q] = min{i : opt(i, c) > q}` (equal to `n + 1` when demarcation line `q`
    /// never crosses this grid line).
    b: Vec<u32>,
}

/// Runs the distributed combine for all `parents` at once and returns the product
/// nonzeros of every parent.
pub fn distributed_combine(
    cluster: &mut Cluster,
    colored: DistVec<Colored>,
    parents: &[ParentSpec],
    grid_phase: GridPhase,
    routing: Routing,
) -> DistVec<Nonzero> {
    let specs: BTreeMap<u64, ParentSpec> = parents.iter().map(|p| (p.inst, *p)).collect();
    let specs = cluster.broadcast(specs);

    // Phase 1: per-line demarcation rows.
    cluster.set_phase(Some("combine-grid"));
    let lines = match grid_phase {
        GridPhase::Tree => grid_phase_tree(cluster, &colored, &specs),
        GridPhase::Reference => grid_phase_reference(cluster, &colored, &specs),
    };

    // Phase 2: classify points, enumerate active subgrids with their windows.
    cluster.set_phase(Some("combine"));
    let (active, classified) = classify(cluster, &colored, lines, &specs, routing);
    let active = match grid_phase {
        GridPhase::Tree => attach_base_f_tree(cluster, &colored, active, &specs),
        GridPhase::Reference => attach_base_f_reference(cluster, &colored, active, &specs),
    };

    // Points of non-active subgrids that survive (Lemma 3.10, constant case).
    let kept: DistVec<Nonzero> = {
        let kept_points = cluster.filter(classified.clone(), |(_, v)| *v == Verdict::Keep);
        cluster.map(&kept_points, |(p, _)| Nonzero {
            inst: p.inst,
            row: p.row,
            col: p.col,
        })
    };

    // Phase 3: routing.
    cluster.set_phase(Some("combine-route"));
    let points_only = cluster.map(&classified, |(p, _)| *p);
    let row_routed = route_band(cluster, &points_only, &active, &specs, true);
    let col_routed = route_band(cluster, &points_only, &active, &specs, false);
    let descs: DistVec<(Target, Payload)> = cluster.map(&active, |d| {
        (
            (d.parent, d.gi, d.gj),
            Payload::Desc {
                wlo: d.wlo,
                base_f: d.base_f.clone(),
            },
        )
    });
    let all_items = {
        let rc = cluster.concat(row_routed, col_routed);
        cluster.concat(rc, descs)
    };

    // Phase 4: local subgrid resolution (communication-wise this is the routed
    // volume arriving at its target machines, so it stays under "combine-route").
    let specs_local = specs.clone();
    let subgrid_out: DistVec<Nonzero> = cluster.group_map(
        all_items,
        |(target, _)| *target,
        move |&(parent, gi, gj), items| resolve_subgrid(parent, gi, gj, items, &specs_local),
    );

    cluster.set_phase(None::<String>);
    cluster.concat(kept, subgrid_out)
}

/// Routes every point to the active subgrids whose row band (`by_rows = true`) or
/// column band contains it **and** whose pierced color interval contains the
/// point's color. (With [`Routing::Bands`] the classification widens every window
/// to all colors, which turns the filter into a no-op and recovers the baseline.)
///
/// A band may be crossed by a near-flat demarcation line and then contains far
/// more active subgrids than one machine's budget, so the routing never gathers
/// a band. Instead it exploits the monotonicity of the pierced windows along a
/// band (`opt` is nondecreasing in both coordinates, hence so are `wlo` and
/// `whi` in the cross-band index):
///
/// 1. every active subgrid learns its *ordinal* within its band (one rank
///    search over the band's cross-band indices);
/// 2. every point finds the contiguous ordinal range of subgrids whose window
///    contains its color — `[#{whi < color}, #{wlo ≤ color})` (two rank
///    searches);
/// 3. the point multicasts one copy per target ordinal
///    ([`Cluster::flat_map_rebalanced`] — the copies leave balanced, as down a
///    broadcast tree), and one final grouping joins each copy with the subgrid
///    registered under that ordinal, re-addressing it to `(parent, gi, gj)`.
///
/// Every group along the way holds `O(1)` descriptors plus one band's worth of
/// in-window points, so the whole exchange stays within the space budget.
fn route_band(
    cluster: &mut Cluster,
    points: &DistVec<Colored>,
    active: &DistVec<ActiveSubgrid>,
    specs: &BTreeMap<u64, ParentSpec>,
    by_rows: bool,
) -> DistVec<(Target, Payload)> {
    // A descriptor slimmed to plain words: (parent, gi, gj, wlo, whi).
    type Slim = (u64, u32, u32, u16, u16);
    let band = move |gi: u32, gj: u32| if by_rows { gi } else { gj };
    let cross = move |gi: u32, gj: u32| if by_rows { gj } else { gi };

    // Step 1: per-band ordinals for the active subgrids.
    let slim: DistVec<Slim> = cluster.map(active, |d| (d.parent, d.gi, d.gj, d.wlo, d.whi));
    let ordinals: DistVec<(Slim, u64)> = {
        let queries = slim.clone();
        let key =
            move |&(parent, gi, gj, _, _): &Slim| ((parent, band(gi, gj)), cross(gi, gj) as u64);
        cluster.rank_search(&slim, key, queries, key)
    };

    // Step 2: each point's contiguous target-ordinal range [j_lo, j_hi).
    let specs_pt = specs.clone();
    let point_band = move |p: &Colored| -> (u64, u32) {
        let g = specs_pt[&p.inst].g as u32;
        (p.inst, if by_rows { p.row / g } else { p.col / g })
    };
    let pb = point_band.clone();
    let with_lo: DistVec<(Colored, u64)> = cluster.rank_search(
        &slim,
        move |&(parent, gi, gj, _, whi): &Slim| ((parent, band(gi, gj)), whi as u64),
        points.clone(),
        move |p| (pb(p), p.color as u64),
    );
    let pb = point_band.clone();
    let with_range: DistVec<((Colored, u64), u64)> = cluster.rank_search(
        &slim,
        move |&(parent, gi, gj, wlo, _): &Slim| ((parent, band(gi, gj)), wlo as u64),
        with_lo,
        move |(p, _)| (pb(p), p.color as u64 + 1),
    );

    // Step 3: multicast one copy per target ordinal, then join each copy with
    // the subgrid registered under that ordinal.
    #[derive(Clone, Debug)]
    enum Slot {
        /// The subgrid registered at this ordinal: its cross-band identity.
        Reg(u32, u32),
        Pt(Colored),
    }
    let pb = point_band.clone();
    let copies: DistVec<((u64, u32, u64), Slot)> =
        cluster.flat_map_rebalanced(&with_range, move |&((p, j_lo), j_hi)| {
            let (parent, band) = pb(&p);
            (j_lo..j_hi)
                .map(|ordinal| ((parent, band, ordinal), Slot::Pt(p)))
                .collect()
        });
    let regs: DistVec<((u64, u32, u64), Slot)> =
        cluster.map(&ordinals, move |&((parent, gi, gj, _, _), ordinal)| {
            ((parent, band(gi, gj), ordinal), Slot::Reg(gi, gj))
        });
    let both = cluster.concat(regs, copies);
    cluster.group_map_rebalanced(
        both,
        |(key, _)| *key,
        move |&(parent, _, _), items| {
            let mut target = None;
            let mut pts = Vec::new();
            for (_, slot) in items {
                match slot {
                    Slot::Reg(gi, gj) => target = Some((gi, gj)),
                    Slot::Pt(p) => pts.push(p),
                }
            }
            let Some((gi, gj)) = target else {
                debug_assert!(pts.is_empty(), "copies addressed to an empty ordinal");
                return Vec::new();
            };
            pts.into_iter()
                .map(|p| {
                    let cp = ColoredPoint {
                        row: p.row,
                        col: p.col,
                        color: p.color,
                    };
                    let payload = if by_rows {
                        Payload::RowPt(cp)
                    } else {
                        Payload::ColPt(cp)
                    };
                    ((parent, gi, gj), payload)
                })
                .collect()
        },
    )
}

/// Builds a [`SubgridInstance`] from the routed items and resolves it locally.
///
/// The instance lives entirely in *window coordinates*: colors are shifted by the
/// window start `wlo` and the `F` vector covers only the window. Inside the
/// subgrid every `opt` value lies within the window and all out-of-window colors
/// contribute a window-uniform shift, so the argmin comparisons — and hence the
/// emitted nonzeros — are identical to the full-color computation.
fn resolve_subgrid(
    parent: u64,
    gi: u32,
    gj: u32,
    items: Vec<(Target, Payload)>,
    specs: &BTreeMap<u64, ParentSpec>,
) -> Vec<Nonzero> {
    let spec = specs[&parent];
    let g = spec.g as u32;
    let n = spec.n as u32;
    let (r0, c0) = (gi * g, gj * g);
    let (r1, c1) = ((r0 + g).min(n), (c0 + g).min(n));

    let mut wlo = 0u16;
    let mut base_f = Vec::new();
    let mut row_pts = Vec::new();
    let mut col_pts = Vec::new();
    for (_, payload) in items {
        match payload {
            Payload::Desc { wlo: w, base_f: f } => {
                wlo = w;
                base_f = f;
            }
            Payload::RowPt(p) => row_pts.push(p),
            Payload::ColPt(p) => col_pts.push(p),
        }
    }
    assert!(
        !base_f.is_empty(),
        "active subgrid ({parent},{gi},{gj}) was routed without its descriptor"
    );
    let window = base_f.len() as u16;
    let shift = |p: ColoredPoint| -> ColoredPoint {
        debug_assert!(p.color >= wlo && p.color - wlo < window);
        ColoredPoint {
            row: p.row,
            col: p.col,
            color: p.color - wlo,
        }
    };
    let mut row_pts: Vec<ColoredPoint> = row_pts.into_iter().map(shift).collect();
    let mut col_pts: Vec<ColoredPoint> = col_pts.into_iter().map(shift).collect();
    row_pts.sort_unstable_by_key(|p| p.row);
    col_pts.sort_unstable_by_key(|p| p.col);
    let inst = SubgridInstance {
        r0,
        r1,
        c0,
        c1,
        h: base_f.len() as u16,
        base_f,
        row_pts,
        col_pts,
    };
    process_subgrid(&inst)
        .nonzeros
        .into_iter()
        .map(|(row, col)| Nonzero {
            inst: parent,
            row,
            col,
        })
        .collect()
}

// =====================================================================================
// Colored H-ary tree geometry
// =====================================================================================

/// Height of the colored H-ary tree over a parent's rows: the smallest `t ≥ 0`
/// with `h^t ≥ n`. The paper's parameters give `h = n^{(1−δ)/10}`, hence a
/// height of at most `⌈10/(1−δ)⌉ = O(1)`.
fn tree_height(n: usize, h: usize) -> u32 {
    let h = h.max(2);
    let mut height = 0u32;
    let mut cover = 1u64;
    while cover < n as u64 {
        cover = cover.saturating_mul(h as u64);
        height += 1;
    }
    height
}

/// Size of one tree node at level `t` (level 0 is the root covering the padded
/// domain `[0, h^height)`; level `height` nodes are single rows).
fn level_size(n: usize, h: usize, t: u32) -> u64 {
    let h = h.max(2) as u64;
    let height = tree_height(n, h as usize);
    h.saturating_pow(height.saturating_sub(t))
}

/// Decomposes the row prefix `[0, upto)` into maximal aligned tree nodes:
/// returns `(level, node_index)` pairs whose row ranges partition the prefix.
/// At most `(h − 1) · height` nodes. `upto` must lie strictly inside the padded
/// domain `[0, h^height)` (subgrid corners always do: `r0 < n`).
fn prefix_decomposition(upto: u64, n: usize, h: usize) -> Vec<(u32, u64)> {
    let h64 = h.max(2) as u64;
    let height = tree_height(n, h);
    debug_assert!(upto < h64.saturating_pow(height) || height == 0);
    let mut out = Vec::new();
    for t in 1..=height {
        let size = level_size(n, h, t);
        let end = upto / size; // node index just past the prefix at this level
        let d = end % h64; // completed siblings inside the level-(t−1) parent
        for node in (end - d)..end {
            out.push((t, node));
        }
    }
    out
}

// =====================================================================================
// Grid-line phase
// =====================================================================================

/// One pending crossover search `cmp(c, q, r)` descending the tree.
#[derive(Clone, Copy, Debug)]
struct CrossSearch {
    parent: u64,
    /// Grid-line column.
    c: u32,
    q: u16,
    r: u16,
    /// Start of the current tree node (invariant: `δ_{q,r}(lo, c) ≤ 0`).
    lo: u64,
    /// `δ_{q,r}(lo, c)`.
    delta_lo: i64,
}

/// A fully determined crossover value.
#[derive(Clone, Copy, Debug)]
struct ResolvedCmp {
    parent: u64,
    c: u32,
    q: u16,
    r: u16,
    /// `cmp(c, q, r)`: first row with `δ_{q,r} > 0`, or `n + 1`.
    val: u32,
}

/// Work items flowing through the descent.
#[derive(Clone, Copy, Debug)]
enum GridWork {
    Search(CrossSearch),
    Resolved(ResolvedCmp),
}

/// One batched rank-search package of the descent: segment `seg` of `search`'s
/// current node at the current level.
#[derive(Clone, Copy, Debug)]
struct SegPack {
    search: CrossSearch,
    seg: u16,
}

/// A per-line query of the precompute round.
#[derive(Clone, Copy, Debug)]
struct LineQuery {
    parent: u64,
    c: u32,
}

/// The paper's §3.2 grid-line phase: computes every `cmp(c, q, r)` by descending
/// the colored H-ary tree level by level, entirely within the per-machine space
/// budget.
///
/// Each level answers, for every pending search, one batched rank-search package
/// per child segment over the composite key `v = color·(n+1) + col`: the δ
/// increment contributed by a row segment `[a, b)` is exactly
/// `#{v ∈ [q·(n+1)+c, r·(n+1)+c)}` restricted to that segment (a color-`q` point
/// left of the line leaves `T_q`, a color-`r` point left of it leaves `T_r`, and
/// any strictly-between color leaves the `S` sum — each contributing `+1`; all
/// other points cancel). Prefix-summing the segments narrows the search by a
/// factor of `h` per level, so `⌈log_h n⌉` levels — `O(1)` with the paper's
/// fan-out — pin the crossover exactly.
fn grid_phase_tree(
    cluster: &mut Cluster,
    colored: &DistVec<Colored>,
    specs: &BTreeMap<u64, ParentSpec>,
) -> DistVec<LineInfo> {
    let mut parent_ids: Vec<u64> = specs.keys().copied().collect();
    parent_ids.sort_unstable();

    // Precompute round: per line, the color totals and the prefix counts
    // `U_x(c)` that determine δ(0, c) and δ(n, c) for every pair.
    let mut line_queries: Vec<LineQuery> = Vec::new();
    for &pid in &parent_ids {
        for c in line_columns(&specs[&pid]) {
            line_queries.push(LineQuery { parent: pid, c });
        }
    }
    // The line descriptors are O(n/G) metadata; like the input, they start out
    // distributed (no rounds charged).
    let queries = cluster.distribute(line_queries);
    let specs_v = specs.clone();
    let specs_q = specs.clone();
    let answered = cluster.rank_search_multi(
        colored,
        move |p| {
            let w = specs_v[&p.inst].n as u64 + 1;
            (p.inst, p.color as u64 * w + p.col as u64)
        },
        queries,
        move |q| {
            let spec = specs_q[&q.parent];
            let w = spec.n as u64 + 1;
            let mut thresholds = Vec::with_capacity(2 * spec.h + 1);
            for x in 0..spec.h as u64 {
                thresholds.push(x * w);
                thresholds.push(x * w + q.c as u64);
            }
            thresholds.push(spec.h as u64 * w);
            (q.parent, thresholds)
        },
    );
    let specs_init = specs.clone();
    let work: DistVec<GridWork> = cluster.flat_map(&answered, move |(lq, counts)| {
        let spec = specs_init[&lq.parent];
        let (h, n) = (spec.h, spec.n as u32);
        // counts layout: [0·W, 0·W+c, 1·W, 1·W+c, …, (h−1)·W, (h−1)·W+c, h·W].
        let p_at = |x: usize| counts[2 * x] as i64; // Σ_{y<x} n_y
        let u_at = |x: usize| (counts[2 * x + 1] - counts[2 * x]) as i64; // U_x(c)
        let mut pu = vec![0i64; h + 1]; // prefix sums of U
        for x in 0..h {
            pu[x + 1] = pu[x] + u_at(x);
        }
        let mut out = Vec::with_capacity(h * (h - 1) / 2);
        for q in 0..h {
            for r in q + 1..h {
                // δ(n, c) = Σ_{x ∈ (q, r]} U_x(c);  δ(0, c) adds U_q − U_r − Σ_{[q,r)} n_x.
                let delta_n = pu[r + 1] - pu[q + 1];
                let delta_0 = u_at(q) - u_at(r) - (p_at(r) - p_at(q)) + delta_n;
                let item = if delta_n <= 0 {
                    GridWork::Resolved(ResolvedCmp {
                        parent: lq.parent,
                        c: lq.c,
                        q: q as u16,
                        r: r as u16,
                        val: n + 1,
                    })
                } else if delta_0 > 0 {
                    GridWork::Resolved(ResolvedCmp {
                        parent: lq.parent,
                        c: lq.c,
                        q: q as u16,
                        r: r as u16,
                        val: 0,
                    })
                } else {
                    GridWork::Search(CrossSearch {
                        parent: lq.parent,
                        c: lq.c,
                        q: q as u16,
                        r: r as u16,
                        lo: 0,
                        delta_lo: delta_0,
                    })
                };
                out.push(item);
            }
        }
        out
    });
    let mut resolved = {
        let r = cluster.filter(work.clone(), |w| matches!(w, GridWork::Resolved(_)));
        cluster.map(&r, |w| match w {
            GridWork::Resolved(rc) => *rc,
            GridWork::Search(_) => unreachable!(),
        })
    };
    let mut searches = {
        let s = cluster.filter(work, |w| matches!(w, GridWork::Search(_)));
        cluster.map(&s, |w| match w {
            GridWork::Search(s) => *s,
            GridWork::Resolved(_) => unreachable!(),
        })
    };

    // Descent: one batched package exchange plus one regroup per tree level.
    // The loop always runs the full height so that the superstep schedule is a
    // function of the parent specs alone (mirrored by the reference strategy).
    let max_height = grid_tree_levels(specs);
    for t in 1..=max_height {
        // Per-parent geometry of this level, hoisted out of the per-point
        // closures: (node size at level min(t, height), composite stride W).
        let geom: BTreeMap<u64, (u64, u64)> = specs
            .iter()
            .map(|(&pid, spec)| {
                let size = level_size(spec.n, spec.h, t.min(tree_height(spec.n, spec.h)));
                (pid, (size, spec.n as u64 + 1))
            })
            .collect();

        let specs_p = specs.clone();
        let geom_p = geom.clone();
        let packages: DistVec<SegPack> = cluster.flat_map(&searches, move |s| {
            let spec = specs_p[&s.parent];
            let (size, _) = geom_p[&s.parent];
            // Segments entirely inside the padded tail [n, h^height) hold no
            // points and cannot contain the crossover; skip their packages.
            (0..spec.h as u16)
                .filter(|&seg| s.lo + seg as u64 * size < spec.n as u64)
                .map(|seg| SegPack { search: *s, seg })
                .collect()
        });
        let geom_v = geom.clone();
        let geom_k = geom.clone();
        let answered = cluster.rank_search_multi(
            colored,
            move |p| {
                let (size, w) = geom_v[&p.inst];
                (
                    (p.inst, p.row as u64 / size),
                    p.color as u64 * w + p.col as u64,
                )
            },
            packages,
            move |pk| {
                let s = pk.search;
                let (size, w) = geom_k[&s.parent];
                let node = s.lo / size + pk.seg as u64;
                (
                    (s.parent, node),
                    vec![s.q as u64 * w + s.c as u64, s.r as u64 * w + s.c as u64],
                )
            },
        );
        let geom_g = geom.clone();
        let stepped: DistVec<GridWork> = cluster.group_map(
            answered,
            |(pk, _)| {
                let s = pk.search;
                (s.parent, s.c, s.q, s.r)
            },
            move |_, mut packs| {
                packs.sort_unstable_by_key(|(pk, _)| pk.seg);
                let s = packs[0].0.search;
                let (size, _) = geom_g[&s.parent];
                // δ at successive segment boundaries; descend into the first
                // segment whose right boundary turns positive.
                let mut delta = s.delta_lo;
                let mut chosen = None;
                for (pk, counts) in &packs {
                    let contrib = counts[1] as i64 - counts[0] as i64;
                    if delta + contrib > 0 {
                        chosen = Some((pk.seg as u64, delta));
                        break;
                    }
                    delta += contrib;
                }
                let (seg, delta_at) =
                    chosen.expect("δ must turn positive within the node (invariant)");
                let lo = s.lo + seg * size;
                if size == 1 {
                    vec![GridWork::Resolved(ResolvedCmp {
                        parent: s.parent,
                        c: s.c,
                        q: s.q,
                        r: s.r,
                        val: (lo + 1) as u32,
                    })]
                } else {
                    vec![GridWork::Search(CrossSearch {
                        lo,
                        delta_lo: delta_at,
                        ..s
                    })]
                }
            },
        );
        let newly = {
            let r = cluster.filter(stepped.clone(), |w| matches!(w, GridWork::Resolved(_)));
            cluster.map(&r, |w| match w {
                GridWork::Resolved(rc) => *rc,
                GridWork::Search(_) => unreachable!(),
            })
        };
        resolved = cluster.concat(resolved, newly);
        searches = {
            let s = cluster.filter(stepped, |w| matches!(w, GridWork::Search(_)));
            cluster.map(&s, |w| match w {
                GridWork::Search(s) => *s,
                GridWork::Resolved(_) => unreachable!(),
            })
        };
    }
    debug_assert!(searches.is_empty(), "all searches resolve at the leaves");

    // Assemble per-line demarcation rows from the crossover values.
    let specs_l = specs.clone();
    cluster.group_map(
        resolved,
        |rc| (rc.parent, rc.c),
        move |&(parent, _), items| {
            let spec = specs_l[&parent];
            let (h, n) = (spec.h, spec.n as u32);
            let mut cmp = vec![vec![0u32; h]; h];
            debug_assert_eq!(items.len(), h * (h - 1) / 2);
            let c = items[0].c;
            for rc in items {
                cmp[rc.q as usize][rc.r as usize] = rc.val;
            }
            let breakpoints = opt_breakpoints_from_cmp(&cmp, h, n);
            vec![LineInfo {
                parent,
                c,
                b: b_vector(&breakpoints, h, n),
            }]
        },
    )
}

/// The number of descent levels the tree grid phase performs for these parents
/// (also the schedule mirrored by [`grid_phase_reference`]).
fn grid_tree_levels(specs: &BTreeMap<u64, ParentSpec>) -> u32 {
    specs
        .values()
        .map(|s| tree_height(s.n, s.h))
        .max()
        .unwrap_or(0)
}

/// The grid-line columns of a parent: every multiple of `G`, plus `n`.
fn line_columns(spec: &ParentSpec) -> Vec<u32> {
    let n = spec.n as u32;
    let mut columns = Vec::new();
    let mut c = 0u32;
    loop {
        columns.push(c);
        if c >= n {
            break;
        }
        c = (c + spec.g as u32).min(n);
    }
    columns
}

/// Reference grid-line phase: gathers each parent's union permutation on one machine
/// and computes the per-line demarcation rows with the sequential oracle.
///
/// The gather ignores the per-machine space budget for parents larger than `s`
/// (recorded by the ledger as violations — run it on a lenient cluster); the
/// tree strategy computes exactly the same `cmp(c, q, r)` values within the
/// budget. To keep the two strategies round-identical (the documented
/// substitution), this path mirrors the tree descent's superstep schedule.
fn grid_phase_reference(
    cluster: &mut Cluster,
    colored: &DistVec<Colored>,
    specs: &BTreeMap<u64, ParentSpec>,
) -> DistVec<LineInfo> {
    let levels = grid_tree_levels(specs) as u64;
    cluster.charge_rounds(
        "grid_tree_mirror",
        costs::RANK_SEARCH_MULTI + levels * (costs::RANK_SEARCH_MULTI + costs::GROUP_MAP),
    );
    let specs = specs.clone();
    cluster.group_map(
        colored.clone(),
        |p| p.inst,
        move |&inst, points| {
            let spec = specs[&inst];
            let pts: Vec<ColoredPoint> = points
                .iter()
                .map(|p| ColoredPoint {
                    row: p.row,
                    col: p.col,
                    color: p.color,
                })
                .collect();
            let oracle = MultiwayOracle::new(&pts, spec.h);
            grid_lines(&oracle, spec)
        },
    )
}

/// Computes every vertical grid line's demarcation rows from an oracle.
///
/// The grid lines are independent of one another (each needs only the shared,
/// read-only oracle), so the `h²/2` crossover computations of every line run
/// concurrently — this is the §3.2 work the paper spreads over one machine per
/// line, and the dominant local cost of the combine.
fn grid_lines(oracle: &MultiwayOracle, spec: ParentSpec) -> Vec<LineInfo> {
    let n = spec.n as u32;
    let h = spec.h;
    line_columns(&spec)
        .into_par_iter()
        .map(|c| {
            let mut cmp = vec![vec![0u32; h]; h];
            for q in 0..h {
                for r in q + 1..h {
                    cmp[q][r] = oracle.cmp(n, c, q, r);
                }
            }
            let breakpoints = opt_breakpoints_from_cmp(&cmp, h, n);
            LineInfo {
                parent: spec.inst,
                c,
                b: b_vector(&breakpoints, h, n),
            }
        })
        .collect()
}

/// Converts `opt(·, c)` breakpoints into the demarcation rows
/// `b[q] = min{i : opt(i, c) > q}` (or `n + 1` when the line never crosses).
fn b_vector(breakpoints: &[(u32, u16)], h: usize, n: u32) -> Vec<u32> {
    let mut b = vec![n + 1; h];
    if let Some(&(_, first)) = breakpoints.first() {
        for q in 0..first {
            b[q as usize] = 0;
        }
    }
    for window in breakpoints.windows(2) {
        let (_, cur_val) = window[0];
        let (next_start, next_val) = window[1];
        for q in cur_val..next_val {
            b[q as usize] = next_start;
        }
    }
    b
}

/// Classifies points and enumerates active subgrids from the per-line information,
/// annotating every active subgrid with its pierced color interval.
fn classify(
    cluster: &mut Cluster,
    colored: &DistVec<Colored>,
    lines: DistVec<LineInfo>,
    specs: &BTreeMap<u64, ParentSpec>,
    routing: Routing,
) -> (DistVec<ActiveSubgrid>, DistVec<(Colored, Verdict)>) {
    #[derive(Clone, Debug)]
    enum BandItem {
        Line(LineInfo),
        Point(Colored),
    }
    #[derive(Clone, Debug)]
    enum BandOut {
        Active(ActiveSubgrid),
        Classified(Colored, Verdict),
    }

    // A grid line at column c borders the band to its right (if c < n) and the band
    // to its left (if c > 0); replicate it into both groups.
    let specs_lines = specs.clone();
    let line_items = cluster.flat_map(&lines, move |line| {
        let spec = specs_lines[&line.parent];
        let g = spec.g as u32;
        let n = spec.n as u32;
        let mut out = Vec::with_capacity(2);
        if line.c < n {
            out.push(((line.parent, line.c / g), BandItem::Line(line.clone())));
        }
        if line.c > 0 {
            out.push((
                (line.parent, (line.c - 1) / g),
                BandItem::Line(line.clone()),
            ));
        }
        out
    });
    let specs_pts = specs.clone();
    let point_items = cluster.map(colored, move |p| {
        let g = specs_pts[&p.inst].g as u32;
        ((p.inst, p.col / g), BandItem::Point(*p))
    });
    let all = cluster.concat(line_items, point_items);

    // Emission step: a band's verdicts and active-subgrid descriptors are
    // inputs of later supersteps, not residents of the band machine; and one
    // band can enumerate many active subgrids, so the outputs leave rebalanced.
    let specs_groups = specs.clone();
    let outputs: DistVec<BandOut> = cluster.group_map_rebalanced(
        all,
        |(key, _)| *key,
        move |&(parent, band), items| {
            let spec = specs_groups[&parent];
            let g = spec.g as u32;
            let n = spec.n as u32;
            let h = spec.h;
            let c_left = band * g;
            let c_right = (c_left + g).min(n);
            let mut left: Option<LineInfo> = None;
            let mut right: Option<LineInfo> = None;
            let mut points = Vec::new();
            for (_, item) in items {
                match item {
                    BandItem::Line(l) if l.c == c_left => left = Some(l),
                    BandItem::Line(l) if l.c == c_right => right = Some(l),
                    BandItem::Line(_) => {}
                    BandItem::Point(p) => points.push(p),
                }
            }
            let left = left.expect("left grid line missing for band");
            let right = right.expect("right grid line missing for band");

            // opt at a corner lying on a known grid line: #{q : b_q ≤ row}.
            let opt_on = |line: &LineInfo, row: u32| -> u16 {
                line.b.iter().filter(|&&bq| bq <= row).count() as u16
            };

            // Demarcation line q crosses subgrid (gi, band) iff
            // R_gi < b_q(c_left) and R_{gi+1} ≥ b_q(c_right).
            let band_rows = (n as usize).div_ceil(g as usize) as u32;
            let mut active_rows = std::collections::BTreeSet::new();
            for q in 0..h {
                let b_left = left.b[q];
                let b_right = right.b[q];
                for gi in 0..band_rows {
                    let r_lo = gi * g;
                    let r_hi = (r_lo + g).min(n);
                    if r_lo < b_left && r_hi >= b_right {
                        active_rows.insert(gi);
                    }
                }
            }

            let mut out = Vec::new();
            for &gi in &active_rows {
                // The pierced interval: opt at the subgrid's corners. Exactly the
                // lines wlo..whi cross this subgrid.
                let (wlo, whi) = match routing {
                    Routing::Pierced => {
                        let r_lo = gi * g;
                        let r_hi = (r_lo + g).min(n);
                        (opt_on(&left, r_lo), opt_on(&right, r_hi))
                    }
                    Routing::Bands => (0, (h - 1) as u16),
                };
                debug_assert!(wlo < whi || routing == Routing::Bands);
                out.push(BandOut::Active(ActiveSubgrid {
                    parent,
                    gi,
                    gj: band,
                    wlo,
                    whi,
                    base_f: Vec::new(), // filled by the attach step
                }));
            }
            for p in points {
                let gi = p.row / g;
                let verdict = if active_rows.contains(&gi) {
                    Verdict::Active
                } else if opt_on(&left, gi * g) == p.color {
                    Verdict::Keep
                } else {
                    Verdict::Drop
                };
                out.push(BandOut::Classified(p, verdict));
            }
            out
        },
    );

    let active = cluster.filter(outputs.clone(), |o| matches!(o, BandOut::Active(_)));
    let active = cluster.map(&active, |o| match o {
        BandOut::Active(a) => a.clone(),
        BandOut::Classified(..) => unreachable!(),
    });
    let classified = cluster.filter(outputs, |o| matches!(o, BandOut::Classified(..)));
    let classified = cluster.map(&classified, |o| match o {
        BandOut::Classified(p, v) => (*p, *v),
        BandOut::Active(_) => unreachable!(),
    });
    (active, classified)
}

// =====================================================================================
// Corner F vectors
// =====================================================================================

/// One batched rank-search package of the corner-`F` computation: tree node
/// `(level, node)` queried on behalf of one active subgrid.
#[derive(Clone, Debug)]
struct CornerPack {
    parent: u64,
    gi: u32,
    gj: u32,
    wlo: u16,
    whi: u16,
    level: u32,
    node: u64,
}

/// Space-conformant corner `F` vectors: evaluates, for every active subgrid, the
/// window-relative `F_y(r0, c0)` (colors `y ∈ [wlo, whi]`, anchored at
/// `F_{wlo} = 0`) from one batched rank-search over the colored tree levels.
///
/// The decomposition is `F_y(r0, c0) = F_y(0, c0) − Σ_{x<y} |{x, row < r0}| −
/// |{y, row < r0, col < c0}|`, whose window-relative differences need only
/// per-window-color totals `n_y`, prefix counts `U_y(c0)`, and the two row-prefix
/// counts. The row prefix `[0, r0)` splits into `O(h · height)` aligned tree
/// nodes, each answered by one package.
fn attach_base_f_tree(
    cluster: &mut Cluster,
    colored: &DistVec<Colored>,
    active: DistVec<ActiveSubgrid>,
    specs: &BTreeMap<u64, ParentSpec>,
) -> DistVec<ActiveSubgrid> {
    // Every point participates once per tree level (level 0 is the whole row
    // range, answering the global counts): Õ(1) copies — the tree's space cost.
    // Per-parent geometry hoisted out of the per-point closure: the composite
    // stride W and the node size of every level.
    let geom: BTreeMap<u64, (u64, Vec<u64>)> = specs
        .iter()
        .map(|(&pid, spec)| {
            let sizes: Vec<u64> = (0..=tree_height(spec.n, spec.h))
                .map(|t| level_size(spec.n, spec.h, t))
                .collect();
            (pid, (spec.n as u64 + 1, sizes))
        })
        .collect();
    let geom_v = geom.clone();
    // The per-level copies are the tree's Õ(1)-factor space cost; they feed the
    // batched rank search as its value side, so they leave rebalanced rather
    // than piling up (height + 1)-fold beside their source points.
    let leveled: DistVec<((u64, u32, u64), u64)> = cluster.flat_map_rebalanced(colored, move |p| {
        let (w, sizes) = &geom_v[&p.inst];
        let v = p.color as u64 * w + p.col as u64;
        sizes
            .iter()
            .enumerate()
            .map(|(t, &size)| ((p.inst, t as u32, p.row as u64 / size), v))
            .collect()
    });

    let specs_p = specs.clone();
    let packages: DistVec<CornerPack> = cluster.flat_map(&active, move |d| {
        let spec = specs_p[&d.parent];
        let r0 = (d.gi * spec.g as u32) as u64;
        let mut out = vec![CornerPack {
            parent: d.parent,
            gi: d.gi,
            gj: d.gj,
            wlo: d.wlo,
            whi: d.whi,
            level: 0,
            node: 0,
        }];
        for (level, node) in prefix_decomposition(r0, spec.n, spec.h) {
            out.push(CornerPack {
                parent: d.parent,
                gi: d.gi,
                gj: d.gj,
                wlo: d.wlo,
                whi: d.whi,
                level,
                node,
            });
        }
        out
    });

    let specs_q = specs.clone();
    let answered = cluster.rank_search_multi(
        &leveled,
        |(key, v)| (*key, *v),
        packages,
        move |pk| {
            let spec = specs_q[&pk.parent];
            let w = spec.n as u64 + 1;
            let c0 = (pk.gj * spec.g as u32) as u64;
            // Layout per window color y: [y·W, y·W + c0], plus the closing
            // boundary (whi+1)·W for the color totals.
            let mut thresholds = Vec::with_capacity(2 * (pk.whi - pk.wlo) as usize + 3);
            for y in pk.wlo as u64..=pk.whi as u64 {
                thresholds.push(y * w);
                thresholds.push(y * w + c0);
            }
            thresholds.push((pk.whi as u64 + 1) * w);
            ((pk.parent, pk.level, pk.node), thresholds)
        },
    );

    cluster.group_map(
        answered,
        |(pk, _)| (pk.parent, pk.gi, pk.gj),
        |&(parent, gi, gj), packs| {
            let (wlo, whi) = {
                let pk = &packs[0].0;
                (pk.wlo, pk.whi)
            };
            let k = (whi - wlo) as usize;
            // Per window index i (color y = wlo + i): global color-prefix totals
            // and U_y(c0), plus row-prefix counts summed over the decomposition.
            let mut glob: Option<Vec<u64>> = None;
            let mut row_lt = vec![0i64; k + 2]; // Σ decomposition: #{color < y, row < r0} at boundaries
            let mut b_cnt = vec![0i64; k + 1]; // #{color = y, row < r0, col < c0}
            for (pk, counts) in &packs {
                if pk.level == 0 {
                    glob = Some(counts.clone());
                } else {
                    for i in 0..=k {
                        row_lt[i] += counts[2 * i] as i64;
                        b_cnt[i] += counts[2 * i + 1] as i64 - counts[2 * i] as i64;
                    }
                    row_lt[k + 1] += counts[2 * k + 2] as i64;
                }
            }
            let glob = glob.expect("level-0 package present");
            let n_y = |i: usize| -> i64 {
                let hi = if i == k {
                    glob[2 * k + 2]
                } else {
                    glob[2 * (i + 1)]
                };
                hi as i64 - glob[2 * i] as i64
            };
            let u_y = |i: usize| -> i64 { glob[2 * i + 1] as i64 - glob[2 * i] as i64 };
            // #{color = y, row < r0} from the decomposition's color-prefix counts.
            let r_y = |i: usize| -> i64 { row_lt[i + 1] - row_lt[i] };

            // Window-relative F at the corner:
            // F_{y+1} − F_y = n_y − U_y(c0) − #{y, row<r0} − B_{y+1} + B_y.
            // Only differences matter downstream (the local phase is pure argmin
            // comparison), so anchor the vector at its minimum to keep it in u64.
            let mut f = vec![0i64; k + 1];
            for i in 0..k {
                f[i + 1] = f[i] + n_y(i) - u_y(i) - r_y(i) - b_cnt[i + 1] + b_cnt[i];
            }
            let anchor = f.iter().copied().min().unwrap_or(0);
            vec![ActiveSubgrid {
                parent,
                gi,
                gj,
                wlo,
                whi,
                base_f: f.into_iter().map(|v| (v - anchor) as u64).collect(),
            }]
        },
    )
}

/// Reference attach step: gathers each parent's points, builds the sequential
/// oracle, and reads the window slice of `F` at every active corner. Ignores the
/// space budget exactly like [`grid_phase_reference`] (and mirrors the
/// conformant path's superstep schedule).
fn attach_base_f_reference(
    cluster: &mut Cluster,
    colored: &DistVec<Colored>,
    active: DistVec<ActiveSubgrid>,
    specs: &BTreeMap<u64, ParentSpec>,
) -> DistVec<ActiveSubgrid> {
    cluster.charge_rounds(
        "corner_f_tree_mirror",
        costs::MULTICAST + costs::RANK_SEARCH_MULTI,
    );
    #[derive(Clone, Debug)]
    enum Item {
        Point(Colored),
        Desc(ActiveSubgrid),
    }
    let pts = cluster.map(colored, |p| Item::Point(*p));
    let ds = cluster.map(&active, |d| Item::Desc(d.clone()));
    let all = cluster.concat(pts, ds);
    let specs = specs.clone();
    cluster.group_map(
        all,
        |item| match item {
            Item::Point(p) => p.inst,
            Item::Desc(d) => d.parent,
        },
        move |&inst, items| {
            let spec = specs[&inst];
            let mut pts = Vec::new();
            let mut descs = Vec::new();
            for item in items {
                match item {
                    Item::Point(p) => pts.push(ColoredPoint {
                        row: p.row,
                        col: p.col,
                        color: p.color,
                    }),
                    Item::Desc(d) => descs.push(d),
                }
            }
            let oracle = MultiwayOracle::new(&pts, spec.h);
            descs
                .into_iter()
                .map(|mut d| {
                    let g = spec.g as u32;
                    let f = oracle.f_vec(d.gi * g, d.gj * g);
                    d.base_f = f[d.wlo as usize..=d.whi as usize].to_vec();
                    d
                })
                .collect()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_height_covers_the_domain() {
        assert_eq!(tree_height(1, 2), 0);
        assert_eq!(tree_height(2, 2), 1);
        assert_eq!(tree_height(3, 2), 2);
        assert_eq!(tree_height(8, 2), 3);
        assert_eq!(tree_height(9, 2), 4);
        assert_eq!(tree_height(100, 10), 2);
        assert_eq!(tree_height(101, 10), 3);
        for (n, h) in [(5usize, 2usize), (1000, 3), (4096, 16), (77, 9)] {
            let t = tree_height(n, h);
            assert!((h as u64).pow(t) >= n as u64);
            assert!(t == 0 || (h as u64).pow(t - 1) < n as u64);
            assert_eq!(level_size(n, h, t), 1, "leaves are single rows");
        }
    }

    #[test]
    fn prefix_decomposition_partitions_the_prefix() {
        for (n, h) in [(37usize, 2usize), (100, 3), (64, 4), (1000, 10)] {
            for upto in [0u64, 1, 5, (n / 2) as u64, (n - 1) as u64] {
                let nodes = prefix_decomposition(upto, n, h);
                // The ranges must be disjoint and cover exactly [0, upto).
                let mut covered: Vec<(u64, u64)> = nodes
                    .iter()
                    .map(|&(t, node)| {
                        let size = level_size(n, h, t);
                        (node * size, (node + 1) * size)
                    })
                    .collect();
                covered.sort_unstable();
                let mut cursor = 0u64;
                for (start, end) in covered {
                    assert_eq!(
                        start, cursor,
                        "gap in decomposition of [0,{upto}) n={n} h={h}"
                    );
                    cursor = end;
                }
                assert_eq!(cursor, upto, "decomposition must end at {upto}");
                assert!(nodes.len() <= h * tree_height(n, h) as usize);
            }
        }
    }
}
