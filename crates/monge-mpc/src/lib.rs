//! The paper's primary contribution: fully-scalable MPC algorithms for implicit
//! (sub)unit-Monge matrix multiplication, executed on the simulated cluster of
//! `mpc-runtime`.
//!
//! * [`mul`](fn@mul) / [`mul_batch`] — Theorem 1.1: multiply permutation matrices with a
//!   constant number of rounds per recursion level. With the paper's parameters
//!   (`H = n^{(1−δ)/10}`, `G = n^{1−δ}`) the recursion depth is `O(1)`, hence `O(1)`
//!   rounds overall; with `H = 2` the same code becomes the §1.4 warmup baseline
//!   whose depth (and round count) grows as `Θ(log n)`.
//! * [`mul_sub`] — Theorem 1.2: the sub-permutation extension via the §4.1 padding.
//! * [`MulParams`] — the tunables (`H`, `G`, local threshold, grid-phase strategy).
//!
//! The algorithm follows §3 of the paper:
//!
//! 1. **Split** (§3.1): `P_A` is cut into `H` column slices and `P_B` into `H` row
//!    slices; the compacted subproblems are built with `O(1)` rounds of sorting and
//!    rank-relabelling.
//! 2. **Recurse**: all subproblems of all batched instances are solved together,
//!    level by level; a subproblem that fits into one machine's space is solved
//!    locally with the steady-ant kernel.
//! 3. **Combine** (§3.2–3.3): the `H` colored subresults of each instance are merged
//!    in a constant number of rounds — grid-line crossovers (`cmp`, `opt`
//!    breakpoints, demarcation rows `b_q`) computed by descending the colored
//!    H-ary tree with batched rank-search packages, active-subgrid
//!    identification, Lemma 3.12 pierced-interval routing, and the per-subgrid
//!    local phase (`monge::multiway::process_subgrid`).
//!
//! ## Space conformance
//!
//! Two earlier engineering deviations from the paper are **retired**: the §3.2
//! crossover values are now computed by the space-conformant H-ary tree descent
//! ([`GridPhase::Tree`], the default) instead of a per-instance gather, and the
//! §3.3 routing ships the Lemma 3.12 pierced intervals ([`Routing::Pierced`],
//! the default) instead of whole row/column point ranges. With the paper's
//! parameters the whole multiplication runs on a *strict* cluster — one that
//! panics the moment any machine would exceed its `Õ(n^{1−δ})` budget — with
//! zero recorded violations (`tests/mpc_model.rs`,
//! `exp_space`). The old behaviours survive as explicitly-selected baselines
//! for differential testing and ablation: [`GridPhase::Reference`] (gather;
//! identical nonzeros and identical round counts, but budget overshoots
//! recorded by the ledger) and [`Routing::Bands`] (factor-`H` extra routed
//! volume, visible in the ledger's per-phase communication breakdown). Both
//! baselines require [`mpc_runtime::MpcConfig::lenient`] clusters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod combine;
pub mod mul;
pub mod params;
pub mod subperm;

pub use mul::{mul, mul_batch};
pub use params::{GridPhase, MulParams, Routing};
pub use subperm::mul_sub;
