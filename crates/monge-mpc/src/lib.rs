//! The paper's primary contribution: fully-scalable MPC algorithms for implicit
//! (sub)unit-Monge matrix multiplication, executed on the simulated cluster of
//! `mpc-runtime`.
//!
//! * [`mul`](fn@mul) / [`mul_batch`] — Theorem 1.1: multiply permutation matrices with a
//!   constant number of rounds per recursion level. With the paper's parameters
//!   (`H = n^{(1−δ)/10}`, `G = n^{1−δ}`) the recursion depth is `O(1)`, hence `O(1)`
//!   rounds overall; with `H = 2` the same code becomes the §1.4 warmup baseline
//!   whose depth (and round count) grows as `Θ(log n)`.
//! * [`mul_sub`] — Theorem 1.2: the sub-permutation extension via the §4.1 padding.
//! * [`MulParams`] — the tunables (`H`, `G`, local threshold, grid-phase strategy).
//!
//! The algorithm follows §3 of the paper:
//!
//! 1. **Split** (§3.1): `P_A` is cut into `H` column slices and `P_B` into `H` row
//!    slices; the compacted subproblems are built with `O(1)` rounds of sorting and
//!    rank-relabelling.
//! 2. **Recurse**: all subproblems of all batched instances are solved together,
//!    level by level; a subproblem that fits into one machine's space is solved
//!    locally with the steady-ant kernel.
//! 3. **Combine** (§3.2–3.3): the `H` colored subresults of each instance are merged
//!    in a constant number of rounds — grid-line crossovers (`cmp`, `opt`
//!    breakpoints, demarcation rows `b_q`), active-subgrid identification, routing of
//!    row/column point ranges, and the per-subgrid local phase
//!    (`monge::multiway::process_subgrid`).
//!
//! See DESIGN.md §3 for the two places where the engineering deviates from the paper:
//! the §3.2 crossover values are currently computed by a per-instance gather rather
//! than the space-conformant H-ary tree descent (identical values, identical round
//! charges, but the gathering machine transiently exceeds the space budget — the
//! ledger records this), and the §3.3 routing ships whole row/column point ranges
//! instead of the Lemma 3.12 pierced intervals (a factor-`H` relaxation in
//! communication).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod combine;
pub mod mul;
pub mod params;
pub mod subperm;

pub use mul::{mul, mul_batch};
pub use params::{GridPhase, MulParams};
pub use subperm::mul_sub;
