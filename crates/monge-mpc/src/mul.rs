//! The batched MPC multiplication driver (Theorem 1.1).
//!
//! All instances of a batch are processed level by level so that independent
//! subproblems created by the §3.1 split share the same supersteps — exactly how the
//! round bound of the paper is obtained (and how the LIS divide and conquer of
//! `lis-mpc` multiplies many kernels per level in parallel).
//!
//! Per level the driver performs, in `O(1)` primitive rounds:
//!
//! * **local solve** — instances that fit into a machine's space are gathered with
//!   one `group_map` and multiplied with the sequential steady-ant kernel
//!   ([`monge::steady_ant::mul_rows`], which draws its scratch from a per-worker
//!   [`monge::steady_ant::Workspace`] arena, so the whole level's batch — the
//!   per-level merge pairs of `lis-mpc` and the grid phase's batched packages
//!   alike — runs allocation-free after warm-up);
//! * **split** — larger instances are cut into `H` compacted subproblems with one
//!   sort-based rank relabelling (Lemma 2.3/2.5);
//! * on the way back up, **lift** (two sort-based joins restore parent coordinates)
//!   and **combine** (the distributed §3.2/§3.3 merge in `crate::combine`).

use crate::combine::{distributed_combine, Colored, ParentSpec};
use crate::params::MulParams;
use monge::steady_ant;
use monge::PermutationMatrix;
use mpc_runtime::{Cluster, DistVec};
use std::collections::{HashMap, HashSet};

/// A nonzero of an operand or result matrix, tagged with its (batched) instance id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nonzero {
    /// Instance the nonzero belongs to.
    pub inst: u64,
    /// Row index.
    pub row: u32,
    /// Column index.
    pub col: u32,
}

/// Record produced by the split phase before rank-relabelling.
#[derive(Clone, Copy, Debug)]
struct SplitRec {
    /// Child instance the record belongs to.
    child: u64,
    /// Parent coordinate that still needs rank-compaction (row for `P_A` slices,
    /// column for `P_B` slices).
    ranked_coord: u32,
    /// The other coordinate, already translated to child coordinates.
    other_coord: u32,
}

/// Multiplies one pair of permutation matrices on the cluster (`P_C = P_A ⊡ P_B`).
pub fn mul(
    cluster: &mut Cluster,
    a: &PermutationMatrix,
    b: &PermutationMatrix,
    params: &MulParams,
) -> PermutationMatrix {
    mul_batch(cluster, &[(a.clone(), b.clone())], params)
        .pop()
        .expect("one instance in, one result out")
}

/// Multiplies a batch of independent instances, sharing rounds across the batch.
pub fn mul_batch(
    cluster: &mut Cluster,
    instances: &[(PermutationMatrix, PermutationMatrix)],
    params: &MulParams,
) -> Vec<PermutationMatrix> {
    let k = instances.len();
    if k == 0 {
        return Vec::new();
    }
    for (a, b) in instances {
        assert_eq!(a.size(), b.size(), "operands must have equal size");
    }
    let max_n = instances.iter().map(|(a, _)| a.size()).max().unwrap_or(0);
    let rp = params.resolved(cluster.config(), max_n.max(2));

    // Driver-side registry of instance sizes and parentage. The paper keeps the
    // corresponding mappings implicit in the machine layout; here they are O(#sub-
    // problems) metadata, broadcast when needed.
    struct Meta {
        n: usize,
    }
    let mut meta: HashMap<u64, Meta> = HashMap::new();
    let mut child_parent_color: HashMap<u64, (u64, u16)> = HashMap::new();

    let mut a_pts = Vec::new();
    let mut b_pts = Vec::new();
    for (i, (a, b)) in instances.iter().enumerate() {
        let inst = i as u64;
        meta.insert(inst, Meta { n: a.size() });
        a_pts.extend(a.nonzeros().map(|(r, c)| Nonzero {
            inst,
            row: r as u32,
            col: c as u32,
        }));
        b_pts.extend(b.nonzeros().map(|(r, c)| Nonzero {
            inst,
            row: r as u32,
            col: c as u32,
        }));
    }

    let mut a = cluster.distribute(a_pts);
    let mut b = cluster.distribute(b_pts);
    let mut results: DistVec<Nonzero> = cluster.empty();
    let mut frontier: Vec<u64> = (0..k as u64).collect();
    let mut next_id = k as u64;

    /// Everything needed to lift and combine one level on the way back up.
    struct LevelRecord {
        parents: Vec<ParentSpec>,
        children: Vec<u64>,
        row_maps: DistVec<(u64, u32, u32)>, // (child, child_row, parent_row)
        col_maps: DistVec<(u64, u32, u32)>, // (child, child_col, parent_col)
    }
    let mut level_records: Vec<LevelRecord> = Vec::new();

    // ------------------------------------------------------------------ descend
    loop {
        let (small, large): (Vec<u64>, Vec<u64>) = frontier
            .iter()
            .partition(|id| meta[id].n <= rp.local_threshold);

        if !small.is_empty() {
            cluster.set_phase(Some("local-solve"));
            let sizes: HashMap<u64, usize> = small.iter().map(|id| (*id, meta[id].n)).collect();
            let sizes = cluster.broadcast(sizes);
            let in_small = {
                let keys: HashSet<u64> = small.iter().copied().collect();
                cluster.broadcast(keys)
            };
            let a_small = cluster.filter(a.clone(), |p| in_small.contains(&p.inst));
            let b_small = cluster.filter(b.clone(), |p| in_small.contains(&p.inst));
            let a_tagged = cluster.map(&a_small, |p| (false, *p));
            let b_tagged = cluster.map(&b_small, |p| (true, *p));
            let tagged = cluster.concat(a_tagged, b_tagged);
            let solved = cluster.group_map(
                tagged,
                |(_, p)| p.inst,
                move |&inst, items| {
                    let n = sizes[&inst];
                    let mut pa = vec![0u32; n];
                    let mut pb = vec![0u32; n];
                    for (is_b, p) in items {
                        if is_b {
                            pb[p.row as usize] = p.col;
                        } else {
                            pa[p.row as usize] = p.col;
                        }
                    }
                    let pc = steady_ant::mul_rows(&pa, &pb);
                    pc.into_iter()
                        .enumerate()
                        .map(|(r, c)| Nonzero {
                            inst,
                            row: r as u32,
                            col: c,
                        })
                        .collect()
                },
            );
            results = cluster.concat(results, solved);
        }

        if large.is_empty() {
            break;
        }

        // ----------------------------------------------------------------- split
        cluster.set_phase(Some("split"));
        let in_large = {
            let keys: HashSet<u64> = large.iter().copied().collect();
            cluster.broadcast(keys)
        };
        let a_large = cluster.filter(a, |p| in_large.contains(&p.inst));
        let b_large = cluster.filter(b, |p| in_large.contains(&p.inst));

        // Allocate children and slice boundaries.
        let mut parents = Vec::new();
        let mut children = Vec::new();
        let mut bounds_of: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut child_of: HashMap<(u64, u16), u64> = HashMap::new();
        for &p in &large {
            let n_p = meta[&p].n;
            let h_p = rp.h.min(n_p).max(2);
            let bounds: Vec<u32> = (0..=h_p).map(|q| (q * n_p / h_p) as u32).collect();
            for q in 0..h_p {
                let child = next_id;
                next_id += 1;
                let child_n = (bounds[q + 1] - bounds[q]) as usize;
                meta.insert(child, Meta { n: child_n });
                child_parent_color.insert(child, (p, q as u16));
                child_of.insert((p, q as u16), child);
                children.push(child);
            }
            bounds_of.insert(p, bounds);
            parents.push(ParentSpec {
                inst: p,
                n: n_p,
                h: h_p,
                g: rp.g.min(n_p).max(1),
            });
        }
        let bounds_of = cluster.broadcast(bounds_of);
        let child_of = cluster.broadcast(child_of);

        // P_A slices: the column decides the subproblem; rows are rank-compacted.
        let bounds_a = bounds_of.clone();
        let child_a = child_of.clone();
        let a_recs = cluster.map(&a_large, move |p| {
            let bounds = &bounds_a[&p.inst];
            let q = slice_of(bounds, p.col);
            SplitRec {
                child: child_a[&(p.inst, q)],
                ranked_coord: p.row,
                other_coord: p.col - bounds[q as usize],
            }
        });
        let a_ranked = {
            let queries = a_recs.clone();
            cluster.rank_search(
                &a_recs,
                |r| (r.child, r.ranked_coord as u64),
                queries,
                |r| (r.child, r.ranked_coord as u64),
            )
        };
        let a_children = cluster.map(&a_ranked, |(r, rank)| Nonzero {
            inst: r.child,
            row: *rank as u32,
            col: r.other_coord,
        });
        let row_maps = cluster.map(&a_ranked, |(r, rank)| {
            (r.child, *rank as u32, r.ranked_coord)
        });

        // P_B slices: the row decides the subproblem; columns are rank-compacted.
        let bounds_b = bounds_of.clone();
        let child_b = child_of.clone();
        let b_recs = cluster.map(&b_large, move |p| {
            let bounds = &bounds_b[&p.inst];
            let q = slice_of(bounds, p.row);
            SplitRec {
                child: child_b[&(p.inst, q)],
                ranked_coord: p.col,
                other_coord: p.row - bounds[q as usize],
            }
        });
        let b_ranked = {
            let queries = b_recs.clone();
            cluster.rank_search(
                &b_recs,
                |r| (r.child, r.ranked_coord as u64),
                queries,
                |r| (r.child, r.ranked_coord as u64),
            )
        };
        let b_children = cluster.map(&b_ranked, |(r, rank)| Nonzero {
            inst: r.child,
            row: r.other_coord,
            col: *rank as u32,
        });
        let col_maps = cluster.map(&b_ranked, |(r, rank)| {
            (r.child, *rank as u32, r.ranked_coord)
        });

        level_records.push(LevelRecord {
            parents,
            children: children.clone(),
            row_maps,
            col_maps,
        });
        a = a_children;
        b = b_children;
        frontier = children;
    }

    // ------------------------------------------------------------------- unwind
    for record in level_records.into_iter().rev() {
        cluster.set_phase(Some("lift"));
        let child_set: HashSet<u64> = record.children.iter().copied().collect();
        let child_set = cluster.broadcast(child_set);
        let child_products = cluster.filter(results.clone(), |p| child_set.contains(&p.inst));

        // Join 1: restore parent rows.
        #[derive(Clone, Copy, Debug)]
        enum RowJoin {
            Prod(Nonzero),
            Map(u64, u32, u32),
        }
        let prod_items = cluster.map(&child_products, |p| RowJoin::Prod(*p));
        let map_items = cluster.map(&record.row_maps, |&(c, cr, pr)| RowJoin::Map(c, cr, pr));
        let joined = cluster.concat(prod_items, map_items);
        let lifted_rows: DistVec<(u64, u32, u32)> = cluster.group_map(
            joined,
            |item| match item {
                RowJoin::Prod(p) => (p.inst, p.row),
                RowJoin::Map(c, cr, _) => (*c, *cr),
            },
            |&(child, _), items| {
                let mut parent_row = None;
                let mut child_col = None;
                for item in items {
                    match item {
                        RowJoin::Prod(p) => child_col = Some(p.col),
                        RowJoin::Map(_, _, pr) => parent_row = Some(pr),
                    }
                }
                match (parent_row, child_col) {
                    (Some(pr), Some(cc)) => vec![(child, pr, cc)],
                    _ => Vec::new(), // a map record for a row of an instance solved at another level
                }
            },
        );

        // Join 2: restore parent columns and attach parent/color.
        #[derive(Clone, Copy, Debug)]
        enum ColJoin {
            Lifted(u64, u32, u32), // (child, parent_row, child_col)
            Map(u64, u32, u32),    // (child, child_col, parent_col)
        }
        let lifted_items = cluster.map(&lifted_rows, |&(c, pr, cc)| ColJoin::Lifted(c, pr, cc));
        let cmap_items = cluster.map(&record.col_maps, |&(c, cc, pc)| ColJoin::Map(c, cc, pc));
        let joined2 = cluster.concat(lifted_items, cmap_items);
        let parent_color = cluster.broadcast(child_parent_color.clone());
        let colored: DistVec<Colored> = cluster.group_map(
            joined2,
            |item| match item {
                ColJoin::Lifted(c, _, cc) => (*c, *cc),
                ColJoin::Map(c, cc, _) => (*c, *cc),
            },
            move |&(child, _), items| {
                let mut parent_row = None;
                let mut parent_col = None;
                for item in items {
                    match item {
                        ColJoin::Lifted(_, pr, _) => parent_row = Some(pr),
                        ColJoin::Map(_, _, pc) => parent_col = Some(pc),
                    }
                }
                match (parent_row, parent_col) {
                    (Some(row), Some(col)) => {
                        let (parent, color) = parent_color[&child];
                        vec![Colored {
                            inst: parent,
                            row,
                            col,
                            color,
                        }]
                    }
                    _ => Vec::new(),
                }
            },
        );

        let combined =
            distributed_combine(cluster, colored, &record.parents, rp.grid_phase, rp.routing);
        results = cluster.concat(results, combined);
    }

    // ------------------------------------------------------------------ readout
    let all = cluster.collect(results);
    let mut out: Vec<Vec<u32>> = instances
        .iter()
        .map(|(a, _)| vec![u32::MAX; a.size()])
        .collect();
    for nz in all {
        if (nz.inst as usize) < k {
            let slot = &mut out[nz.inst as usize][nz.row as usize];
            debug_assert_eq!(*slot, u32::MAX, "row produced twice");
            *slot = nz.col;
        }
    }
    out.into_iter().map(PermutationMatrix::from_rows).collect()
}

/// Index of the slice (among boundaries `bounds`) containing coordinate `x`.
fn slice_of(bounds: &[u32], x: u32) -> u16 {
    debug_assert!(x < *bounds.last().expect("nonempty bounds"));
    // bounds is short (≤ H+1 entries); a linear scan keeps this branch-predictable.
    let mut q = 0u16;
    while bounds[(q + 1) as usize] <= x {
        q += 1;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GridPhase;
    use mpc_runtime::MpcConfig;
    use rand::prelude::*;

    fn random_permutation(n: usize, rng: &mut StdRng) -> PermutationMatrix {
        let mut v: Vec<u32> = (0..n as u32).collect();
        v.shuffle(rng);
        PermutationMatrix::from_rows(v)
    }

    fn check(n: usize, delta: f64, params: MulParams, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_permutation(n, &mut rng);
        let b = random_permutation(n, &mut rng);
        let expected = steady_ant::mul(&a, &b);
        let mut cluster = Cluster::new(MpcConfig::new(n, delta));
        let got = mul(&mut cluster, &a, &b, &params);
        assert_eq!(got, expected, "n={n} δ={delta} params={params:?}");
    }

    #[test]
    fn local_only_path_matches_sequential() {
        // Instances small enough to fit on one machine exercise only the gather path
        // (the explicit threshold keeps n below it; the default is s/4).
        check(50, 0.5, MulParams::default().with_local_threshold(64), 1);
        check(200, 0.3, MulParams::default(), 2);
    }

    #[test]
    fn forced_recursion_matches_sequential() {
        // A tiny local threshold forces several split/combine levels.
        for &(n, h, thr) in &[
            (64usize, 2usize, 8usize),
            (96, 3, 10),
            (128, 4, 16),
            (200, 5, 12),
        ] {
            check(
                n,
                0.5,
                MulParams::default()
                    .with_h(h)
                    .with_local_threshold(thr)
                    .with_g(7),
                n as u64,
            );
        }
    }

    #[test]
    fn forced_recursion_with_paper_grid() {
        for &n in &[128usize, 256, 300] {
            check(
                n,
                0.5,
                MulParams::default().with_local_threshold(32),
                n as u64 + 7,
            );
        }
    }

    #[test]
    fn warmup_params_match_sequential() {
        check(
            150,
            0.5,
            MulParams::warmup().with_local_threshold(16).with_g(8),
            99,
        );
    }

    #[test]
    fn reference_grid_phase_flag() {
        check(
            120,
            0.4,
            MulParams::default()
                .with_local_threshold(20)
                .with_grid_phase(GridPhase::Reference),
            5,
        );
    }

    #[test]
    fn batch_of_instances_shares_rounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let instances: Vec<_> = (0..6)
            .map(|i| {
                let n = 40 + 10 * i;
                (
                    random_permutation(n, &mut rng),
                    random_permutation(n, &mut rng),
                )
            })
            .collect();
        let mut cluster = Cluster::new(MpcConfig::new(1 << 10, 0.5));
        let params = MulParams::default()
            .with_local_threshold(16)
            .with_h(2)
            .with_g(8);
        let got = mul_batch(&mut cluster, &instances, &params);
        for (i, (a, b)) in instances.iter().enumerate() {
            assert_eq!(got[i], steady_ant::mul(a, b), "instance {i}");
        }
        // All six instances are processed in the same supersteps: the round count is
        // far below six times the single-instance cost.
        let batch_rounds = cluster.rounds();
        let mut single = Cluster::new(MpcConfig::new(1 << 10, 0.5));
        let _ = mul(&mut single, &instances[0].0, &instances[0].1, &params);
        assert!(batch_rounds < 3 * single.rounds().max(1));
    }

    #[test]
    fn rounds_are_constant_per_level() {
        // With the same number of recursion levels, doubling n must not change the
        // round count beyond the tree-descent depth (the heart of Theorem 1.1).
        // The grid phase descends ⌈log_H n⌉ tree levels per combine; with the
        // paper's H = n^{(1−δ)/10} that height is a constant ≤ 10/(1−δ), but this
        // test pins H = 4, so the budget carries the height term explicitly.
        let params = MulParams::default()
            .with_h(4)
            .with_local_threshold(16)
            .with_g(8);
        let mut rounds = Vec::new();
        for &n in &[64usize, 128, 256] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let a = random_permutation(n, &mut rng);
            let b = random_permutation(n, &mut rng);
            let mut cluster = Cluster::new(MpcConfig::new(n, 0.5));
            let _ = mul(&mut cluster, &a, &b, &params);
            let levels = (n as f64 / 16.0).log(4.0).ceil() as u64;
            let height = (n as f64).log(4.0).ceil() as u64;
            rounds.push((cluster.rounds(), levels, height));
        }
        // Rounds per level are bounded by a constant plus the descent supersteps.
        for &(r, levels, height) in &rounds {
            let per_level = 120 + 15 * height;
            assert!(
                r <= per_level * levels.max(1),
                "rounds {r} exceed budget for {levels} levels (height {height})"
            );
        }
    }

    #[test]
    fn identity_and_reverse_edge_cases() {
        let n = 80;
        let id = PermutationMatrix::identity(n);
        let rev = PermutationMatrix::from_rows((0..n as u32).rev().collect());
        for (a, b) in [(&id, &rev), (&rev, &id), (&rev, &rev), (&id, &id)] {
            let expected = steady_ant::mul(a, b);
            let mut cluster = Cluster::new(MpcConfig::new(n, 0.5));
            let params = MulParams::default()
                .with_local_threshold(10)
                .with_h(3)
                .with_g(6);
            assert_eq!(mul(&mut cluster, a, b, &params), expected);
        }
    }

    #[test]
    fn empty_batch() {
        let mut cluster = Cluster::new(MpcConfig::new(16, 0.5));
        assert!(mul_batch(&mut cluster, &[], &MulParams::default()).is_empty());
    }
}
