//! Tunable parameters of the MPC multiplication.

use mpc_runtime::MpcConfig;

/// How the grid-line phase of the combine (§3.2) obtains the pairwise crossovers
/// `cmp(c, q, r)` and the active-subgrid corner values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridPhase {
    /// The paper's data structure: the colored H-ary tree, descended level by level
    /// with batched rank-search packages (`O(1)` rounds because the tree height is
    /// bounded by `10/(1−δ)`).
    Tree,
    /// Reference implementation: each instance's union permutation is gathered on one
    /// machine and the grid quantities are computed there with the sequential oracle.
    /// Produces identical results and identical downstream routing, but the gather
    /// step ignores the space budget (violations are recorded in the ledger).
    /// Used for differential testing and ablation.
    Reference,
}

/// Parameters of [`crate::mul_batch`].
#[derive(Clone, Debug)]
pub struct MulParams {
    /// Fan-out `H` of the §3.1 split. `0` selects the paper's `n^{(1−δ)/10}`
    /// (clamped to at least 2).
    pub h: usize,
    /// Grid spacing `G` of §3.2/3.3. `0` selects the paper's `n^{1−δ}`.
    pub g: usize,
    /// Instances of size at most this are gathered onto one machine and multiplied
    /// with the sequential steady-ant kernel. `0` selects the machine space budget.
    pub local_threshold: usize,
    /// Strategy for the grid-line phase of the combine.
    pub grid_phase: GridPhase,
}

impl Default for MulParams {
    fn default() -> Self {
        Self {
            h: 0,
            g: 0,
            local_threshold: 0,
            grid_phase: GridPhase::Tree,
        }
    }
}

impl MulParams {
    /// The paper's parameter choices for every `0` field, resolved against the
    /// cluster configuration and the instance size `n`.
    pub fn resolved(&self, cfg: &MpcConfig, n: usize) -> ResolvedParams {
        let nf = (n.max(2)) as f64;
        let h = if self.h == 0 {
            (nf.powf((1.0 - cfg.delta) / 10.0).round() as usize).clamp(2, 64)
        } else {
            self.h.max(2)
        };
        let g = if self.g == 0 {
            (nf.powf(1.0 - cfg.delta).ceil() as usize).max(4)
        } else {
            self.g.max(2)
        };
        let local_threshold = if self.local_threshold == 0 {
            cfg.space.max(4)
        } else {
            self.local_threshold
        };
        ResolvedParams {
            h,
            g,
            local_threshold,
            grid_phase: self.grid_phase,
        }
    }

    /// The §1.4 warmup baseline: binary splits, so the recursion depth (and hence
    /// the round count) grows as `Θ(log n)` instead of `O(1)`.
    pub fn warmup() -> Self {
        Self {
            h: 2,
            ..Self::default()
        }
    }

    /// Overrides the fan-out `H`.
    pub fn with_h(mut self, h: usize) -> Self {
        self.h = h;
        self
    }

    /// Overrides the grid spacing `G`.
    pub fn with_g(mut self, g: usize) -> Self {
        self.g = g;
        self
    }

    /// Overrides the local-solve threshold.
    pub fn with_local_threshold(mut self, t: usize) -> Self {
        self.local_threshold = t;
        self
    }

    /// Selects the grid-phase strategy.
    pub fn with_grid_phase(mut self, grid_phase: GridPhase) -> Self {
        self.grid_phase = grid_phase;
        self
    }
}

/// Fully resolved parameters for one instance size.
#[derive(Clone, Copy, Debug)]
pub struct ResolvedParams {
    /// Split fan-out `H`.
    pub h: usize,
    /// Grid spacing `G`.
    pub g: usize,
    /// Gather-and-solve-locally threshold.
    pub local_threshold: usize,
    /// Grid-phase strategy.
    pub grid_phase: GridPhase,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_scale_with_n_and_delta() {
        let cfg = MpcConfig::new(1 << 20, 0.5);
        let p = MulParams::default().resolved(&cfg, 1 << 20);
        assert!(p.h >= 2);
        assert_eq!(p.g, 1 << 10);
        assert_eq!(p.local_threshold, cfg.space);

        let cfg2 = MpcConfig::new(1 << 20, 0.75);
        let p2 = MulParams::default().resolved(&cfg2, 1 << 20);
        assert!(
            p2.g < p.g,
            "larger δ ⇒ smaller per-machine space ⇒ smaller G"
        );
    }

    #[test]
    fn warmup_uses_binary_splits() {
        let cfg = MpcConfig::new(1 << 16, 0.5);
        let p = MulParams::warmup().resolved(&cfg, 1 << 16);
        assert_eq!(p.h, 2);
    }

    #[test]
    fn explicit_overrides_win() {
        let cfg = MpcConfig::new(4096, 0.5);
        let p = MulParams::default()
            .with_h(7)
            .with_g(33)
            .with_local_threshold(10)
            .resolved(&cfg, 4096);
        assert_eq!((p.h, p.g, p.local_threshold), (7, 33, 10));
    }
}
