//! Tunable parameters of the MPC multiplication.

use mpc_runtime::MpcConfig;

/// How the grid-line phase of the combine (§3.2) obtains the pairwise crossovers
/// `cmp(c, q, r)` and the active-subgrid corner values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridPhase {
    /// The paper's data structure: the colored H-ary tree, descended level by level
    /// with batched rank-search packages (`O(1)` rounds because the tree height is
    /// bounded by `10/(1−δ)`).
    Tree,
    /// Reference implementation: each instance's union permutation is gathered on one
    /// machine and the grid quantities are computed there with the sequential oracle.
    /// Produces identical results, identical downstream routing and identical round
    /// charges (it mirrors the tree descent's superstep schedule), but the gather
    /// step ignores the space budget (violations are recorded in the ledger), so it
    /// must run on a [`mpc_runtime::MpcConfig::lenient`] cluster. Used as the
    /// differential-testing oracle and the ablation baseline.
    Reference,
}

/// How the §3.3 routing delivers union points to the active subgrids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Routing {
    /// Lemma 3.12 pierced intervals: an active subgrid receives only the points
    /// whose color lies in `[opt(r0,c0), opt(r1,c1)]` — the interval of demarcation
    /// lines piercing it. Colors outside the interval shift every candidate `F_q`
    /// uniformly inside the subgrid and cannot change any `opt` comparison, so the
    /// output is identical while each point travels to `O(1)` subgrids instead of
    /// every active subgrid in its row/column bands.
    Pierced,
    /// Baseline: ship the whole row/column point ranges to every active subgrid
    /// (a factor-`H` relaxation in routed volume). Kept for ablation; measured by
    /// the ledger's `comm_by_phase["combine-route"]`.
    Bands,
}

/// Parameters of [`crate::mul_batch`].
#[derive(Clone, Debug)]
pub struct MulParams {
    /// Fan-out `H` of the §3.1 split. `0` selects the paper's `n^{(1−δ)/10}`
    /// (clamped to at least 2).
    pub h: usize,
    /// Grid spacing `G` of §3.2/3.3. `0` selects the paper's `n^{1−δ}`.
    pub g: usize,
    /// Instances of size at most this are gathered onto one machine and multiplied
    /// with the sequential steady-ant kernel. `0` selects a quarter of the machine
    /// space budget (a gathered instance stores both operands — `2n` items — and
    /// the greedy packing may co-locate instances, so `s/4` keeps the gather
    /// within the budget on strict clusters).
    pub local_threshold: usize,
    /// Strategy for the grid-line phase of the combine.
    pub grid_phase: GridPhase,
    /// Strategy for the §3.3 routing of the combine.
    pub routing: Routing,
}

impl Default for MulParams {
    fn default() -> Self {
        Self {
            h: 0,
            g: 0,
            local_threshold: 0,
            grid_phase: GridPhase::Tree,
            routing: Routing::Pierced,
        }
    }
}

impl MulParams {
    /// The paper's parameter choices for every `0` field, resolved against the
    /// cluster configuration and the instance size `n`.
    pub fn resolved(&self, cfg: &MpcConfig, n: usize) -> ResolvedParams {
        let nf = (n.max(2)) as f64;
        // The paper's fan-out must be honored exactly: the tree descent's round
        // bound rests on the height `log_H n ≤ 10/(1−δ)`, so `H = n^{(1−δ)/10}`
        // is only floored at the binary split, never capped.
        let h = if self.h == 0 {
            (nf.powf((1.0 - cfg.delta) / 10.0).round() as usize).max(2)
        } else {
            self.h.max(2)
        };
        let g = if self.g == 0 {
            (nf.powf(1.0 - cfg.delta).ceil() as usize).max(4)
        } else {
            self.g.max(2)
        };
        let local_threshold = if self.local_threshold == 0 {
            (cfg.space / 4).max(4)
        } else {
            self.local_threshold
        };
        ResolvedParams {
            h,
            g,
            local_threshold,
            grid_phase: self.grid_phase,
            routing: self.routing,
        }
    }

    /// The §1.4 warmup baseline: binary splits, so the recursion depth (and hence
    /// the round count) grows as `Θ(log n)` instead of `O(1)`.
    pub fn warmup() -> Self {
        Self {
            h: 2,
            ..Self::default()
        }
    }

    /// Overrides the fan-out `H`.
    pub fn with_h(mut self, h: usize) -> Self {
        self.h = h;
        self
    }

    /// Overrides the grid spacing `G`.
    pub fn with_g(mut self, g: usize) -> Self {
        self.g = g;
        self
    }

    /// Overrides the local-solve threshold.
    pub fn with_local_threshold(mut self, t: usize) -> Self {
        self.local_threshold = t;
        self
    }

    /// Selects the grid-phase strategy.
    pub fn with_grid_phase(mut self, grid_phase: GridPhase) -> Self {
        self.grid_phase = grid_phase;
        self
    }

    /// Selects the routing strategy.
    pub fn with_routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }
}

/// Fully resolved parameters for one instance size.
#[derive(Clone, Copy, Debug)]
pub struct ResolvedParams {
    /// Split fan-out `H`.
    pub h: usize,
    /// Grid spacing `G`.
    pub g: usize,
    /// Gather-and-solve-locally threshold.
    pub local_threshold: usize,
    /// Grid-phase strategy.
    pub grid_phase: GridPhase,
    /// Routing strategy.
    pub routing: Routing,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_scale_with_n_and_delta() {
        let cfg = MpcConfig::new(1 << 20, 0.5);
        let p = MulParams::default().resolved(&cfg, 1 << 20);
        assert!(p.h >= 2);
        assert_eq!(p.g, 1 << 10);
        assert_eq!(p.local_threshold, cfg.space / 4);

        let cfg2 = MpcConfig::new(1 << 20, 0.75);
        let p2 = MulParams::default().resolved(&cfg2, 1 << 20);
        assert!(
            p2.g < p.g,
            "larger δ ⇒ smaller per-machine space ⇒ smaller G"
        );
    }

    #[test]
    fn fan_out_is_never_capped() {
        // The tree descent's O(1) height rests on H = n^{(1−δ)/10} being honored,
        // so the resolution must not clamp it from above; at n near usize::MAX and
        // small δ the paper's H exceeds the old ceiling of 64.
        let n = usize::MAX;
        let cfg = MpcConfig::new(n, 0.05);
        let p = MulParams::default().resolved(&cfg, n);
        let expected = ((n as f64).powf((1.0 - 0.05) / 10.0)).round() as usize;
        assert_eq!(p.h, expected.max(2));
        assert!(p.h > 64, "paper fan-out {} must not be capped at 64", p.h);
    }

    #[test]
    fn warmup_uses_binary_splits() {
        let cfg = MpcConfig::new(1 << 16, 0.5);
        let p = MulParams::warmup().resolved(&cfg, 1 << 16);
        assert_eq!(p.h, 2);
    }

    #[test]
    fn explicit_overrides_win() {
        let cfg = MpcConfig::new(4096, 0.5);
        let p = MulParams::default()
            .with_h(7)
            .with_g(33)
            .with_local_threshold(10)
            .resolved(&cfg, 4096);
        assert_eq!((p.h, p.g, p.local_threshold), (7, 33, 10));
    }
}
