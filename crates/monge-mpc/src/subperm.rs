//! Theorem 1.2: the sub-permutation (subunit-Monge) extension.
//!
//! Following §4.1 of the paper, a product of sub-permutation matrices is reduced to a
//! product of permutation matrices by (1) dropping zero rows of `P_A` and zero
//! columns of `P_B`, (2) padding `P_A` with fresh rows in front covering its unused
//! columns and `P_B` with fresh columns at the back covering its unused rows, (3)
//! multiplying the resulting permutation matrices with Theorem 1.1, and (4) reading
//! the answer out of the bottom-left block. The padding only uses prefix sums and
//! sorting, i.e. `O(1)` rounds.

use crate::mul::mul;
use crate::params::MulParams;
use monge::{PermutationMatrix, SubPermutationMatrix};
use mpc_runtime::Cluster;
use rayon::prelude::*;

/// Multiplies two sub-permutation matrices on the cluster
/// (`P_C = P_A ⊡ P_B`, Theorem 1.2).
pub fn mul_sub(
    cluster: &mut Cluster,
    a: &SubPermutationMatrix,
    b: &SubPermutationMatrix,
    params: &MulParams,
) -> SubPermutationMatrix {
    assert_eq!(
        a.cols_len(),
        b.rows_len(),
        "inner dimensions must agree: {}×{} times {}×{}",
        a.rows_len(),
        a.cols_len(),
        b.rows_len(),
        b.cols_len()
    );
    let (n1, n2, n3) = (a.rows_len(), a.cols_len(), b.cols_len());
    if n2 == 0 {
        return SubPermutationMatrix::zero(n1, n3);
    }

    // (1) Compaction: keep nonzero rows of A and nonzero columns of B.
    // (These relabellings are the Lemma 2.3/2.5 sorting steps; they are executed
    // driver-side here because they are simple index arithmetic, and the cluster is
    // charged the corresponding O(1) rounds.)
    cluster.charge_rounds(
        "subperm-compaction",
        mpc_runtime::costs::SORT + mpc_runtime::costs::PREFIX_SUM,
    );

    let kept_rows_a: Vec<usize> = (0..n1).filter(|&r| a.col_of(r).is_some()).collect();
    let mut kept_cols_b: Vec<usize> = (0..n2).filter_map(|r| b.col_of(r)).collect();
    kept_cols_b.sort_unstable();
    let r1 = kept_rows_a.len();
    let r3 = kept_cols_b.len();
    let mut col_rank_b = vec![u32::MAX; n3];
    for (i, &c) in kept_cols_b.iter().enumerate() {
        col_rank_b[c] = i as u32;
    }

    // (2) Padding to n2 × n2 permutation matrices. Both padded vectors are
    // built with the O(1)-round structure the paper prescribes: a (cheap,
    // sequential) prefix count over the empty slots plus an embarrassingly
    // parallel per-row fill — the per-item work runs on the thread pool.
    let mut col_used_a = vec![false; n2];
    for &r in &kept_rows_a {
        col_used_a[a.col_of(r).expect("kept rows are nonzero")] = true;
    }
    let empty_cols_a: Vec<usize> = (0..n2).filter(|&c| !col_used_a[c]).collect();
    let mut pa = Vec::with_capacity(n2);
    pa.extend(empty_cols_a.iter().map(|&c| c as u32));
    pa.extend(
        kept_rows_a
            .par_iter()
            .map(|&r| a.col_of(r).expect("nonzero") as u32)
            .collect::<Vec<u32>>(),
    );

    // Exclusive prefix count of B's empty rows: row r's fresh column (when it
    // has no nonzero) is `r3 + #{empty rows before r}`.
    let mut empty_before_b = Vec::with_capacity(n2);
    let mut empties = 0u32;
    for r in 0..n2 {
        empty_before_b.push(empties);
        if b.col_of(r).is_none() {
            empties += 1;
        }
    }
    let pb: Vec<u32> = (0..n2)
        .into_par_iter()
        .map(|r| match b.col_of(r) {
            Some(c) => col_rank_b[c],
            None => r3 as u32 + empty_before_b[r],
        })
        .collect();

    // (3) Permutation product on the cluster (Theorem 1.1).
    let pc = mul(
        cluster,
        &PermutationMatrix::from_rows(pa),
        &PermutationMatrix::from_rows(pb),
        params,
    );

    // (4) Extract the bottom-left r1 × r3 block and restore the original labels.
    let mut rows = vec![SubPermutationMatrix::NONE; n1];
    for (t, &orig_row) in kept_rows_a.iter().enumerate() {
        let c = pc.col_of((n2 - r1) + t);
        if c < r3 {
            rows[orig_row] = kept_cols_b[c] as u32;
        }
    }
    SubPermutationMatrix::from_rows(rows, n3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monge::dense::mul_dense_sub;
    use mpc_runtime::MpcConfig;
    use rand::prelude::*;

    fn random_sub(
        rows: usize,
        cols: usize,
        density: f64,
        rng: &mut StdRng,
    ) -> SubPermutationMatrix {
        let k = rows.min(cols);
        let keep = (0..k).filter(|_| rng.gen_bool(density)).count();
        let mut rs: Vec<usize> = (0..rows).collect();
        let mut cs: Vec<usize> = (0..cols).collect();
        rs.shuffle(rng);
        cs.shuffle(rng);
        let mut out = vec![SubPermutationMatrix::NONE; rows];
        for i in 0..keep {
            out[rs[i]] = cs[i] as u32;
        }
        SubPermutationMatrix::from_rows(out, cols)
    }

    #[test]
    fn matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..15 {
            let n1 = rng.gen_range(1..25);
            let n2 = rng.gen_range(1..25);
            let n3 = rng.gen_range(1..25);
            let a = random_sub(n1, n2, 0.6, &mut rng);
            let b = random_sub(n2, n3, 0.6, &mut rng);
            let mut cluster = Cluster::new(MpcConfig::new(n2.max(4), 0.5));
            let got = mul_sub(&mut cluster, &a, &b, &MulParams::default());
            assert_eq!(got, mul_dense_sub(&a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn matches_dense_with_forced_recursion() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_sub(60, 80, 0.8, &mut rng);
        let b = random_sub(80, 70, 0.8, &mut rng);
        let mut cluster = Cluster::new(MpcConfig::new(80, 0.5));
        let params = MulParams::default()
            .with_local_threshold(16)
            .with_h(3)
            .with_g(8);
        let got = mul_sub(&mut cluster, &a, &b, &params);
        assert_eq!(got, mul_dense_sub(&a, &b));
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let mut cluster = Cluster::new(MpcConfig::new(16, 0.5));
        let a = SubPermutationMatrix::zero(3, 5);
        let b = SubPermutationMatrix::zero(5, 4);
        let got = mul_sub(&mut cluster, &a, &b, &MulParams::default());
        assert_eq!(got.nonzero_count(), 0);
        assert_eq!((got.rows_len(), got.cols_len()), (3, 4));

        let a0 = SubPermutationMatrix::zero(2, 0);
        let b0 = SubPermutationMatrix::zero(0, 3);
        let got0 = mul_sub(&mut cluster, &a0, &b0, &MulParams::default());
        assert_eq!((got0.rows_len(), got0.cols_len()), (2, 3));
    }

    #[test]
    fn full_permutation_inputs_reduce_to_theorem_1_1() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..40).collect();
        v.shuffle(&mut rng);
        let a = PermutationMatrix::from_rows(v.clone());
        v.shuffle(&mut rng);
        let b = PermutationMatrix::from_rows(v);
        let mut cluster = Cluster::new(MpcConfig::new(40, 0.5));
        let got = mul_sub(
            &mut cluster,
            &a.to_sub(),
            &b.to_sub(),
            &MulParams::default(),
        );
        assert_eq!(got.as_permutation().unwrap(), monge::mul(&a, &b));
    }
}
