//! Dense reference implementation of the implicit (sub)unit-Monge multiplication.
//!
//! `mul_dense` materializes the distribution matrices of both operands, forms the
//! explicit `(min,+)`-product and recovers the resulting (sub-)permutation matrix by
//! finite differences. It runs in `O(n_1 n_2 n_3)` time and `O(n²)` space and exists
//! purely as ground truth for the `O(n log n)` steady-ant algorithm, the H-way combine
//! and the MPC implementations.

use crate::distribution::DistributionMatrix;
use crate::matrix::{PermutationMatrix, SubPermutationMatrix};

/// Reference `(min,+)` product of two sub-permutation matrices
/// (`P_A`: `n1 × n2`, `P_B`: `n2 × n3`), returning the unique sub-permutation matrix
/// `P_C` with `P_C^Σ(i,k) = min_j (P_A^Σ(i,j) + P_B^Σ(j,k))` (Lemma 2.2).
pub fn mul_dense_sub(a: &SubPermutationMatrix, b: &SubPermutationMatrix) -> SubPermutationMatrix {
    assert_eq!(
        a.cols_len(),
        b.rows_len(),
        "inner dimensions must agree: {}×{} times {}×{}",
        a.rows_len(),
        a.cols_len(),
        b.rows_len(),
        b.cols_len()
    );
    let (n1, n2, n3) = (a.rows_len(), a.cols_len(), b.cols_len());
    let da = DistributionMatrix::from_sub_permutation(a);
    let db = DistributionMatrix::from_sub_permutation(b);

    // dc[i][k] = min_j (da[i][j] + db[j][k])
    let mut dc = vec![0u32; (n1 + 1) * (n3 + 1)];
    for i in 0..=n1 {
        for k in 0..=n3 {
            let mut best = u32::MAX;
            for j in 0..=n2 {
                best = best.min(da.get(i, j) + db.get(j, k));
            }
            dc[i * (n3 + 1) + k] = best;
        }
    }

    // Recover P_C by finite differences of the distribution matrix.
    let mut rows = vec![SubPermutationMatrix::NONE; n1];
    let idx = |i: usize, k: usize| i * (n3 + 1) + k;
    for i in 0..n1 {
        for k in 0..n3 {
            let v = i64::from(dc[idx(i, k + 1)]) + i64::from(dc[idx(i + 1, k)])
                - i64::from(dc[idx(i, k)])
                - i64::from(dc[idx(i + 1, k + 1)]);
            debug_assert!(
                (0..=1).contains(&v),
                "product is not subunit-Monge at ({i},{k})"
            );
            if v == 1 {
                assert!(
                    rows[i] == SubPermutationMatrix::NONE,
                    "two nonzeros in row {i} of the product"
                );
                rows[i] = k as u32;
            }
        }
    }
    SubPermutationMatrix::from_rows(rows, n3)
}

/// Reference product specialized to permutation matrices (Lemma 2.1).
pub fn mul_dense(a: &PermutationMatrix, b: &PermutationMatrix) -> PermutationMatrix {
    assert_eq!(
        a.size(),
        b.size(),
        "permutation matrices must have equal size"
    );
    mul_dense_sub(&a.to_sub(), &b.to_sub())
        .as_permutation()
        .expect("product of permutation matrices is a permutation matrix (Lemma 2.1)")
}

/// Explicit `(min,+)` product of the distribution matrices, exposed for tests that
/// want to inspect the full unit-Monge matrix rather than its implicit form.
pub fn min_plus_distribution(a: &DistributionMatrix, b: &DistributionMatrix) -> Vec<Vec<u32>> {
    assert_eq!(a.cols(), b.rows());
    let (n1, n2, n3) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![vec![0u32; n3 + 1]; n1 + 1];
    for (i, row) in out.iter_mut().enumerate() {
        for (k, cell) in row.iter_mut().enumerate() {
            *cell = (0..=n2).map(|j| a.get(i, j) + b.get(j, k)).min().unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let p = PermutationMatrix::from_rows(vec![2, 0, 1]);
        let id = PermutationMatrix::identity(3);
        assert_eq!(mul_dense(&p, &id), p);
        assert_eq!(mul_dense(&id, &p), p);
    }

    #[test]
    fn product_distribution_is_min_plus() {
        // The defining property: P_C^Σ equals the explicit (min,+) product.
        let a = PermutationMatrix::from_rows(vec![1, 3, 0, 2]);
        let b = PermutationMatrix::from_rows(vec![2, 1, 3, 0]);
        let c = mul_dense(&a, &b);
        let da = DistributionMatrix::from_permutation(&a);
        let db = DistributionMatrix::from_permutation(&b);
        let dc = DistributionMatrix::from_permutation(&c);
        let explicit = min_plus_distribution(&da, &db);
        for i in 0..=4 {
            for k in 0..=4 {
                assert_eq!(dc.get(i, k), explicit[i][k], "mismatch at ({i},{k})");
            }
        }
    }

    #[test]
    fn known_small_product() {
        // Reverse ∘ reverse under ⊡: computed by hand via distribution matrices.
        let rev = PermutationMatrix::from_rows(vec![1, 0]);
        let c = mul_dense(&rev, &rev);
        // P_A^Σ = P_B^Σ for the 2×2 reversal; the (min,+) square is the distribution
        // matrix of the identity? Verify against explicit computation instead of a
        // hard-coded guess.
        let da = DistributionMatrix::from_permutation(&rev);
        let explicit = min_plus_distribution(&da, &da);
        let dc = DistributionMatrix::from_permutation(&c);
        for i in 0..=2 {
            for k in 0..=2 {
                assert_eq!(dc.get(i, k), explicit[i][k]);
            }
        }
    }

    #[test]
    fn sub_permutation_product_shapes() {
        let a = SubPermutationMatrix::from_rows(vec![0, SubPermutationMatrix::NONE, 1], 2);
        let b = SubPermutationMatrix::from_rows(vec![3, 1], 4);
        let c = mul_dense_sub(&a, &b);
        assert_eq!(c.rows_len(), 3);
        assert_eq!(c.cols_len(), 4);
        assert!(c.nonzero_count() <= 2);
    }

    #[test]
    fn zero_rows_stay_zero() {
        // A zero row of P_A yields a zero row of the product (used by Theorem 1.2).
        let a = SubPermutationMatrix::from_rows(vec![SubPermutationMatrix::NONE, 0, 1], 2);
        let b = SubPermutationMatrix::from_rows(vec![1, 0], 2);
        let c = mul_dense_sub(&a, &b);
        assert_eq!(c.col_of(0), None);
    }
}
