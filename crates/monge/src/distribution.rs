//! Explicit distribution matrices (unit-Monge matrices).
//!
//! For a matrix `M` of shape `m × n` indexed by half-integers, the paper defines
//!
//! ```text
//! M^Σ(i, j) = Σ_{(î, ĵ) ∈ ⟨i:m⟩ × ⟨0:j⟩} M(î, ĵ)        for i ∈ [0:m], j ∈ [0:n]
//! ```
//!
//! i.e. `M^Σ(i, j)` counts nonzeros strictly *below* row boundary `i` and strictly to
//! the *left* of column boundary `j`. The distribution matrix of a (sub-)permutation
//! matrix is a (sub)unit-Monge matrix. This module materializes distribution matrices
//! explicitly — `O((m+1)(n+1))` space — for use in tests, verification and the dense
//! reference multiplication.

use crate::matrix::{PermutationMatrix, SubPermutationMatrix};

/// A dense `(rows+1) × (cols+1)` distribution matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistributionMatrix {
    rows: usize,
    cols: usize,
    /// Row-major storage, `(rows + 1) * (cols + 1)` entries.
    data: Vec<u32>,
}

impl DistributionMatrix {
    /// Computes the distribution matrix of an arbitrary 0/1 point set given as
    /// `(row, col)` pairs within a `rows × cols` grid.
    pub fn from_points(points: &[(usize, usize)], rows: usize, cols: usize) -> Self {
        // dens[r][c] = 1 if a point occupies cell (r, c).
        let mut dens = vec![0u32; (rows + 1) * (cols + 1)];
        for &(r, c) in points {
            assert!(
                r < rows && c < cols,
                "point ({r},{c}) outside {rows}×{cols} grid"
            );
            dens[r * (cols + 1) + c] += 1;
        }
        // data[i][j] = number of points with row >= i and col < j.
        let mut data = vec![0u32; (rows + 1) * (cols + 1)];
        for i in (0..rows).rev() {
            for j in 1..=cols {
                data[i * (cols + 1) + j] = data[(i + 1) * (cols + 1) + j]
                    + data[i * (cols + 1) + (j - 1)]
                    - data[(i + 1) * (cols + 1) + (j - 1)]
                    + dens[i * (cols + 1) + (j - 1)];
            }
        }
        Self { rows, cols, data }
    }

    /// Distribution matrix of a permutation matrix.
    pub fn from_permutation(p: &PermutationMatrix) -> Self {
        let pts: Vec<_> = p.nonzeros().collect();
        Self::from_points(&pts, p.size(), p.size())
    }

    /// Distribution matrix of a sub-permutation matrix.
    pub fn from_sub_permutation(p: &SubPermutationMatrix) -> Self {
        let pts: Vec<_> = p.nonzeros().collect();
        Self::from_points(&pts, p.rows_len(), p.cols_len())
    }

    /// Number of rows of the underlying point grid.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the underlying point grid.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `M^Σ(i, j)`: nonzeros with row index `> i` and column index `< j`
    /// (half-integer comparison; `i ∈ [0:rows]`, `j ∈ [0:cols]`).
    pub fn get(&self, i: usize, j: usize) -> u32 {
        debug_assert!(i <= self.rows && j <= self.cols);
        self.data[i * (self.cols + 1) + j]
    }

    /// Recovers the implicit (sub-)permutation matrix by finite differences:
    /// `M(î, ĵ) = M^Σ(i, j+1) − M^Σ(i, j) − M^Σ(i+1, j+1) + M^Σ(i+1, j)`.
    pub fn to_sub_permutation(&self) -> SubPermutationMatrix {
        let mut rows = vec![SubPermutationMatrix::NONE; self.rows];
        for i in 0..self.rows {
            for j in 0..self.cols {
                let v = self.get(i, j + 1) + self.get(i + 1, j)
                    - self.get(i, j)
                    - self.get(i + 1, j + 1);
                if v == 1 {
                    assert!(
                        rows[i] == SubPermutationMatrix::NONE,
                        "row {i} has two nonzeros; not a sub-permutation distribution matrix"
                    );
                    rows[i] = j as u32;
                }
            }
        }
        SubPermutationMatrix::from_rows(rows, self.cols)
    }

    /// Checks the Monge condition
    /// `M(i,j) + M(i',j') ≤ M(i,j') + M(i',j)` for all `i ≤ i'`, `j ≤ j'`
    /// on this matrix viewed as a plain matrix. Distribution matrices of
    /// (sub-)permutation matrices satisfy it (they are (sub)unit-Monge).
    pub fn is_monge(&self) -> bool {
        // It suffices to check adjacent 2×2 submatrices.
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = i64::from(self.get(i, j));
                let b = i64::from(self.get(i, j + 1));
                let c = i64::from(self.get(i + 1, j));
                let d = i64::from(self.get(i + 1, j + 1));
                if a + d > b + c {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_distribution() {
        let p = PermutationMatrix::identity(3);
        let d = DistributionMatrix::from_permutation(&p);
        // M^Σ(0, 3) counts every nonzero.
        assert_eq!(d.get(0, 3), 3);
        // Nothing lies left of column boundary 0 or below row boundary n.
        assert_eq!(d.get(0, 0), 0);
        assert_eq!(d.get(3, 3), 0);
        // The single nonzero (0,0) has row > 0? No: row 0+1/2 > 0, col 1/2 < 1.
        assert_eq!(d.get(0, 1), 1);
        assert_eq!(d.get(1, 1), 0);
    }

    #[test]
    fn roundtrip_permutation() {
        let p = PermutationMatrix::from_rows(vec![3, 1, 0, 2]);
        let d = DistributionMatrix::from_permutation(&p);
        assert_eq!(d.to_sub_permutation().as_permutation().unwrap(), p);
    }

    #[test]
    fn roundtrip_sub_permutation() {
        let s = SubPermutationMatrix::from_rows(vec![2, SubPermutationMatrix::NONE, 0], 4);
        let d = DistributionMatrix::from_sub_permutation(&s);
        assert_eq!(d.to_sub_permutation(), s);
    }

    #[test]
    fn distribution_of_permutation_is_monge() {
        let p = PermutationMatrix::from_rows(vec![2, 4, 0, 3, 1]);
        let d = DistributionMatrix::from_permutation(&p);
        assert!(d.is_monge());
    }

    #[test]
    fn count_semantics_matches_direct_count() {
        let p = PermutationMatrix::from_rows(vec![2, 4, 0, 3, 1]);
        let d = DistributionMatrix::from_permutation(&p);
        for i in 0..=5 {
            for j in 0..=5 {
                let direct = p.nonzeros().filter(|&(r, c)| r >= i && c < j).count() as u32;
                assert_eq!(d.get(i, j), direct, "mismatch at ({i},{j})");
            }
        }
    }
}
