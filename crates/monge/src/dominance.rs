//! Two-dimensional dominance counting over static point sets.
//!
//! The semi-local LIS/LCS query structures (and several tests) need counts of the
//! form "how many nonzeros `(r, c)` satisfy `r ≥ r0` and `c < c0`" — exactly the
//! quantity `P^Σ(r0, c0)` of the paper. This module provides:
//!
//! * [`DominanceCounter`] — an online structure (merge-sort tree) answering
//!   arbitrary quadrant counts in `O(log² n)` after `O(n log n)` preprocessing.
//! * [`offline_dominance_count`] — a sort + Fenwick sweep for batched queries,
//!   `O((n + q) log (n + q))` total.

/// Online dominance counting over a fixed set of points (merge-sort tree).
#[derive(Clone, Debug)]
pub struct DominanceCounter {
    /// Points sorted by row; `cols[level]` holds, for each node of the implicit
    /// segment tree over that order, the sorted column values of its range.
    rows: Vec<u32>,
    tree: Vec<Vec<u32>>, // tree[node] = sorted cols of the node's row-range
    size: usize,
}

impl DominanceCounter {
    /// Builds the structure from `(row, col)` points. `O(n log n)`.
    pub fn new(points: &[(u32, u32)]) -> Self {
        let mut pts: Vec<(u32, u32)> = points.to_vec();
        pts.sort_unstable();
        let size = pts.len().next_power_of_two().max(1);
        let mut tree = vec![Vec::new(); 2 * size];
        for (i, &(_, c)) in pts.iter().enumerate() {
            tree[size + i].push(c);
        }
        for node in (1..size).rev() {
            let (left, right) = (2 * node, 2 * node + 1);
            let mut merged = Vec::with_capacity(tree[left].len() + tree[right].len());
            let (mut a, mut b) = (0, 0);
            while a < tree[left].len() || b < tree[right].len() {
                let take_left = b == tree[right].len()
                    || (a < tree[left].len() && tree[left][a] <= tree[right][b]);
                if take_left {
                    merged.push(tree[left][a]);
                    a += 1;
                } else {
                    merged.push(tree[right][b]);
                    b += 1;
                }
            }
            tree[node] = merged;
        }
        Self {
            rows: pts.iter().map(|&(r, _)| r).collect(),
            tree,
            size,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Counts points with `row ≥ row_min` and `col < col_max`
    /// (the paper's `P^Σ(row_min, col_max)` when the points are a matrix's nonzeros).
    pub fn count_row_ge_col_lt(&self, row_min: u32, col_max: u32) -> usize {
        // Points are sorted by row, so the qualifying rows form a suffix.
        let start = self.rows.partition_point(|&r| r < row_min);
        self.count_range_col_lt(start, self.rows.len(), col_max)
    }

    /// Counts points with `row < row_max` and `col < col_max`.
    pub fn count_row_lt_col_lt(&self, row_max: u32, col_max: u32) -> usize {
        let end = self.rows.partition_point(|&r| r < row_max);
        self.count_range_col_lt(0, end, col_max)
    }

    /// Counts points whose rank (in row-sorted order) lies in `[lo, hi)` and whose
    /// column is `< col_max`.
    fn count_range_col_lt(&self, mut lo: usize, mut hi: usize, col_max: u32) -> usize {
        let mut count = 0;
        lo += self.size;
        hi += self.size;
        while lo < hi {
            if lo & 1 == 1 {
                count += self.tree[lo].partition_point(|&c| c < col_max);
                lo += 1;
            }
            if hi & 1 == 1 {
                hi -= 1;
                count += self.tree[hi].partition_point(|&c| c < col_max);
            }
            lo /= 2;
            hi /= 2;
        }
        count
    }
}

/// A query for [`offline_dominance_count`]: count points with `row ≥ row_min` and
/// `col < col_max`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DominanceQuery {
    /// Lower bound (inclusive) on point rows.
    pub row_min: u32,
    /// Upper bound (exclusive) on point columns.
    pub col_max: u32,
}

/// Answers a batch of dominance queries with a single sweep.
/// Returns one count per query, in the input order.
pub fn offline_dominance_count(points: &[(u32, u32)], queries: &[DominanceQuery]) -> Vec<usize> {
    // Sweep rows from high to low, inserting point columns into a Fenwick tree; a
    // query (row_min, col_max) is answered once every point with row ≥ row_min has
    // been inserted.
    let mut pts: Vec<(u32, u32)> = points.to_vec();
    pts.sort_unstable_by_key(|p| std::cmp::Reverse(p.0));
    let mut qs: Vec<(usize, DominanceQuery)> = queries.iter().copied().enumerate().collect();
    qs.sort_unstable_by_key(|q| std::cmp::Reverse(q.1.row_min));

    let max_col = points.iter().map(|&(_, c)| c).max().unwrap_or(0) as usize + 2;
    let mut fenwick = vec![0usize; max_col + 1];
    let add = |fw: &mut Vec<usize>, mut i: usize| {
        i += 1;
        while i < fw.len() {
            fw[i] += 1;
            i += i & i.wrapping_neg();
        }
    };
    let prefix = |fw: &Vec<usize>, mut i: usize| {
        let mut s = 0;
        while i > 0 {
            s += fw[i];
            i -= i & i.wrapping_neg();
        }
        s
    };

    let mut out = vec![0usize; queries.len()];
    let mut next_pt = 0;
    for (orig, q) in qs {
        while next_pt < pts.len() && pts[next_pt].0 >= q.row_min {
            add(&mut fenwick, pts[next_pt].1 as usize);
            next_pt += 1;
        }
        out[orig] = prefix(&fenwick, (q.col_max as usize).min(max_col));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn brute(points: &[(u32, u32)], row_min: u32, col_max: u32) -> usize {
        points
            .iter()
            .filter(|&&(r, c)| r >= row_min && c < col_max)
            .count()
    }

    #[test]
    fn online_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(42);
        let points: Vec<(u32, u32)> = (0..300)
            .map(|_| (rng.gen_range(0..100), rng.gen_range(0..100)))
            .collect();
        let dc = DominanceCounter::new(&points);
        for _ in 0..200 {
            let r = rng.gen_range(0..110);
            let c = rng.gen_range(0..110);
            assert_eq!(dc.count_row_ge_col_lt(r, c), brute(&points, r, c));
            let lt = points.iter().filter(|&&(pr, pc)| pr < r && pc < c).count();
            assert_eq!(dc.count_row_lt_col_lt(r, c), lt);
        }
    }

    #[test]
    fn offline_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(7);
        let points: Vec<(u32, u32)> = (0..500)
            .map(|_| (rng.gen_range(0..64), rng.gen_range(0..64)))
            .collect();
        let queries: Vec<DominanceQuery> = (0..300)
            .map(|_| DominanceQuery {
                row_min: rng.gen_range(0..70),
                col_max: rng.gen_range(0..70),
            })
            .collect();
        let got = offline_dominance_count(&points, &queries);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(got[i], brute(&points, q.row_min, q.col_max), "query {i}");
        }
    }

    #[test]
    fn empty_inputs() {
        let dc = DominanceCounter::new(&[]);
        assert!(dc.is_empty());
        assert_eq!(dc.count_row_ge_col_lt(0, 100), 0);
        assert_eq!(offline_dominance_count(&[], &[]), Vec::<usize>::new());
        assert_eq!(
            offline_dominance_count(
                &[],
                &[DominanceQuery {
                    row_min: 0,
                    col_max: 5
                }]
            ),
            vec![0]
        );
    }
}
