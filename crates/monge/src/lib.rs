//! Sequential core of the unit-Monge / seaweed algebra.
//!
//! This crate implements the objects of Section 2 of Koo, *An Optimal MPC Algorithm for
//! Subunit-Monge Matrix Multiplication, with Applications to LIS* (SPAA 2024), and the
//! sequential algorithms the MPC layer builds on:
//!
//! * [`PermutationMatrix`] and [`SubPermutationMatrix`] — implicit representations of
//!   0/1 matrices with at most one nonzero per row and column, stored as the column
//!   index of the nonzero in each row (the representation used throughout the paper).
//! * [`distribution`] — explicit distribution matrices `P^Σ` (unit-Monge matrices) for
//!   testing and verification.
//! * [`dense`] — a direct `(min,+)` reference implementation of the implicit product
//!   `P_C = P_A ⊡ P_B` (Lemma 2.1 / 2.2), used as ground truth in tests.
//! * [`steady_ant`] — Tiskin's `O(n log n)` divide-and-conquer multiplication, the
//!   sequential baseline and the local kernel run inside a single MPC machine.
//! * [`multiway`] — the H-way combine machinery of Section 3 (the functions
//!   `F_q`, `δ_{q,r}`, `opt`, demarcation lines and interesting points) expressed as
//!   pure, independently testable functions. The MPC layer (`monge-mpc`) reuses them.
//! * [`dominance`] — offline/online 2-D dominance counting used by the semi-local
//!   query structures and by the tests.
//!
//! Everything here is deterministic; the only parallelism is the data-parallel
//! [`steady_ant::mul_batch`] (bit-identical at every thread count) — simulated
//! distributed execution lives in the `mpc-runtime` / `monge-mpc` crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dense;
pub mod distribution;
pub mod dominance;
pub mod matrix;
pub mod multiway;
pub mod steady_ant;
pub mod verify;

pub use dense::mul_dense;
pub use matrix::{PermutationMatrix, SubPermutationMatrix};
pub use steady_ant::mul as mul_steady_ant;
pub use steady_ant::mul_batch as mul_steady_ant_batch;
pub use steady_ant::mul_sub as mul_steady_ant_sub;
pub use steady_ant::Workspace as SteadyAntWorkspace;

/// Convenience alias: multiply two permutation matrices with the production
/// (steady-ant) algorithm.
pub fn mul(a: &PermutationMatrix, b: &PermutationMatrix) -> PermutationMatrix {
    steady_ant::mul(a, b)
}
