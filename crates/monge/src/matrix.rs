//! Implicit representations of permutation and sub-permutation matrices.
//!
//! A (sub-)permutation matrix of size `rows × cols` is a 0/1 matrix with at most one
//! nonzero in every row and column (exactly one for a permutation matrix, which is
//! necessarily square). Following the paper, rows and columns are conceptually indexed
//! by *half-integers* `⟨0:n⟩ = {1/2, 3/2, …, n − 1/2}`; in code we use the 0-based
//! integer `i` to denote the half-integer `i + 1/2`.
//!
//! The implicit representation stores, for every row, the column of its nonzero entry
//! (or [`SubPermutationMatrix::NONE`] when the row is empty). This is the
//! representation Theorem 1.1/1.2 of the paper assume for both inputs and output.

use std::fmt;

/// A permutation matrix of size `n × n`, stored as `col_of_row[i] = j` meaning the
/// single nonzero of row `i + 1/2` lies in column `j + 1/2`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PermutationMatrix {
    col_of_row: Vec<u32>,
}

/// A sub-permutation matrix of size `rows × cols`, stored as the column of the nonzero
/// in each row or [`SubPermutationMatrix::NONE`] for empty rows.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SubPermutationMatrix {
    col_of_row: Vec<u32>,
    cols: usize,
}

impl PermutationMatrix {
    /// Builds a permutation matrix from the column index of each row's nonzero entry.
    ///
    /// # Panics
    /// Panics if `col_of_row` is not a permutation of `0..n`.
    pub fn from_rows(col_of_row: Vec<u32>) -> Self {
        let n = col_of_row.len();
        let mut seen = vec![false; n];
        for &c in &col_of_row {
            assert!(
                (c as usize) < n && !seen[c as usize],
                "from_rows: input is not a permutation of 0..{n}"
            );
            seen[c as usize] = true;
        }
        Self { col_of_row }
    }

    /// Builds a permutation matrix without validating the input.
    ///
    /// The caller must guarantee `col_of_row` is a permutation of `0..n`; all other
    /// methods rely on that invariant. Intended for hot paths that construct
    /// permutations they have already proven valid.
    pub fn from_rows_unchecked(col_of_row: Vec<u32>) -> Self {
        debug_assert!({
            let n = col_of_row.len();
            let mut seen = vec![false; n];
            col_of_row.iter().all(|&c| {
                let ok = (c as usize) < n && !seen[c as usize];
                if ok {
                    seen[c as usize] = true;
                }
                ok
            })
        });
        Self { col_of_row }
    }

    /// The identity permutation matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            col_of_row: (0..n as u32).collect(),
        }
    }

    /// Matrix dimension `n`.
    pub fn size(&self) -> usize {
        self.col_of_row.len()
    }

    /// Returns `true` when the matrix has size zero.
    pub fn is_empty(&self) -> bool {
        self.col_of_row.is_empty()
    }

    /// The column (0-based) holding the nonzero of row `row`.
    pub fn col_of(&self, row: usize) -> usize {
        self.col_of_row[row] as usize
    }

    /// Row-major slice of nonzero columns.
    pub fn rows(&self) -> &[u32] {
        &self.col_of_row
    }

    /// Consumes the matrix and returns the underlying row → column mapping.
    pub fn into_rows(self) -> Vec<u32> {
        self.col_of_row
    }

    /// The inverse permutation matrix (equivalently, the transpose).
    pub fn inverse(&self) -> Self {
        let n = self.size();
        let mut inv = vec![0u32; n];
        for (r, &c) in self.col_of_row.iter().enumerate() {
            inv[c as usize] = r as u32;
        }
        Self { col_of_row: inv }
    }

    /// Iterator over nonzero entries as `(row, col)` pairs.
    pub fn nonzeros(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.col_of_row
            .iter()
            .enumerate()
            .map(|(r, &c)| (r, c as usize))
    }

    /// Value of the matrix at `(row, col)` (0-based half-integer indices).
    pub fn get(&self, row: usize, col: usize) -> u8 {
        u8::from(self.col_of_row[row] as usize == col)
    }

    /// Converts into a [`SubPermutationMatrix`] with the same nonzeros.
    pub fn to_sub(&self) -> SubPermutationMatrix {
        SubPermutationMatrix {
            col_of_row: self.col_of_row.clone(),
            cols: self.size(),
        }
    }
}

impl SubPermutationMatrix {
    /// Sentinel column value marking an empty row.
    pub const NONE: u32 = u32::MAX;

    /// Builds a sub-permutation matrix from per-row columns (use [`Self::NONE`] for
    /// empty rows) and an explicit column count.
    ///
    /// # Panics
    /// Panics if a column index is out of range or repeated.
    pub fn from_rows(col_of_row: Vec<u32>, cols: usize) -> Self {
        let mut seen = vec![false; cols];
        for &c in &col_of_row {
            if c == Self::NONE {
                continue;
            }
            assert!(
                (c as usize) < cols && !seen[c as usize],
                "from_rows: duplicate or out-of-range column {c}"
            );
            seen[c as usize] = true;
        }
        Self { col_of_row, cols }
    }

    /// Builds a sub-permutation matrix without validation (debug-asserted only).
    pub fn from_rows_unchecked(col_of_row: Vec<u32>, cols: usize) -> Self {
        debug_assert!({
            let mut seen = vec![false; cols];
            col_of_row.iter().all(|&c| {
                c == Self::NONE || {
                    let ok = (c as usize) < cols && !seen[c as usize];
                    if ok {
                        seen[c as usize] = true;
                    }
                    ok
                }
            })
        });
        Self { col_of_row, cols }
    }

    /// An all-zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Self {
            col_of_row: vec![Self::NONE; rows],
            cols,
        }
    }

    /// Number of rows.
    pub fn rows_len(&self) -> usize {
        self.col_of_row.len()
    }

    /// Number of columns.
    pub fn cols_len(&self) -> usize {
        self.cols
    }

    /// The column of row `row`'s nonzero, if any.
    pub fn col_of(&self, row: usize) -> Option<usize> {
        match self.col_of_row[row] {
            Self::NONE => None,
            c => Some(c as usize),
        }
    }

    /// Raw row → column slice (with [`Self::NONE`] sentinels).
    pub fn rows(&self) -> &[u32] {
        &self.col_of_row
    }

    /// Number of nonzero entries.
    pub fn nonzero_count(&self) -> usize {
        self.col_of_row.iter().filter(|&&c| c != Self::NONE).count()
    }

    /// Iterator over nonzero entries as `(row, col)`.
    pub fn nonzeros(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.col_of_row
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != Self::NONE)
            .map(|(r, &c)| (r, c as usize))
    }

    /// Value of the matrix at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> u8 {
        u8::from(self.col_of_row[row] != Self::NONE && self.col_of_row[row] as usize == col)
    }

    /// The transpose (rows and columns swapped).
    pub fn transpose(&self) -> Self {
        let mut t = vec![Self::NONE; self.cols];
        for (r, c) in self.nonzeros() {
            t[c] = r as u32;
        }
        Self {
            col_of_row: t,
            cols: self.rows_len(),
        }
    }

    /// Attempts to view this matrix as a full permutation matrix.
    ///
    /// Returns `None` unless the matrix is square with a nonzero in every row.
    pub fn as_permutation(&self) -> Option<PermutationMatrix> {
        if self.rows_len() != self.cols || self.col_of_row.contains(&Self::NONE) {
            return None;
        }
        Some(PermutationMatrix::from_rows(self.col_of_row.clone()))
    }
}

impl fmt::Debug for PermutationMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PermutationMatrix(n={}, rows={:?})",
            self.size(),
            self.col_of_row
        )
    }
}

impl fmt::Debug for SubPermutationMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SubPermutationMatrix({}×{}, rows={:?})",
            self.rows_len(),
            self.cols,
            self.col_of_row
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = PermutationMatrix::identity(5);
        assert_eq!(p.size(), 5);
        for i in 0..5 {
            assert_eq!(p.col_of(i), i);
            assert_eq!(p.get(i, i), 1);
        }
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn inverse_is_involution() {
        let p = PermutationMatrix::from_rows(vec![2, 0, 3, 1]);
        assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn inverse_swaps_rows_and_cols() {
        let p = PermutationMatrix::from_rows(vec![2, 0, 3, 1]);
        let inv = p.inverse();
        for (r, c) in p.nonzeros() {
            assert_eq!(inv.col_of(c), r);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_duplicate_columns() {
        PermutationMatrix::from_rows(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "duplicate or out-of-range")]
    fn sub_rejects_out_of_range() {
        SubPermutationMatrix::from_rows(vec![0, 3], 3);
    }

    #[test]
    fn sub_permutation_basics() {
        let s = SubPermutationMatrix::from_rows(vec![1, SubPermutationMatrix::NONE, 0], 4);
        assert_eq!(s.rows_len(), 3);
        assert_eq!(s.cols_len(), 4);
        assert_eq!(s.nonzero_count(), 2);
        assert_eq!(s.col_of(0), Some(1));
        assert_eq!(s.col_of(1), None);
        assert_eq!(s.get(2, 0), 1);
        assert_eq!(s.get(2, 1), 0);
        assert!(s.as_permutation().is_none());
    }

    #[test]
    fn sub_transpose_roundtrip() {
        let s = SubPermutationMatrix::from_rows(vec![1, SubPermutationMatrix::NONE, 0], 4);
        let t = s.transpose();
        assert_eq!(t.rows_len(), 4);
        assert_eq!(t.cols_len(), 3);
        assert_eq!(t.transpose(), s);
    }

    #[test]
    fn permutation_to_sub_and_back() {
        let p = PermutationMatrix::from_rows(vec![1, 2, 0]);
        let s = p.to_sub();
        assert_eq!(s.as_permutation().unwrap(), p);
    }
}
