//! The H-way combine machinery of Section 3 of the paper, expressed as pure
//! sequential functions.
//!
//! The paper splits `P_A` into `H` column slices and `P_B` into `H` row slices,
//! recursively multiplies the compacted subproblems (`P_{C,q} = P'_{A,q} ⊡ P'_{B,q}`),
//! and then *combines* the `H` results in `O(1)` MPC rounds. The combine is governed by
//!
//! * `F_q(i,j)` — the value the output distribution matrix would take if cell `(i,j)`
//!   took its optimum from subproblem `q` (Lemma 3.2),
//! * `δ_{q,r}(i,j) = F_q(i,j) − F_r(i,j)` — monotone in both coordinates
//!   (Lemmas 3.3/3.4),
//! * `opt(i,j)` — the smallest minimizer, monotone in both coordinates
//!   (Lemmas 3.5/3.6),
//! * *demarcation lines* and *interesting points* (Lemmas 3.7–3.10) which fully
//!   characterize the nonzeros of the product.
//!
//! This module contains:
//!
//! * [`split_into_subproblems`] / [`overlay`] — the §3.1 splitting and the colored
//!   union permutation,
//! * [`MultiwayOracle`] — direct (test-oracle) evaluation of `F_q`, `δ_{q,r}` and
//!   `opt`,
//! * [`opt_breakpoints_from_cmp`] — §3.2's derivation of the `opt(·, c)` step
//!   function from the pairwise crossover rows `cmp(c, q, r)`,
//! * [`SubgridInstance`] / [`process_subgrid`] — §3.3's per-subgrid local phase,
//! * [`combine_multiway`] — a sequential driver wiring the pieces together exactly
//!   the way the MPC implementation (`monge-mpc`) does, used as its ground truth.
//!
//! Colors are 0-based (`0..h`), unlike the paper's 1-based `[H]`.

use crate::dominance::DominanceCounter;
use crate::matrix::PermutationMatrix;

/// A nonzero of the union permutation, tagged with the subproblem (color) it came
/// from (§3.2: "to record the origin of each point, we say p(x̂) is of color i").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColoredPoint {
    /// Row of the nonzero (0-based; denotes the half-integer `row + 1/2`).
    pub row: u32,
    /// Column of the nonzero.
    pub col: u32,
    /// Subproblem index in `0..h`.
    pub color: u16,
}

/// One of the `H` subproblems produced by [`split_into_subproblems`].
#[derive(Clone, Debug)]
pub struct Subproblem {
    /// Compacted left operand `P'_{A,q}` (row → column array).
    pub a: Vec<u32>,
    /// Compacted right operand `P'_{B,q}`.
    pub b: Vec<u32>,
    /// Original rows of `P_A` mapped into this subproblem, in increasing order
    /// (the inverse mapping `M_A⁻¹(q, ·)`).
    pub rows: Vec<u32>,
    /// Original columns of `P_B` mapped into this subproblem, in increasing order
    /// (the inverse mapping `M_B⁻¹(q, ·)`).
    pub cols: Vec<u32>,
}

/// Splits the product instance `(P_A, P_B)` into `h` compacted subproblems as in
/// §3.1: `P_A` is cut into `h` column slices, `P_B` into `h` row slices, and empty
/// rows/columns are removed by rank-relabelling.
pub fn split_into_subproblems(pa: &[u32], pb: &[u32], h: usize) -> Vec<Subproblem> {
    let n = pa.len();
    assert_eq!(n, pb.len());
    assert!(h >= 1 && h <= n.max(1));
    // Boundaries of the middle dimension: slice q covers [bounds[q], bounds[q+1]).
    let bounds: Vec<usize> = (0..=h).map(|q| q * n / h).collect();
    let slice_of = |mid: usize| -> usize {
        // h is small; a linear scan is fine and avoids division edge cases.
        (0..h)
            .find(|&q| mid < bounds[q + 1])
            .expect("value within range")
    };

    let mut subs: Vec<Subproblem> = (0..h)
        .map(|_| Subproblem {
            a: Vec::new(),
            b: Vec::new(),
            rows: Vec::new(),
            cols: Vec::new(),
        })
        .collect();

    // Rows of A, in increasing row order, go to the slice owning their column.
    for (row, &col) in pa.iter().enumerate() {
        let q = slice_of(col as usize);
        subs[q].rows.push(row as u32);
        subs[q].a.push(col - bounds[q] as u32);
    }
    // Rows of B in [bounds[q], bounds[q+1]) form slice q; columns are compacted by rank.
    for q in 0..h {
        let rows_b = &pb[bounds[q]..bounds[q + 1]];
        let mut cols: Vec<u32> = rows_b.to_vec();
        cols.sort_unstable();
        let mut rank = std::collections::HashMap::with_capacity(cols.len());
        for (i, &c) in cols.iter().enumerate() {
            rank.insert(c, i as u32);
        }
        subs[q].b = rows_b.iter().map(|&c| rank[&c]).collect();
        subs[q].cols = cols;
    }
    subs
}

/// Maps the result `P'_{C,q}` of a compacted subproblem back to full-matrix
/// coordinates and tags it with its color, producing that subproblem's contribution
/// to the union permutation.
pub fn lift_subresult(sub: &Subproblem, c_rows: &[u32], color: u16) -> Vec<ColoredPoint> {
    assert_eq!(c_rows.len(), sub.rows.len());
    c_rows
        .iter()
        .enumerate()
        .map(|(r, &c)| ColoredPoint {
            row: sub.rows[r],
            col: sub.cols[c as usize],
            color,
        })
        .collect()
}

/// Concatenates the lifted subresults into the union permutation `p` of §3.2.
/// Panics (in debug builds) if the points do not form a permutation.
pub fn overlay(mut parts: Vec<Vec<ColoredPoint>>) -> Vec<ColoredPoint> {
    let mut all: Vec<ColoredPoint> = parts.drain(..).flatten().collect();
    all.sort_unstable_by_key(|p| p.row);
    debug_assert!(
        all.windows(2).all(|w| w[0].row != w[1].row),
        "duplicate rows in overlay"
    );
    all
}

// ---------------------------------------------------------------------------------
// Oracle evaluation of F_q / δ_{q,r} / opt.
// ---------------------------------------------------------------------------------

/// Direct evaluator for the combine quantities, built from the colored union
/// permutation. Each query costs `O(h log² n)`; intended for tests, the sequential
/// driver and grid-corner computations, not for inner loops.
pub struct MultiwayOracle {
    h: usize,
    /// Per color: dominance counter over that color's points.
    per_color: Vec<DominanceCounter>,
    /// Per color: total number of points (`n_x` in the paper's notation).
    totals: Vec<u64>,
}

impl MultiwayOracle {
    /// Builds the oracle from the union permutation.
    pub fn new(points: &[ColoredPoint], h: usize) -> Self {
        let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); h];
        for p in points {
            buckets[p.color as usize].push((p.row, p.col));
        }
        let totals = buckets.iter().map(|b| b.len() as u64).collect();
        let per_color = buckets.iter().map(|b| DominanceCounter::new(b)).collect();
        Self {
            h,
            per_color,
            totals,
        }
    }

    /// Number of colors.
    pub fn colors(&self) -> usize {
        self.h
    }

    /// Total number of points of color `x` (`n_x`).
    pub fn total(&self, x: usize) -> u64 {
        self.totals[x]
    }

    /// `S_x(i) = P^Σ_{C,x}(i, n)`: points of color `x` with row ≥ `i`.
    pub fn s(&self, x: usize, i: u32) -> u64 {
        self.per_color[x].count_row_ge_col_lt(i, u32::MAX) as u64
    }

    /// `U_x(j) = P^Σ_{C,x}(0, j)`: points of color `x` with column < `j`.
    pub fn u(&self, x: usize, j: u32) -> u64 {
        self.per_color[x].count_row_ge_col_lt(0, j) as u64
    }

    /// `T_q(i, j) = P^Σ_{C,q}(i, j)`: points of color `q` with row ≥ `i`, column < `j`.
    pub fn t(&self, q: usize, i: u32, j: u32) -> u64 {
        self.per_color[q].count_row_ge_col_lt(i, j) as u64
    }

    /// `F_q(i, j)` of Lemma 3.2 (0-based `q`).
    pub fn f(&self, q: usize, i: u32, j: u32) -> u64 {
        let before: u64 = (0..q).map(|x| self.s(x, i)).sum();
        let after: u64 = (q + 1..self.h).map(|x| self.u(x, j)).sum();
        before + self.t(q, i, j) + after
    }

    /// Vector of `F_q(i,j)` for all colors.
    pub fn f_vec(&self, i: u32, j: u32) -> Vec<u64> {
        // Shares the prefix/suffix sums across colors: O(h log n).
        let s: Vec<u64> = (0..self.h).map(|x| self.s(x, i)).collect();
        let u: Vec<u64> = (0..self.h).map(|x| self.u(x, j)).collect();
        let mut prefix_s = 0u64;
        let mut suffix_u: Vec<u64> = vec![0; self.h + 1];
        for x in (0..self.h).rev() {
            suffix_u[x] = suffix_u[x + 1] + u[x];
        }
        (0..self.h)
            .map(|q| {
                let val = prefix_s + self.t(q, i, j) + suffix_u[q + 1];
                prefix_s += s[q];
                val
            })
            .collect()
    }

    /// `δ_{q,r}(i,j) = F_q(i,j) − F_r(i,j)` for `q < r`.
    pub fn delta(&self, q: usize, r: usize, i: u32, j: u32) -> i64 {
        self.f(q, i, j) as i64 - self.f(r, i, j) as i64
    }

    /// `opt(i,j)`: the smallest color attaining the minimum of `F_·(i,j)`.
    pub fn opt(&self, i: u32, j: u32) -> u16 {
        let f = self.f_vec(i, j);
        let mut best = 0usize;
        for (q, &v) in f.iter().enumerate() {
            if v < f[best] {
                best = q;
            }
        }
        best as u16
    }

    /// `cmp(c, q, r)`: the first row `i` with `δ_{q,r}(i, c) > 0`, or `n + 1` when no
    /// such row exists (§3.2). Computed by binary search over the monotone `δ`.
    pub fn cmp(&self, n: u32, c: u32, q: usize, r: usize) -> u32 {
        if self.delta(q, r, n, c) <= 0 {
            return n + 1;
        }
        // Invariant: delta(lo) ≤ 0 < delta(hi).
        let (mut lo, mut hi) = (0u32, n);
        if self.delta(q, r, 0, c) > 0 {
            return 0;
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.delta(q, r, mid, c) > 0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

// ---------------------------------------------------------------------------------
// opt(·, c) step function from pairwise crossovers (§3.2).
// ---------------------------------------------------------------------------------

/// Given all pairwise crossovers `cmp(c, q, r)` for a fixed column `c` (entry
/// `cmp[q][r]`, only `q < r` used), reconstructs the step function `opt(·, c)` as
/// breakpoints `(start_row, value)`: `opt(i, c) = value` for `i ∈ [start_row, next)`.
///
/// `opt(i, c) = q` iff `i ≥ cmp(c, p, q)` for every `p < q` and `i < cmp(c, q, r)`
/// for every `r > q`; the step function can only change at one of the crossover rows.
pub fn opt_breakpoints_from_cmp(cmp: &[Vec<u32>], h: usize, n: u32) -> Vec<(u32, u16)> {
    let opt_at = |i: u32| -> u16 {
        'outer: for q in 0..h {
            for p in 0..q {
                if i < cmp[p][q] {
                    continue 'outer; // F_p ≤ F_q: q is not the smallest minimizer
                }
            }
            for r in q + 1..h {
                if i >= cmp[q][r] {
                    continue 'outer; // F_r < F_q
                }
            }
            return q as u16;
        }
        unreachable!("some color must attain the minimum")
    };

    let mut candidates: Vec<u32> = vec![0];
    for q in 0..h {
        for r in q + 1..h {
            if cmp[q][r] <= n {
                candidates.push(cmp[q][r]);
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();

    let mut breakpoints: Vec<(u32, u16)> = Vec::new();
    for &row in &candidates {
        let v = opt_at(row);
        if breakpoints.last().map(|&(_, last)| last) != Some(v) {
            breakpoints.push((row, v));
        }
    }
    breakpoints
}

/// Looks up a step function given as breakpoints `(start, value)` sorted by start.
pub fn step_lookup(breakpoints: &[(u32, u16)], at: u32) -> u16 {
    let idx = breakpoints.partition_point(|&(start, _)| start <= at);
    assert!(idx > 0, "lookup before the first breakpoint");
    breakpoints[idx - 1].1
}

// ---------------------------------------------------------------------------------
// Subgrid-local phase (§3.3).
// ---------------------------------------------------------------------------------

/// All data a single machine needs to resolve one active subgrid: the absolute
/// `F_q` values at the subgrid's upper-left corner plus every union point in the
/// subgrid's row range and column range. (See DESIGN.md for how this relates to the
/// paper's tighter Lemma 3.12 routing.)
#[derive(Clone, Debug)]
pub struct SubgridInstance {
    /// First block row of the subgrid (inclusive).
    pub r0: u32,
    /// Last corner row of the subgrid (blocks cover `[r0, r1)`).
    pub r1: u32,
    /// First block column (inclusive).
    pub c0: u32,
    /// Last corner column (blocks cover `[c0, c1)`).
    pub c1: u32,
    /// Number of colors.
    pub h: u16,
    /// `F_q(r0, c0)` for every color `q`.
    pub base_f: Vec<u64>,
    /// Union points with `row ∈ [r0, r1)` (any column), sorted by row.
    pub row_pts: Vec<ColoredPoint>,
    /// Union points with `col ∈ [c0, c1)` (any row), sorted by column.
    pub col_pts: Vec<ColoredPoint>,
}

/// Nonzeros of `P_C` contributed by one subgrid: the interesting points of
/// Lemma 3.9 plus the union points of Lemma 3.10 that survive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SubgridOutput {
    /// `(row, col)` nonzeros of the product whose block lies in this subgrid.
    pub nonzeros: Vec<(u32, u32)>,
}

/// Internal: evaluator for `F_·(i, j)` restricted to a subgrid, supporting the
/// incremental updates used by the demarcation-line traces.
struct LocalF<'a> {
    inst: &'a SubgridInstance,
    /// Current evaluation point.
    row: u32,
    col: u32,
    /// Current `F_q(row, col)` for all q.
    f: Vec<i64>,
    /// row_pts indexed by row offset (row - r0) → (col, color); at most one per row.
    pt_in_row: Vec<Option<(u32, u16)>>,
    /// col_pts indexed by col offset (col - c0) → (row, color); at most one per col.
    pt_in_col: Vec<Option<(u32, u16)>>,
}

impl<'a> LocalF<'a> {
    fn new(inst: &'a SubgridInstance) -> Self {
        let rows = (inst.r1 - inst.r0) as usize;
        let cols = (inst.c1 - inst.c0) as usize;
        let mut pt_in_row = vec![None; rows];
        for p in &inst.row_pts {
            pt_in_row[(p.row - inst.r0) as usize] = Some((p.col, p.color));
        }
        let mut pt_in_col = vec![None; cols];
        for p in &inst.col_pts {
            pt_in_col[(p.col - inst.c0) as usize] = Some((p.row, p.color));
        }
        Self {
            inst,
            row: inst.r0,
            col: inst.c0,
            f: inst.base_f.iter().map(|&v| v as i64).collect(),
            pt_in_row,
            pt_in_col,
        }
    }

    /// Moves the evaluation point one row down (`row → row + 1`).
    fn move_down(&mut self) {
        debug_assert!(self.row < self.inst.r1);
        // The point in the row we just passed (row index `self.row`) now has
        // row < i: it leaves the S_x suffix counts and the T_q terms.
        if let Some((pcol, pcolor)) = self.pt_in_row[(self.row - self.inst.r0) as usize] {
            let x0 = pcolor as usize;
            // S-term: F_q for q > x0 loses one unit of S_{x0} → F_q decreases? No:
            // F_q contains +Σ_{x<q} S_x(i); S_{x0}(i) drops by 1 when i passes the
            // point's row, so F_q decreases by 1 for q > x0.
            for q in x0 + 1..self.inst.h as usize {
                self.f[q] -= 1;
            }
            // T-term of color x0: T_{x0}(i, j) counts row ≥ i, col < j; the point
            // leaves the count if its column is < current j.
            if pcol < self.col {
                self.f[x0] -= 1;
            }
        }
        self.row += 1;
    }

    /// Moves the evaluation point one column right (`col → col + 1`).
    fn move_right(&mut self) {
        debug_assert!(self.col < self.inst.c1);
        // The point in the column we just passed now has col < j: it enters the
        // U_x prefix counts and possibly the T_q term.
        if let Some((prow, pcolor)) = self.pt_in_col[(self.col - self.inst.c0) as usize] {
            let x0 = pcolor as usize;
            // U-term: F_q for q < x0 gains one unit of U_{x0}.
            for q in 0..x0 {
                self.f[q] += 1;
            }
            // T-term of color x0: gains the point if its row is ≥ current i.
            if prow >= self.row {
                self.f[x0] += 1;
            }
        }
        self.col += 1;
    }

    /// `opt` at the current evaluation point.
    fn opt(&self) -> u16 {
        let mut best = 0usize;
        for (q, &v) in self.f.iter().enumerate() {
            if v < self.f[best] {
                best = q;
            }
        }
        best as u16
    }

    /// Would `opt ≤ q` still hold after a `move_right`? (Non-destructive peek.)
    fn opt_le_after_right(&self, q: u16) -> bool {
        let mut f = self.f.clone();
        if let Some((prow, pcolor)) = self.pt_in_col[(self.col - self.inst.c0) as usize] {
            let x0 = pcolor as usize;
            for fq in f.iter_mut().take(x0) {
                *fq += 1;
            }
            if prow >= self.row {
                f[x0] += 1;
            }
        }
        opt_of(&f) <= q
    }
}

/// Smallest minimizer of an `F` vector.
fn opt_of(f: &[i64]) -> u16 {
    let mut best = 0usize;
    for (q, &v) in f.iter().enumerate() {
        if v < f[best] {
            best = q;
        }
    }
    best as u16
}

/// Resolves one active subgrid: returns every nonzero of `P_C` whose block lies in
/// `[r0, r1) × [c0, c1)`.
///
/// The implementation traces, for every demarcation line `q` crossing the subgrid,
/// the per-row boundary `maxcol_q[i] = max {j : opt(i, j) ≤ q}` (clamped to the
/// subgrid), then
///
/// * reports a block `(i, j)` as *interesting* (Lemma 3.9) when
///   `maxcol_a[i+1] = j`, `j+1 ≤ maxcol_a[i]` and `j > maxcol_{a−1}[i]`, and
/// * keeps a union point of color `x` at block `(i, j)` (Lemma 3.10) iff
///   `j > maxcol_{x−1}[i]` and `j + 1 ≤ maxcol_x[i+1]`.
pub fn process_subgrid(inst: &SubgridInstance) -> SubgridOutput {
    let rows = (inst.r1 - inst.r0) as usize; // number of block rows
    debug_assert!(rows >= 1 && inst.c1 > inst.c0);

    // Corner opt values determine which demarcation lines cross the subgrid.
    let q_lo = {
        let local = LocalF::new(inst);
        local.opt()
    };
    let q_hi = {
        let mut local = LocalF::new(inst);
        for _ in inst.r0..inst.r1 {
            local.move_down();
        }
        for _ in inst.c0..inst.c1 {
            local.move_right();
        }
        local.opt()
    };
    debug_assert!(q_lo <= q_hi);

    // maxcol[q] for traced q ∈ [q_lo, q_hi); other colors are constant:
    // q < q_lo → entirely left of the subgrid (−∞), q ≥ q_hi → entirely right (+∞).
    let below = i64::from(inst.c0) - 1;
    let above = i64::from(inst.c1);
    let mut traced: Vec<Vec<i64>> = Vec::new();
    for q in q_lo..q_hi {
        traced.push(trace_demarcation_line(inst, q, rows));
    }
    let maxcol = |q: i64, row: u32| -> i64 {
        if q < 0 || (q as u16) < q_lo {
            below
        } else if q as u16 >= q_hi {
            above
        } else {
            traced[(q as u16 - q_lo) as usize][(row - inst.r0) as usize]
        }
    };

    let mut out = SubgridOutput::default();

    // Interesting points (Lemma 3.9): candidates are the per-row boundaries of each
    // traced demarcation line. Block row i uses corner rows i and i+1 (both within
    // the maxcol arrays, which cover corner rows r0 ..= r1).
    for (t, line) in traced.iter().enumerate() {
        let a = (q_lo + t as u16) as i64;
        for i in inst.r0..inst.r1 {
            let j = line[(i + 1 - inst.r0) as usize];
            if j < i64::from(inst.c0) || j >= i64::from(inst.c1) {
                continue;
            }
            let j_u = j as u32;
            if i64::from(j_u + 1) <= maxcol(a, i) && i64::from(j_u) > maxcol(a - 1, i) {
                out.nonzeros.push((i, j_u));
            }
        }
    }

    // Union-point survival (Lemma 3.10): points whose block lies in this subgrid.
    for p in &inst.row_pts {
        if p.col < inst.c0 || p.col >= inst.c1 {
            continue;
        }
        let x = i64::from(p.color);
        if i64::from(p.col) > maxcol(x - 1, p.row) && i64::from(p.col + 1) <= maxcol(x, p.row + 1) {
            out.nonzeros.push((p.row, p.col));
        }
    }

    out.nonzeros.sort_unstable();
    out.nonzeros.dedup();
    out
}

/// Traces demarcation line `q` through the subgrid: returns, for every corner row
/// `r0 ..= r1` (index `row - r0`), the largest column `≤ c1` with `opt(row, col) ≤ q`
/// (or `c0 − 1` when even column `c0` exceeds the region).
fn trace_demarcation_line(inst: &SubgridInstance, q: u16, rows: usize) -> Vec<i64> {
    let below = i64::from(inst.c0) - 1;
    let mut maxcol = vec![below; rows + 1];

    // Start at the bottom-left corner (r1, c0) and walk up/right; the region
    // {opt ≤ q} is monotone, so once a row's boundary is found the next row's
    // boundary can only be further right... (it is nonincreasing as the row index
    // grows, so walking upwards the boundary moves right or stays).
    let mut local = LocalF::new(inst);
    for _ in inst.r0..inst.r1 {
        local.move_down();
    }
    debug_assert_eq!(local.row, inst.r1);

    // Walk upwards until the region is entered (rows below keep the `below` marker).
    let mut row = inst.r1;
    loop {
        if local.opt() <= q {
            break;
        }
        if row == inst.r0 {
            return maxcol; // the region never reaches column c0 inside this subgrid
        }
        // Move the evaluation point up one row. LocalF only supports downward and
        // rightward movement, so rebuild is avoided by undoing the last move_down:
        // instead we track rows from scratch — see `move_up` below.
        move_up(&mut local);
        row -= 1;
    }

    // Greedy rightward extension per row, then step up.
    loop {
        while local.col < inst.c1 && local.opt_le_after_right(q) {
            local.move_right();
        }
        maxcol[(row - inst.r0) as usize] = i64::from(local.col);
        if row == inst.r0 {
            break;
        }
        move_up(&mut local);
        row -= 1;
        debug_assert!(
            local.opt() <= q,
            "region must still contain the corner after moving up"
        );
    }
    maxcol
}

/// Inverse of [`LocalF::move_down`]: moves the evaluation point one row up.
fn move_up(local: &mut LocalF<'_>) {
    debug_assert!(local.row > local.inst.r0);
    local.row -= 1;
    if let Some((pcol, pcolor)) = local.pt_in_row[(local.row - local.inst.r0) as usize] {
        let x0 = pcolor as usize;
        for q in x0 + 1..local.inst.h as usize {
            local.f[q] += 1;
        }
        if pcol < local.col {
            local.f[x0] += 1;
        }
    }
}

// ---------------------------------------------------------------------------------
// Sequential multiway combine driver.
// ---------------------------------------------------------------------------------

/// Sequentially combines the `h` lifted subproblem results into the product
/// permutation, using exactly the grid/subgrid decomposition the MPC implementation
/// uses (grid spacing `g`). This is the reference the distributed implementation is
/// tested against, and doubles as a standalone sequential H-way multiplier.
pub fn combine_multiway(
    points: &[ColoredPoint],
    n: usize,
    h: usize,
    g: usize,
) -> PermutationMatrix {
    assert!(g >= 1);
    assert_eq!(
        points.len(),
        n,
        "union of subproblem results must be a permutation"
    );
    if h == 1 || n == 0 {
        let mut rows = vec![0u32; n];
        for p in points {
            rows[p.row as usize] = p.col;
        }
        return PermutationMatrix::from_rows(rows);
    }

    let oracle = MultiwayOracle::new(points, h);
    // Grid corner rows/cols: multiples of g plus the final boundary n.
    let boundaries: Vec<u32> = {
        let mut b: Vec<u32> = (0..)
            .map(|k| (k * g) as u32)
            .take_while(|&x| (x as usize) < n)
            .collect();
        b.push(n as u32);
        b
    };
    let cells = boundaries.len() - 1;

    // opt at every grid corner (the sequential driver can afford this; the MPC
    // implementation derives the same information from the grid-line phase).
    let corner_opt: Vec<Vec<u16>> = boundaries
        .iter()
        .map(|&r| boundaries.iter().map(|&c| oracle.opt(r, c)).collect())
        .collect();

    let mut result: Vec<(u32, u32)> = Vec::with_capacity(n);

    // Points sorted by row / by col for range extraction.
    let mut by_row: Vec<ColoredPoint> = points.to_vec();
    by_row.sort_unstable_by_key(|p| p.row);
    let mut by_col: Vec<ColoredPoint> = points.to_vec();
    by_col.sort_unstable_by_key(|p| p.col);

    for bi in 0..cells {
        for bj in 0..cells {
            let (r0, r1) = (boundaries[bi], boundaries[bi + 1]);
            let (c0, c1) = (boundaries[bj], boundaries[bj + 1]);
            let active = corner_opt[bi][bj] != corner_opt[bi + 1][bj + 1];
            if active {
                let row_pts: Vec<ColoredPoint> = by_row
                    .iter()
                    .filter(|p| p.row >= r0 && p.row < r1)
                    .copied()
                    .collect();
                let col_pts: Vec<ColoredPoint> = by_col
                    .iter()
                    .filter(|p| p.col >= c0 && p.col < c1)
                    .copied()
                    .collect();
                let inst = SubgridInstance {
                    r0,
                    r1,
                    c0,
                    c1,
                    h: h as u16,
                    base_f: oracle.f_vec(r0, c0),
                    row_pts,
                    col_pts,
                };
                result.extend(process_subgrid(&inst).nonzeros);
            } else {
                // Constant opt inside the subgrid: a union point survives iff its
                // color equals the constant (Lemma 3.10).
                let constant = corner_opt[bi][bj];
                result.extend(
                    by_row
                        .iter()
                        .filter(|p| {
                            p.row >= r0
                                && p.row < r1
                                && p.col >= c0
                                && p.col < c1
                                && p.color == constant
                        })
                        .map(|p| (p.row, p.col)),
                );
            }
        }
    }

    assert_eq!(result.len(), n, "combine must produce exactly n nonzeros");
    let mut rows = vec![u32::MAX; n];
    for (r, c) in result {
        assert_eq!(rows[r as usize], u32::MAX, "row {r} produced twice");
        rows[r as usize] = c;
    }
    PermutationMatrix::from_rows(rows)
}

/// Full sequential H-way multiplication: split, solve subproblems with the steady
/// ant, combine. Useful on its own and as the reference for `monge-mpc`.
pub fn mul_multiway(
    a: &PermutationMatrix,
    b: &PermutationMatrix,
    h: usize,
    g: usize,
) -> PermutationMatrix {
    let n = a.size();
    assert_eq!(n, b.size());
    if n == 0 {
        return PermutationMatrix::identity(0);
    }
    let h = h.clamp(1, n);
    let subs = split_into_subproblems(a.rows(), b.rows(), h);
    let lifted: Vec<Vec<ColoredPoint>> = subs
        .iter()
        .enumerate()
        .map(|(q, sub)| {
            let c = crate::steady_ant::mul_rows(&sub.a, &sub.b);
            lift_subresult(sub, &c, q as u16)
        })
        .collect();
    let union = overlay(lifted);
    combine_multiway(&union, n, h, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::mul_dense;
    use crate::steady_ant;
    use rand::prelude::*;

    fn random_permutation(n: usize, rng: &mut StdRng) -> PermutationMatrix {
        let mut v: Vec<u32> = (0..n as u32).collect();
        v.shuffle(rng);
        PermutationMatrix::from_rows(v)
    }

    /// Builds the colored union for a random instance, returning (a, b, points).
    fn build_union(
        n: usize,
        h: usize,
        rng: &mut StdRng,
    ) -> (PermutationMatrix, PermutationMatrix, Vec<ColoredPoint>) {
        let a = random_permutation(n, rng);
        let b = random_permutation(n, rng);
        let subs = split_into_subproblems(a.rows(), b.rows(), h);
        let lifted: Vec<Vec<ColoredPoint>> = subs
            .iter()
            .enumerate()
            .map(|(q, sub)| {
                let c = steady_ant::mul_rows(&sub.a, &sub.b);
                lift_subresult(sub, &c, q as u16)
            })
            .collect();
        let union = overlay(lifted);
        (a, b, union)
    }

    #[test]
    fn split_partitions_rows_and_cols() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_permutation(20, &mut rng);
        let b = random_permutation(20, &mut rng);
        for h in [1, 2, 3, 4, 7] {
            let subs = split_into_subproblems(a.rows(), b.rows(), h);
            let total_rows: usize = subs.iter().map(|s| s.rows.len()).sum();
            let total_cols: usize = subs.iter().map(|s| s.cols.len()).sum();
            assert_eq!(total_rows, 20);
            assert_eq!(total_cols, 20);
            for s in &subs {
                assert_eq!(s.a.len(), s.rows.len());
                assert_eq!(s.b.len(), s.cols.len());
                assert!(s.rows.windows(2).all(|w| w[0] < w[1]));
                assert!(s.cols.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn overlay_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let (_, _, union) = build_union(24, 4, &mut rng);
        assert_eq!(union.len(), 24);
        let mut cols: Vec<u32> = union.iter().map(|p| p.col).collect();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 24);
    }

    #[test]
    fn lemma_3_1_decomposition() {
        // P^Σ_C(i,k) = min_q F_q(i,k): checks Lemma 3.2 directly on random instances.
        let mut rng = StdRng::seed_from_u64(3);
        for &(n, h) in &[(12usize, 3usize), (16, 4), (20, 5)] {
            let (a, b, union) = build_union(n, h, &mut rng);
            let c = mul_dense(&a, &b);
            let dc = crate::distribution::DistributionMatrix::from_permutation(&c);
            let oracle = MultiwayOracle::new(&union, h);
            for i in 0..=n as u32 {
                for k in 0..=n as u32 {
                    let fmin = (0..h).map(|q| oracle.f(q, i, k)).min().unwrap();
                    assert_eq!(
                        u64::from(dc.get(i as usize, k as usize)),
                        fmin,
                        "n={n} h={h} at ({i},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_is_monotone_with_unit_steps() {
        // Lemmas 3.3 / 3.4.
        let mut rng = StdRng::seed_from_u64(4);
        let (_, _, union) = build_union(18, 3, &mut rng);
        let oracle = MultiwayOracle::new(&union, 3);
        for q in 0..3 {
            for r in q + 1..3 {
                for i in 0..=18u32 {
                    for j in 0..18u32 {
                        let d = oracle.delta(q, r, i, j + 1) - oracle.delta(q, r, i, j);
                        assert!((0..=1).contains(&d), "column step δ={d}");
                    }
                }
                for i in 0..18u32 {
                    for j in 0..=18u32 {
                        let d = oracle.delta(q, r, i + 1, j) - oracle.delta(q, r, i, j);
                        assert!((0..=1).contains(&d), "row step δ={d}");
                    }
                }
            }
        }
    }

    #[test]
    fn opt_is_monotone() {
        // Lemmas 3.5 / 3.6.
        let mut rng = StdRng::seed_from_u64(5);
        let (_, _, union) = build_union(20, 4, &mut rng);
        let oracle = MultiwayOracle::new(&union, 4);
        for i in 0..=20u32 {
            for j in 0..20u32 {
                assert!(oracle.opt(i, j) <= oracle.opt(i, j + 1));
            }
        }
        for i in 0..20u32 {
            for j in 0..=20u32 {
                assert!(oracle.opt(i, j) <= oracle.opt(i + 1, j));
            }
        }
    }

    #[test]
    fn cmp_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(6);
        let (_, _, union) = build_union(25, 5, &mut rng);
        let n = 25u32;
        let oracle = MultiwayOracle::new(&union, 5);
        for c in [0u32, 5, 12, 25] {
            for q in 0..5 {
                for r in q + 1..5 {
                    let by_scan = (0..=n)
                        .find(|&i| oracle.delta(q, r, i, c) > 0)
                        .unwrap_or(n + 1);
                    assert_eq!(oracle.cmp(n, c, q, r), by_scan, "c={c} q={q} r={r}");
                }
            }
        }
    }

    #[test]
    fn breakpoints_from_cmp_match_direct_opt() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, h) in &[(20usize, 4usize), (30, 5), (17, 3)] {
            let (_, _, union) = build_union(n, h, &mut rng);
            let oracle = MultiwayOracle::new(&union, h);
            for c in [0u32, (n / 3) as u32, (n / 2) as u32, n as u32] {
                let mut cmp = vec![vec![0u32; h]; h];
                for q in 0..h {
                    for r in q + 1..h {
                        cmp[q][r] = oracle.cmp(n as u32, c, q, r);
                    }
                }
                let bp = opt_breakpoints_from_cmp(&cmp, h, n as u32);
                for i in 0..=n as u32 {
                    assert_eq!(
                        step_lookup(&bp, i),
                        oracle.opt(i, c),
                        "n={n} h={h} c={c} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn multiway_combine_matches_dense_small() {
        let mut rng = StdRng::seed_from_u64(8);
        for &(n, h, g) in &[
            (8usize, 2usize, 3usize),
            (12, 3, 4),
            (16, 4, 4),
            (20, 4, 5),
            (20, 4, 20),
            (15, 5, 2),
            (9, 9, 3),
        ] {
            for _ in 0..6 {
                let a = random_permutation(n, &mut rng);
                let b = random_permutation(n, &mut rng);
                let expected = mul_dense(&a, &b);
                let got = mul_multiway(&a, &b, h, g);
                assert_eq!(got, expected, "n={n} h={h} g={g} a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn multiway_combine_matches_steady_ant_medium() {
        let mut rng = StdRng::seed_from_u64(9);
        for &(n, h, g) in &[
            (64usize, 4usize, 16usize),
            (100, 5, 10),
            (128, 8, 16),
            (200, 3, 32),
        ] {
            let a = random_permutation(n, &mut rng);
            let b = random_permutation(n, &mut rng);
            let expected = steady_ant::mul(&a, &b);
            let got = mul_multiway(&a, &b, h, g);
            assert_eq!(got, expected, "n={n} h={h} g={g}");
        }
    }

    #[test]
    fn multiway_single_color_is_identity_operation() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = random_permutation(30, &mut rng);
        let b = random_permutation(30, &mut rng);
        assert_eq!(mul_multiway(&a, &b, 1, 8), steady_ant::mul(&a, &b));
    }
}
