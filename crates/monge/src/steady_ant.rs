//! Tiskin's "steady ant" divide-and-conquer algorithm for implicit unit-Monge
//! multiplication, running in `O(n log n)` time.
//!
//! This is the sequential baseline of the paper (see §1.2) and also the local kernel
//! executed inside a single simulated MPC machine once an instance fits into its
//! space budget. The structure mirrors the H = 2 case of Section 3 of the paper:
//!
//! 1. Split `P_A` into a left and right column slice and `P_B` into a top and bottom
//!    row slice, compact the empty rows/columns, and recurse on the two
//!    half-size subproblems (`C_lo = A_lo ⊡ B_lo`, `C_hi = A_hi ⊡ B_hi`).
//! 2. Combine the expanded results with the *ant traversal*: trace the monotone
//!    demarcation line between the region of the output where `F_1` (the `lo`
//!    subproblem) attains the minimum and the region where `F_2` (the `hi`
//!    subproblem) does, then keep `lo` nonzeros strictly above/left of the line,
//!    `hi` nonzeros strictly below/right of it, and insert a new nonzero at every
//!    up-then-right turn of the line (the "interesting points" of Lemma 3.9).

use crate::matrix::{PermutationMatrix, SubPermutationMatrix};
use rayon::prelude::*;
use std::cell::RefCell;

const NONE: u32 = u32::MAX;

/// Subproblems of at most this size are solved directly through the dense
/// distribution-matrix (min, +) product instead of recursing further. The
/// product `⊡` is unique, so the base case is bit-identical to full recursion;
/// it exists because the deepest recursion levels are dominated by bookkeeping,
/// not by work.
const DENSE_BASE: usize = 8;

/// Multiplies two permutation matrices: returns `P_C = P_A ⊡ P_B` (Theorem 1.1's
/// sequential counterpart). `O(n log n)` time, `O(n)` auxiliary space per level,
/// with every level's scratch drawn from a thread-local [`Workspace`] arena.
pub fn mul(a: &PermutationMatrix, b: &PermutationMatrix) -> PermutationMatrix {
    assert_eq!(a.size(), b.size(), "operands must have equal size");
    let rows = mul_rows(a.rows(), b.rows());
    PermutationMatrix::from_rows_unchecked(rows)
}

/// Multiplies two permutation matrices given as raw row → column arrays.
///
/// Exposed so that the MPC layer can run the same kernel on machine-local slices
/// without re-wrapping data in [`PermutationMatrix`]. Scratch buffers come from
/// a thread-local [`Workspace`], so repeated calls (the per-level merge batches
/// of `lis-mpc`, the grid phase's batched packages, streamed comb folds)
/// allocate nothing beyond the result itself after warm-up.
pub fn mul_rows(pa: &[u32], pb: &[u32]) -> Vec<u32> {
    WORKSPACE.with(|ws| ws.borrow_mut().mul_rows(pa, pb))
}

/// Multiplies many independent products, all sharing one arena per worker
/// thread, data-parallel across instances.
///
/// This is the entry point for batched layers: the per-level merge pair loop of
/// `lis_mpc::lis` and the grid phase's batched packages funnel their per-level
/// `⊡` instances through here (via `monge_mpc::mul_batch`'s local solve), and
/// the bench harness drives it directly. Results are in instance order and
/// bit-identical to a sequential loop of [`mul`] at every thread count.
pub fn mul_batch(instances: &[(PermutationMatrix, PermutationMatrix)]) -> Vec<PermutationMatrix> {
    instances.par_iter().map(|(a, b)| mul(a, b)).collect()
}

thread_local! {
    static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Reusable scratch arena for the steady-ant recursion.
///
/// The reference implementation ([`mul_rows_reference`]) allocates ~13 fresh
/// vectors per combine step; across a full recursion that is `O(n)` allocator
/// round-trips, and at the deepest levels malloc dominates the actual work.
/// The workspace instead keeps a pool of `u32` buffers: every recursion level
/// *takes* its scratch from the pool and *gives* it back before returning, so
/// steady state runs allocation-free (the returned product vector is the only
/// allocation per call). The four n-sized expansion maps of a combine step are
/// carved out of a single pooled buffer (struct-of-arrays, one take instead of
/// four `vec![NONE; n]`).
///
/// An `outstanding` counter tracks take/give balance; `mul_rows` asserts (debug
/// builds) that every instance returns all of its buffers — the classic
/// stale-state failure mode of buffer reuse — and discards any pool left
/// unbalanced by a panic that unwound a previous instance, so a poisoned
/// thread-local workspace cannot cascade into secondary failures. The
/// `workspace_reuse_across_sizes` and `workspace_recovers_after_unwind`
/// regression tests exercise one workspace across differently-sized products
/// and across a simulated mid-instance abort.
#[derive(Default)]
pub struct Workspace {
    pool: Vec<Vec<u32>>,
    outstanding: usize,
}

impl Workspace {
    /// Creates an empty workspace; buffers are grown on demand and reused.
    pub fn new() -> Self {
        Self::default()
    }

    fn take(&mut self) -> Vec<u32> {
        self.outstanding += 1;
        self.pool.pop().unwrap_or_default()
    }

    fn give(&mut self, mut buf: Vec<u32>) {
        debug_assert!(self.outstanding > 0, "give without matching take");
        buf.clear();
        self.outstanding -= 1;
        self.pool.push(buf);
    }

    /// Arena-backed `P_A ⊡ P_B` on raw row → column arrays; bit-identical to
    /// [`mul_rows_reference`].
    pub fn mul_rows(&mut self, pa: &[u32], pb: &[u32]) -> Vec<u32> {
        debug_assert_eq!(pa.len(), pb.len());
        // A panic that unwound out of a previous instance (a failed
        // debug_assert in the combine, a caller-induced abort caught by
        // catch_unwind) leaves `outstanding` nonzero with the taken buffers
        // dropped. Discard the stale pool instead of asserting, so the
        // original panic is not masked by a secondary "not fully reset"
        // failure on every later call from this thread; the post-instance
        // assert below still catches genuine within-instance leaks.
        if self.outstanding != 0 {
            self.outstanding = 0;
            self.pool.clear();
        }
        let mut out = Vec::new();
        self.mul_rec(pa, pb, &mut out);
        debug_assert_eq!(
            self.outstanding, 0,
            "workspace buffers leaked by an instance"
        );
        out
    }

    fn mul_rec(&mut self, pa: &[u32], pb: &[u32], out: &mut Vec<u32>) {
        let n = pa.len();
        out.clear();
        if n <= DENSE_BASE {
            mul_dense_base(pa, pb, out);
            return;
        }
        let half = n / 2;

        // --- Split A by columns of the middle dimension. -----------------------
        // Rows of A whose nonzero lies in columns [0, half) form the `lo`
        // subproblem; the rest form `hi`. Row order is preserved (compaction by
        // rank), columns are relabelled to 0..half / 0..n-half.
        let mut rows_lo = self.take();
        let mut rows_hi = self.take();
        let mut a_lo = self.take();
        let mut a_hi = self.take();
        for (i, &c) in pa.iter().enumerate() {
            if (c as usize) < half {
                rows_lo.push(i as u32);
                a_lo.push(c);
            } else {
                rows_hi.push(i as u32);
                a_hi.push(c - half as u32);
            }
        }

        // --- Split B by rows of the middle dimension. --------------------------
        // The first `half` rows of B form `lo`; their columns are compacted by
        // rank among themselves (and analogously for `hi`).
        let mut b_lo = self.take();
        let mut cols_lo = self.take();
        let mut b_hi = self.take();
        let mut cols_hi = self.take();
        {
            let mut rank = self.take();
            rank.resize(n, 0);
            compact_columns_into(&pb[..half], &mut rank, &mut b_lo, &mut cols_lo);
            compact_columns_into(&pb[half..], &mut rank, &mut b_hi, &mut cols_hi);
            self.give(rank);
        }

        // Recurse, releasing each child's inputs as soon as it returns so the
        // pool's peak stays O(log n) buffers.
        let mut c_lo = self.take();
        self.mul_rec(&a_lo, &b_lo, &mut c_lo);
        self.give(a_lo);
        self.give(b_lo);
        let mut c_hi = self.take();
        self.mul_rec(&a_hi, &b_hi, &mut c_hi);
        self.give(a_hi);
        self.give(b_hi);

        // --- Expand the compacted results back to n×n sub-permutations. --------
        // All four row→col / col→row maps live in one pooled 4n buffer.
        let mut maps = self.take();
        maps.resize(4 * n, NONE);
        {
            let (lo_maps, hi_maps) = maps.split_at_mut(2 * n);
            let (lo_col_of_row, lo_row_of_col) = lo_maps.split_at_mut(n);
            let (hi_col_of_row, hi_row_of_col) = hi_maps.split_at_mut(n);
            for (r, &c) in c_lo.iter().enumerate() {
                let row = rows_lo[r];
                let col = cols_lo[c as usize];
                lo_col_of_row[row as usize] = col;
                lo_row_of_col[col as usize] = row;
            }
            for (r, &c) in c_hi.iter().enumerate() {
                let row = rows_hi[r];
                let col = cols_hi[c as usize];
                hi_col_of_row[row as usize] = col;
                hi_row_of_col[col as usize] = row;
            }
        }
        self.give(rows_lo);
        self.give(rows_hi);
        self.give(cols_lo);
        self.give(cols_hi);
        self.give(c_lo);
        self.give(c_hi);

        {
            let mut max_k = self.take();
            let (lo_maps, hi_maps) = maps.split_at(2 * n);
            let (lo_col_of_row, lo_row_of_col) = lo_maps.split_at(n);
            let (hi_col_of_row, hi_row_of_col) = hi_maps.split_at(n);
            combine_ant_into(
                n,
                lo_col_of_row,
                lo_row_of_col,
                hi_col_of_row,
                hi_row_of_col,
                &mut max_k,
                out,
            );
            self.give(max_k);
        }
        self.give(maps);
    }
}

/// Dense base case: `P_A ⊡ P_B` for `n ≤ DENSE_BASE` through the explicit
/// distribution matrices and the (min, +) product, entirely on the stack.
/// The `⊡` product is unique, so this is bit-identical to the recursion.
fn mul_dense_base(pa: &[u32], pb: &[u32], out: &mut Vec<u32>) {
    let n = pa.len();
    if n == 0 {
        return;
    }
    const W: usize = DENSE_BASE + 1;
    debug_assert!(n < W);
    let w = n + 1;
    // d(i, j) = #{nonzeros with row ≥ i, col < j}; row n and column 0 are zero.
    let mut da = [0u32; W * W];
    let mut db = [0u32; W * W];
    for (d, p) in [(&mut da, pa), (&mut db, pb)] {
        for i in (0..n).rev() {
            let c = p[i] as usize;
            for j in 1..=n {
                d[i * w + j] = d[(i + 1) * w + j] + u32::from(c < j);
            }
        }
    }
    // dc(i, k) = min_j da(i, j) + db(j, k); nonzeros via finite differences.
    let mut dc = [0u32; W * W];
    for i in 0..=n {
        for k in 0..=n {
            let mut best = u32::MAX;
            for j in 0..=n {
                best = best.min(da[i * w + j] + db[j * w + k]);
            }
            dc[i * w + k] = best;
        }
    }
    out.resize(n, NONE);
    for i in 0..n {
        for k in 0..n {
            if dc[i * w + k + 1] + dc[(i + 1) * w + k]
                == dc[i * w + k] + dc[(i + 1) * w + k + 1] + 1
            {
                out[i] = k as u32;
                break;
            }
        }
    }
    debug_assert!(out.iter().all(|&c| c != NONE));
}

/// The allocate-per-level reference implementation of `P_A ⊡ P_B`, kept verbatim
/// as the differential oracle for the arena-backed fast path ([`mul_rows`]):
/// `exp_kernel_bench` and the proptests in `tests/properties.rs` assert the two
/// are bit-identical.
pub fn mul_rows_reference(pa: &[u32], pb: &[u32]) -> Vec<u32> {
    let n = pa.len();
    debug_assert_eq!(n, pb.len());
    match n {
        0 => Vec::new(),
        1 => vec![0],
        _ => {
            let half = n / 2;

            // Split A by columns of the middle dimension.
            let mut rows_lo = Vec::with_capacity(half);
            let mut rows_hi = Vec::with_capacity(n - half);
            let mut a_lo = Vec::with_capacity(half);
            let mut a_hi = Vec::with_capacity(n - half);
            for (i, &c) in pa.iter().enumerate() {
                if (c as usize) < half {
                    rows_lo.push(i as u32);
                    a_lo.push(c);
                } else {
                    rows_hi.push(i as u32);
                    a_hi.push(c - half as u32);
                }
            }

            // Split B by rows of the middle dimension.
            let (b_lo, cols_lo) = compact_columns(&pb[..half], n);
            let (b_hi, cols_hi) = compact_columns(&pb[half..], n);

            let c_lo = mul_rows_reference(&a_lo, &b_lo);
            let c_hi = mul_rows_reference(&a_hi, &b_hi);

            // Expand the compacted results back to n×n sub-permutations.
            let mut lo_col_of_row = vec![NONE; n];
            let mut lo_row_of_col = vec![NONE; n];
            for (r, &c) in c_lo.iter().enumerate() {
                let row = rows_lo[r];
                let col = cols_lo[c as usize];
                lo_col_of_row[row as usize] = col;
                lo_row_of_col[col as usize] = row;
            }
            let mut hi_col_of_row = vec![NONE; n];
            let mut hi_row_of_col = vec![NONE; n];
            for (r, &c) in c_hi.iter().enumerate() {
                let row = rows_hi[r];
                let col = cols_hi[c as usize];
                hi_col_of_row[row as usize] = col;
                hi_row_of_col[col as usize] = row;
            }

            let mut out = Vec::new();
            let mut max_k = Vec::new();
            combine_ant_into(
                n,
                &lo_col_of_row,
                &lo_row_of_col,
                &hi_col_of_row,
                &hi_row_of_col,
                &mut max_k,
                &mut out,
            );
            out
        }
    }
}

/// Compacts the columns of a row-slice of a permutation: returns the relabelled
/// slice (columns replaced by their rank) and the sorted list of original columns.
fn compact_columns(rows: &[u32], total_cols: usize) -> (Vec<u32>, Vec<u32>) {
    let mut rank = vec![0u32; total_cols];
    let mut relabelled = Vec::new();
    let mut cols = Vec::new();
    compact_columns_into(rows, &mut rank, &mut relabelled, &mut cols);
    (relabelled, cols)
}

/// [`compact_columns`] writing into caller-provided buffers. `rank` must have
/// length ≥ the column universe; only entries for used columns are written
/// before being read, so it needs no clearing between calls.
fn compact_columns_into(
    rows: &[u32],
    rank: &mut [u32],
    relabelled: &mut Vec<u32>,
    cols: &mut Vec<u32>,
) {
    cols.clear();
    cols.extend_from_slice(rows);
    cols.sort_unstable();
    // rank[c] = position of column c in `cols` (only meaningful for used columns).
    for (i, &c) in cols.iter().enumerate() {
        rank[c as usize] = i as u32;
    }
    relabelled.clear();
    relabelled.extend(rows.iter().map(|&c| rank[c as usize]));
}

/// Combines the two expanded subproblem results with the ant traversal.
///
/// `lo_*` / `hi_*` are the row→col and col→row maps of the two n×n sub-permutation
/// matrices (with `u32::MAX` for empty rows/columns). Writes the row→col array of
/// the combined permutation into `out`; `max_k` is scratch (both are cleared and
/// resized here, so pooled buffers need no preparation).
fn combine_ant_into(
    n: usize,
    lo_col_of_row: &[u32],
    lo_row_of_col: &[u32],
    hi_col_of_row: &[u32],
    hi_row_of_col: &[u32],
    max_k: &mut Vec<u32>,
    out: &mut Vec<u32>,
) {
    // delta(i, k) = #{hi nonzeros with row < i, col < k} − #{lo nonzeros with row ≥ i, col ≥ k}.
    // It is nondecreasing in i and k (Lemmas 3.3/3.4); the demarcation line between
    // delta ≤ 0 (where the `lo` subproblem attains the minimum) and delta > 0 runs
    // monotonically from (n, 0) to (0, n).
    out.clear();
    out.resize(n, NONE);
    // max_k[i] = largest k with delta(i, k) ≤ 0 (filled as the ant passes row i).
    max_k.clear();
    max_k.resize(n + 1, 0);

    let mut i = n; // row boundary, walks n → 0
    let mut k = 0usize; // column boundary, walks 0 → n
    let mut delta: i64 = 0;
    let mut last_was_up = false;

    let place = |out: &mut [u32], row: usize, col: usize| {
        debug_assert_eq!(out[row], NONE, "row {row} assigned twice");
        out[row] = col as u32;
    };

    while i > 0 || k < n {
        // Increment of delta when stepping right across column k.
        let step_right = |i: usize, k: usize| -> i64 {
            let mut d = 0;
            let hr = hi_row_of_col[k];
            if hr != NONE && (hr as usize) < i {
                d += 1;
            }
            let lr = lo_row_of_col[k];
            if lr != NONE && (lr as usize) >= i {
                d += 1;
            }
            d
        };
        let (move_right, step) = if k == n {
            (false, 0)
        } else {
            let step = step_right(i, k);
            (i == 0 || delta + step <= 0, step)
        };

        if move_right {
            debug_assert!(delta + step <= 0, "invariant: ant stays in delta ≤ 0");
            if last_was_up {
                // Up-then-right turn at (i, k): a new nonzero of the product
                // (Lemma 3.9's interesting point).
                place(out, i, k);
            }
            delta += step;
            k += 1;
            last_was_up = false;
        } else {
            // Leaving row i: record the demarcation column for this row.
            max_k[i] = k as u32;
            // Decrement of delta when stepping up across row i - 1.
            let r = i - 1;
            let hc = hi_col_of_row[r];
            if hc != NONE && (hc as usize) < k {
                delta -= 1;
            }
            let lc = lo_col_of_row[r];
            if lc != NONE && (lc as usize) >= k {
                delta -= 1;
            }
            i = r;
            last_was_up = true;
        }
    }
    max_k[0] = n as u32;

    // lo nonzero (r, c) survives iff its whole 2×2 block lies in the delta ≤ 0
    // region, i.e. delta(r+1, c+1) ≤ 0; hi nonzero survives iff delta(r, c) > 0.
    for (r, &c) in lo_col_of_row.iter().enumerate() {
        if c != NONE && c < max_k[r + 1] {
            place(out, r, c as usize);
        }
    }
    for (r, &c) in hi_col_of_row.iter().enumerate() {
        if c != NONE && c > max_k[r] {
            place(out, r, c as usize);
        }
    }

    debug_assert!(
        out.iter().all(|&c| c != NONE),
        "combine produced an empty row"
    );
}

/// Multiplies two sub-permutation matrices (Theorem 1.2's sequential counterpart):
/// pads both operands to square permutation matrices as in §4.1, multiplies with
/// [`mul`], and extracts the relevant block.
pub fn mul_sub(a: &SubPermutationMatrix, b: &SubPermutationMatrix) -> SubPermutationMatrix {
    assert_eq!(
        a.cols_len(),
        b.rows_len(),
        "inner dimensions must agree: {}×{} times {}×{}",
        a.rows_len(),
        a.cols_len(),
        b.rows_len(),
        b.cols_len()
    );
    let (n1, n2, n3) = (a.rows_len(), a.cols_len(), b.cols_len());
    if n2 == 0 {
        return SubPermutationMatrix::zero(n1, n3);
    }

    // Keep only nonzero rows of A and nonzero columns of B (removed rows/columns of
    // the product are necessarily zero and are reinstated at the end).
    let kept_rows_a: Vec<usize> = (0..n1).filter(|&r| a.col_of(r).is_some()).collect();
    let mut kept_cols_b: Vec<usize> = (0..n2).filter_map(|r| b.col_of(r)).collect();
    kept_cols_b.sort_unstable();
    let r1 = kept_rows_a.len();
    let r3 = kept_cols_b.len();
    // Rank of an original B-column among the kept columns.
    let mut col_rank_b = vec![NONE; n3];
    for (i, &c) in kept_cols_b.iter().enumerate() {
        col_rank_b[c] = i as u32;
    }

    // --- Pad A to an n2×n2 permutation: prepend n2 − r1 rows covering the columns
    // of A that no kept row uses. -------------------------------------------------
    let mut col_used_a = vec![false; n2];
    for &r in &kept_rows_a {
        col_used_a[a.col_of(r).unwrap()] = true;
    }
    let empty_cols_a: Vec<usize> = (0..n2).filter(|&c| !col_used_a[c]).collect();
    debug_assert_eq!(empty_cols_a.len(), n2 - r1);
    let mut pa = Vec::with_capacity(n2);
    pa.extend(empty_cols_a.iter().map(|&c| c as u32));
    pa.extend(kept_rows_a.iter().map(|&r| a.col_of(r).unwrap() as u32));

    // --- Pad B to an n2×n2 permutation: append n2 − r3 columns assigned to the rows
    // of B that have no nonzero. ---------------------------------------------------
    let mut pb = Vec::with_capacity(n2);
    let mut next_extra_col = r3 as u32;
    for r in 0..n2 {
        match b.col_of(r) {
            Some(c) => pb.push(col_rank_b[c]),
            None => {
                pb.push(next_extra_col);
                next_extra_col += 1;
            }
        }
    }
    debug_assert_eq!(next_extra_col as usize, n2);

    let pc = mul_rows(&pa, &pb);

    // --- Extract the bottom-left r1 × r3 block and restore original labels. -------
    let mut rows = vec![NONE; n1];
    for (t, &orig_row) in kept_rows_a.iter().enumerate() {
        let c = pc[(n2 - r1) + t] as usize;
        if c < r3 {
            rows[orig_row] = kept_cols_b[c] as u32;
        }
    }
    SubPermutationMatrix::from_rows_unchecked(rows, n3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{mul_dense, mul_dense_sub};
    use rand::prelude::*;

    fn random_permutation(n: usize, rng: &mut StdRng) -> PermutationMatrix {
        let mut v: Vec<u32> = (0..n as u32).collect();
        v.shuffle(rng);
        PermutationMatrix::from_rows(v)
    }

    fn random_sub_permutation(
        rows: usize,
        cols: usize,
        density: f64,
        rng: &mut StdRng,
    ) -> SubPermutationMatrix {
        let k = rows.min(cols);
        let keep = (0..k).filter(|_| rng.gen_bool(density)).count();
        let mut rs: Vec<usize> = (0..rows).collect();
        let mut cs: Vec<usize> = (0..cols).collect();
        rs.shuffle(rng);
        cs.shuffle(rng);
        let mut out = vec![SubPermutationMatrix::NONE; rows];
        for i in 0..keep {
            out[rs[i]] = cs[i] as u32;
        }
        SubPermutationMatrix::from_rows(out, cols)
    }

    #[test]
    fn tiny_cases_match_dense() {
        for n in 1..=4 {
            let perms = all_permutations(n);
            for a in &perms {
                for b in &perms {
                    assert_eq!(mul(a, b), mul_dense(a, b), "n={n}, a={a:?}, b={b:?}");
                }
            }
        }
    }

    fn all_permutations(n: usize) -> Vec<PermutationMatrix> {
        fn rec(cur: &mut Vec<u32>, used: &mut Vec<bool>, out: &mut Vec<PermutationMatrix>) {
            let n = used.len();
            if cur.len() == n {
                out.push(PermutationMatrix::from_rows(cur.clone()));
                return;
            }
            for c in 0..n {
                if !used[c] {
                    used[c] = true;
                    cur.push(c as u32);
                    rec(cur, used, out);
                    cur.pop();
                    used[c] = false;
                }
            }
        }
        let mut out = Vec::new();
        rec(&mut Vec::new(), &mut vec![false; n], &mut out);
        out
    }

    #[test]
    fn random_cases_match_dense() {
        let mut rng = StdRng::seed_from_u64(0xA5A5);
        for n in [5, 8, 13, 21, 40, 64, 100] {
            for _ in 0..8 {
                let a = random_permutation(n, &mut rng);
                let b = random_permutation(n, &mut rng);
                assert_eq!(mul(&a, &b), mul_dense(&a, &b), "n={n}");
            }
        }
    }

    #[test]
    fn identity_neutral_large() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = random_permutation(257, &mut rng);
        let id = PermutationMatrix::identity(257);
        assert_eq!(mul(&p, &id), p);
        assert_eq!(mul(&id, &p), p);
    }

    #[test]
    fn associativity_on_random_inputs() {
        // ⊡ is associative (it is composition in the seaweed monoid).
        let mut rng = StdRng::seed_from_u64(99);
        for n in [6, 17, 33] {
            let a = random_permutation(n, &mut rng);
            let b = random_permutation(n, &mut rng);
            let c = random_permutation(n, &mut rng);
            let left = mul(&mul(&a, &b), &c);
            let right = mul(&a, &mul(&b, &c));
            assert_eq!(left, right, "n={n}");
        }
    }

    #[test]
    fn sub_permutation_matches_dense() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..40 {
            let n1 = rng.gen_range(1..12);
            let n2 = rng.gen_range(1..12);
            let n3 = rng.gen_range(1..12);
            let a = random_sub_permutation(n1, n2, 0.7, &mut rng);
            let b = random_sub_permutation(n2, n3, 0.7, &mut rng);
            assert_eq!(mul_sub(&a, &b), mul_dense_sub(&a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn sub_permutation_full_permutation_case() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_permutation(31, &mut rng);
        let b = random_permutation(31, &mut rng);
        let c_sub = mul_sub(&a.to_sub(), &b.to_sub());
        assert_eq!(c_sub.as_permutation().unwrap(), mul(&a, &b));
    }

    #[test]
    fn sub_permutation_empty_operands() {
        let a = SubPermutationMatrix::zero(3, 5);
        let b = SubPermutationMatrix::zero(5, 2);
        let c = mul_sub(&a, &b);
        assert_eq!(c.rows_len(), 3);
        assert_eq!(c.cols_len(), 2);
        assert_eq!(c.nonzero_count(), 0);
    }

    #[test]
    fn zero_inner_dimension() {
        let a = SubPermutationMatrix::zero(4, 0);
        let b = SubPermutationMatrix::zero(0, 3);
        let c = mul_sub(&a, &b);
        assert_eq!(c.rows_len(), 4);
        assert_eq!(c.cols_len(), 3);
        assert_eq!(c.nonzero_count(), 0);
    }

    #[test]
    fn workspace_matches_reference_across_sizes() {
        // The arena-backed path must be bit-identical to the allocate-per-level
        // oracle, in particular around the dense base-case cutoff.
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        let mut ws = Workspace::new();
        for n in 0..=40 {
            for _ in 0..4 {
                let a = random_permutation(n.max(1), &mut rng);
                let b = random_permutation(n.max(1), &mut rng);
                let (pa, pb) = if n == 0 {
                    (&[][..], &[][..])
                } else {
                    (a.rows(), b.rows())
                };
                assert_eq!(ws.mul_rows(pa, pb), mul_rows_reference(pa, pb), "n={n}");
            }
        }
        for n in [100usize, 257, 1000] {
            let a = random_permutation(n, &mut rng);
            let b = random_permutation(n, &mut rng);
            assert_eq!(
                ws.mul_rows(a.rows(), b.rows()),
                mul_rows_reference(a.rows(), b.rows()),
                "n={n}"
            );
        }
    }

    #[test]
    fn workspace_reuse_across_sizes() {
        // Regression guard for stale-state bugs: one workspace driven across
        // interleaved, differently-sized products must keep every answer
        // correct and return all pooled buffers between instances.
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        let mut ws = Workspace::new();
        for &n in &[513usize, 3, 128, 1, 64, 9, 200, 8, 7, 350, 2] {
            let a = random_permutation(n, &mut rng);
            let b = random_permutation(n, &mut rng);
            assert_eq!(
                ws.mul_rows(a.rows(), b.rows()),
                mul_rows_reference(a.rows(), b.rows()),
                "n={n}"
            );
            assert_eq!(ws.outstanding, 0, "buffers leaked at n={n}");
        }
    }

    #[test]
    fn workspace_recovers_after_unwind() {
        // Simulate a panic that unwound mid-instance: a buffer was taken and
        // never given back, leaving `outstanding` nonzero. The next mul_rows
        // must discard the stale pool and still produce the exact product.
        let mut rng = StdRng::seed_from_u64(0x0DD);
        let mut ws = Workspace::new();
        let leaked = ws.take();
        drop(leaked);
        assert_eq!(ws.outstanding, 1);
        for &n in &[64usize, 7, 300] {
            let a = random_permutation(n, &mut rng);
            let b = random_permutation(n, &mut rng);
            assert_eq!(
                ws.mul_rows(a.rows(), b.rows()),
                mul_rows_reference(a.rows(), b.rows()),
                "n={n}"
            );
            assert_eq!(ws.outstanding, 0, "stale state survived at n={n}");
        }
    }

    #[test]
    fn mul_batch_matches_sequential_loop() {
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let instances: Vec<(PermutationMatrix, PermutationMatrix)> = [1usize, 8, 33, 100, 64, 257]
            .iter()
            .map(|&n| {
                (
                    random_permutation(n, &mut rng),
                    random_permutation(n, &mut rng),
                )
            })
            .collect();
        let expected: Vec<PermutationMatrix> = instances.iter().map(|(a, b)| mul(a, b)).collect();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got = pool.install(|| mul_batch(&instances));
            assert_eq!(got, expected, "threads={threads}");
        }
        assert!(mul_batch(&[]).is_empty());
    }

    #[test]
    fn dense_base_matches_reference_exhaustively() {
        // Every permutation pair at and below the cutoff goes through the dense
        // (min, +) base case; it must agree with the reference recursion.
        for n in 1..=4 {
            let perms = all_permutations(n);
            for a in &perms {
                for b in &perms {
                    let mut out = Vec::new();
                    mul_dense_base(a.rows(), b.rows(), &mut out);
                    assert_eq!(out, mul_rows_reference(a.rows(), b.rows()));
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        for n in 5..=DENSE_BASE {
            for _ in 0..20 {
                let a = random_permutation(n, &mut rng);
                let b = random_permutation(n, &mut rng);
                let mut out = Vec::new();
                mul_dense_base(a.rows(), b.rows(), &mut out);
                assert_eq!(out, mul_rows_reference(a.rows(), b.rows()), "n={n}");
            }
        }
    }

    #[test]
    fn large_random_consistency_with_self_similarity() {
        // Sanity check on a larger size: the product of a permutation with its own
        // inverse under ⊡ is still a valid permutation and matches the dense result.
        let mut rng = StdRng::seed_from_u64(123);
        let a = random_permutation(200, &mut rng);
        let b = a.inverse();
        assert_eq!(mul(&a, &b), mul_dense(&a, &b));
    }
}
