//! Verification helpers: checking Monge / unit-Monge structure and validating
//! products against the defining `(min,+)` identity.
//!
//! These functions are `O(n²)`–`O(n³)` and intended for tests, debugging and the
//! experiment harness (to certify outputs), not for production data paths.

use crate::dense::min_plus_distribution;
use crate::distribution::DistributionMatrix;
use crate::matrix::{PermutationMatrix, SubPermutationMatrix};

/// Checks whether an explicit matrix (given row-major) satisfies the Monge condition
/// `M(i,j) + M(i',j') ≤ M(i,j') + M(i',j)` for all `i ≤ i'`, `j ≤ j'`.
pub fn is_monge(matrix: &[Vec<i64>]) -> bool {
    let rows = matrix.len();
    if rows < 2 {
        return true;
    }
    let cols = matrix[0].len();
    for i in 0..rows - 1 {
        for j in 0..cols - 1 {
            if matrix[i][j] + matrix[i + 1][j + 1] > matrix[i][j + 1] + matrix[i + 1][j] {
                return false;
            }
        }
    }
    true
}

/// Checks whether an explicit matrix is the distribution matrix of a sub-permutation
/// matrix (i.e. a subunit-Monge matrix): all finite differences are 0/1 with at most
/// one 1 per row and column, the last row is zero and the first column is zero.
pub fn is_subunit_monge(matrix: &[Vec<i64>]) -> bool {
    let rows = matrix.len();
    if rows == 0 {
        return true;
    }
    let cols = matrix[0].len();
    if matrix[rows - 1].iter().any(|&v| v != 0) {
        return false;
    }
    if matrix.iter().any(|row| row[0] != 0) {
        return false;
    }
    let mut col_used = vec![false; cols.saturating_sub(1)];
    for i in 0..rows - 1 {
        let mut row_used = false;
        for j in 0..cols - 1 {
            let d = matrix[i][j + 1] + matrix[i + 1][j] - matrix[i][j] - matrix[i + 1][j + 1];
            match d {
                0 => {}
                1 => {
                    if row_used || col_used[j] {
                        return false;
                    }
                    row_used = true;
                    col_used[j] = true;
                }
                _ => return false,
            }
        }
    }
    true
}

/// Verifies that `c` is the implicit subunit-Monge product of `a` and `b`, i.e. that
/// `P_C^Σ(i,k) = min_j (P_A^Σ(i,j) + P_B^Σ(j,k))` holds everywhere.
pub fn verify_product_sub(
    a: &SubPermutationMatrix,
    b: &SubPermutationMatrix,
    c: &SubPermutationMatrix,
) -> bool {
    if a.cols_len() != b.rows_len() || c.rows_len() != a.rows_len() || c.cols_len() != b.cols_len()
    {
        return false;
    }
    let da = DistributionMatrix::from_sub_permutation(a);
    let db = DistributionMatrix::from_sub_permutation(b);
    let dc = DistributionMatrix::from_sub_permutation(c);
    let expected = min_plus_distribution(&da, &db);
    for i in 0..=a.rows_len() {
        for k in 0..=b.cols_len() {
            if dc.get(i, k) != expected[i][k] {
                return false;
            }
        }
    }
    true
}

/// Verifies that `c = a ⊡ b` for permutation matrices.
pub fn verify_product(a: &PermutationMatrix, b: &PermutationMatrix, c: &PermutationMatrix) -> bool {
    verify_product_sub(&a.to_sub(), &b.to_sub(), &c.to_sub())
}

/// Returns the explicit distribution matrix of a sub-permutation matrix as
/// `Vec<Vec<i64>>`, convenient for feeding [`is_monge`] / [`is_subunit_monge`].
pub fn explicit_distribution(p: &SubPermutationMatrix) -> Vec<Vec<i64>> {
    let d = DistributionMatrix::from_sub_permutation(p);
    (0..=p.rows_len())
        .map(|i| (0..=p.cols_len()).map(|j| i64::from(d.get(i, j))).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steady_ant;
    use rand::prelude::*;

    #[test]
    fn monge_check_accepts_distribution_matrices() {
        let p = PermutationMatrix::from_rows(vec![3, 0, 2, 1]);
        let m = explicit_distribution(&p.to_sub());
        assert!(is_monge(&m));
        assert!(is_subunit_monge(&m));
    }

    #[test]
    fn monge_check_rejects_non_monge() {
        let m = vec![vec![0, 1], vec![1, 3]];
        assert!(!is_monge(&m));
    }

    #[test]
    fn subunit_check_rejects_plain_monge() {
        // Monge but not a distribution matrix of a sub-permutation matrix
        // (finite difference of 2).
        let m = vec![vec![0, 0, 0], vec![0, 1, 2], vec![0, 0, 0]];
        assert!(!is_subunit_monge(&m));
    }

    #[test]
    fn verify_product_accepts_steady_ant_output() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..24).collect();
        v.shuffle(&mut rng);
        let a = PermutationMatrix::from_rows(v.clone());
        v.shuffle(&mut rng);
        let b = PermutationMatrix::from_rows(v);
        let c = steady_ant::mul(&a, &b);
        assert!(verify_product(&a, &b, &c));
    }

    #[test]
    fn verify_product_rejects_wrong_answer() {
        let a = PermutationMatrix::from_rows(vec![1, 0, 2]);
        let b = PermutationMatrix::from_rows(vec![2, 1, 0]);
        let wrong = PermutationMatrix::identity(3);
        let right = steady_ant::mul(&a, &b);
        if wrong != right {
            assert!(!verify_product(&a, &b, &wrong));
        }
        assert!(verify_product(&a, &b, &right));
    }
}
