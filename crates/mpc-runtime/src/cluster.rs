//! The simulated cluster and its O(1)-round primitives.

use crate::config::MpcConfig;
use crate::costs;
use crate::distvec::DistVec;
use crate::faults::{FaultKind, FaultRecord};
use crate::ledger::{Ledger, Superstep};
use rayon::prelude::*;

/// Pure compute kernels: the parallel halves of the primitives.
///
/// Everything in this module is a function of its inputs alone — no ledger, no
/// `&mut Cluster` — which is what allows it to fan out over worker threads
/// while the accounting stays a single deterministic step on the calling
/// thread. Each kernel produces output whose order is independent of the
/// thread count.
mod compute {
    use rayon::prelude::*;

    /// Splits items evenly across machines (block distribution). Each item is
    /// moved exactly once — O(n) regardless of the machine count.
    pub(super) fn balance<T: Send>(items: Vec<T>, machines: usize) -> Vec<Vec<T>> {
        let m = machines.max(1);
        let per = items.len().div_ceil(m).max(1);
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(m);
        let mut iter = items.into_iter();
        for _ in 0..m {
            parts.push(iter.by_ref().take(per).collect());
        }
        // More items than m * per can only happen when machines was clamped
        // from 0; append the leftovers to the last machine.
        let rest: Vec<T> = iter.collect();
        if !rest.is_empty() {
            parts.last_mut().expect("at least one machine").extend(rest);
        }
        parts
    }

    /// Applies `f` to every machine's borrowed slice concurrently.
    pub(super) fn per_part<T, U, F>(parts: &[Vec<T>], f: F) -> Vec<Vec<U>>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> Vec<U> + Send + Sync,
    {
        parts
            .par_iter()
            .enumerate()
            .map(|(i, part)| f(i, part.as_slice()))
            .collect()
    }

    /// Applies `f` to every machine's owned part concurrently.
    pub(super) fn per_part_owned<T, U, F>(parts: Vec<Vec<T>>, f: F) -> Vec<Vec<U>>
    where
        T: Send,
        U: Send,
        F: Fn(Vec<T>) -> Vec<U> + Send + Sync,
    {
        parts.into_par_iter().map(f).collect()
    }

    /// Per-machine exclusive prefix sums in three phases: local pair building
    /// (parallel), a scan over the machine totals (sequential, `O(machines)`),
    /// and base-offset application (parallel). Mirrors the Lemma 2.4 structure:
    /// only the per-machine totals cross machine boundaries.
    pub(super) fn prefix_sums<T, F>(parts: Vec<Vec<T>>, weight: F) -> Vec<Vec<(T, u64)>>
    where
        T: Send,
        F: Fn(&T) -> u64 + Send + Sync,
    {
        let local: Vec<(Vec<(T, u64)>, u64)> = parts
            .into_par_iter()
            .map(|part| {
                let mut running = 0u64;
                let pairs: Vec<(T, u64)> = part
                    .into_iter()
                    .map(|item| {
                        let w = weight(&item);
                        let out = (item, running);
                        running += w;
                        out
                    })
                    .collect();
                (pairs, running)
            })
            .collect();

        let mut bases = Vec::with_capacity(local.len());
        let mut running = 0u64;
        for (_, total) in &local {
            bases.push(running);
            running += total;
        }

        local
            .into_par_iter()
            .zip(bases.par_iter().copied())
            .map(|((mut pairs, _), base)| {
                for (_, sum) in &mut pairs {
                    *sum += base;
                }
                pairs
            })
            .collect()
    }

    /// Gathers items into key-sorted groups (stable within a group's arrival
    /// order, deterministic at every thread count).
    pub(super) fn gather_groups<T, K, FK>(parts: Vec<Vec<T>>, key: FK) -> Vec<(K, Vec<T>)>
    where
        T: Send,
        K: Ord + Send + Sync,
        FK: Fn(&T) -> K + Send + Sync,
    {
        let items: Vec<T> = parts.into_iter().flatten().collect();
        let mut keyed: Vec<(K, T)> = items.into_par_iter().map(|t| (key(&t), t)).collect();
        keyed.par_sort_by(|a, b| a.0.cmp(&b.0));
        let mut groups: Vec<(K, Vec<T>)> = Vec::new();
        for (k, t) in keyed {
            match groups.last_mut() {
                Some((gk, items)) if *gk == k => items.push(t),
                _ => groups.push((k, vec![t])),
            }
        }
        groups
    }

    /// Greedy packing: largest groups first, each onto the currently lightest
    /// machine (the classical LPT heuristic); mirrors §3.3's "sort them in the
    /// order of decreasing sizes and use greedy packing". Returns the machine
    /// of every group and the per-machine loads.
    pub(super) fn pack_groups(sizes: &[usize], machines: usize) -> (Vec<usize>, Vec<usize>) {
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by_key(|&g| std::cmp::Reverse(sizes[g]));
        let mut machine_of_group = vec![0usize; sizes.len()];
        let mut loads = vec![0usize; machines];
        for &g in &order {
            let target = (0..machines).min_by_key(|&i| loads[i]).unwrap_or(0);
            machine_of_group[g] = target;
            loads[target] += sizes[g];
        }
        (machine_of_group, loads)
    }
}

/// A simulated MPC cluster: machine layout, space budget and accounting ledger.
///
/// Every primitive runs in **two phases**:
///
/// 1. **Compute** — the per-machine local work, executed by pure kernels in the
///    private `compute` module. These fan out over the rayon thread pool and
///    never borrow the ledger, so any number of worker threads can participate.
/// 2. **Account** — one deterministic step on the calling thread that applies
///    the superstep's [`Superstep`] receipt (rounds + communication) and
///    observes the resulting load profile.
///
/// The accounting is strictly per the MPC model — the simulator's own
/// parallelism is an execution detail, and rounds, communication, and outputs
/// are bit-identical at every thread count (`RAYON_NUM_THREADS=1` included).
pub struct Cluster {
    config: MpcConfig,
    ledger: Ledger,
    phase: Option<String>,
    /// Enclosing phase scope (see [`Cluster::set_phase_scope`]); prefixes every
    /// phase label as `scope/phase`.
    scope: Option<String>,
    /// Cached effective label (`scope/phase`, or whichever half is set).
    label: Option<String>,
    /// 1-based superstep counter: advanced once per *communicating* primitive
    /// (any charge with `rounds > 0`). Purely-local maps do not advance it —
    /// in the model they fold into the adjacent communicating superstep.
    superstep: u64,
    /// Index of the next unfired event in `config.faults` (events are sorted
    /// by superstep, so firing is a single forward scan).
    next_fault: usize,
    /// Machines killed since the last [`Cluster::poll_kills`] drain.
    unpolled_kills: Vec<usize>,
}

impl Cluster {
    /// Creates a cluster with the given configuration.
    ///
    /// # Panics
    ///
    /// If the fault plan targets a machine the cluster does not have, or
    /// schedules a kill on a single-machine cluster (a kill destroys the
    /// machine's memory; recovery needs a surviving machine holding the
    /// checkpoint replica, so kills require `machines ≥ 2`).
    pub fn new(config: MpcConfig) -> Self {
        if let Some(max) = config.faults.max_machine() {
            assert!(
                max < config.machines,
                "fault plan targets machine {max}, but the cluster has only {} machines",
                config.machines
            );
        }
        assert!(
            !config.faults.has_kills() || config.machines >= 2,
            "kill faults require at least 2 machines: recovery re-derives the lost \
             shard from a checkpoint replica on a surviving machine"
        );
        Self {
            config,
            ledger: Ledger::default(),
            phase: None,
            scope: None,
            label: None,
            superstep: 0,
            next_fault: 0,
            unpolled_kills: Vec::new(),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// The accounting ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Number of rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.ledger.rounds
    }

    /// Resets the ledger and the fault/superstep state (configuration is kept):
    /// the superstep counter returns to 0 and the fault plan re-arms from its
    /// first event, so a reset cluster replays its schedule identically.
    pub fn reset_ledger(&mut self) {
        self.ledger = Ledger::default();
        self.superstep = 0;
        self.next_fault = 0;
        self.unpolled_kills.clear();
    }

    /// The current superstep index (1-based; 0 before the first communicating
    /// primitive). Advanced once per primitive that charges `rounds > 0`,
    /// deterministically at every thread count — this is the clock
    /// [`crate::FaultPlan`] events fire against.
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// Drains the machines killed since the last poll, in firing order.
    ///
    /// The runtime only detects and accounts the kill; re-deriving whatever
    /// the machine held is the calling algorithm's job (e.g. the LIS pipeline
    /// restores the killed machine's merge-tree shard from level checkpoints
    /// under a `recovery-L<k>` scope). Polling between phases is enough: the
    /// queue preserves every kill until drained.
    pub fn poll_kills(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.unpolled_kills)
    }

    /// Advances the superstep clock by one barrier and fires every fault event
    /// that has come due: each firing is recorded in the ledger (delays also
    /// accumulate into [`Ledger::stall_rounds`]) and kills are queued for
    /// [`Cluster::poll_kills`].
    fn bump_superstep(&mut self) {
        self.superstep += 1;
        self.ledger
            .note_superstep(self.superstep, self.label.as_deref());
        while let Some(event) = self.config.faults.events().get(self.next_fault) {
            if event.superstep > self.superstep {
                break;
            }
            let event = *event;
            self.next_fault += 1;
            self.ledger.record_fault(FaultRecord {
                superstep: self.superstep,
                machine: event.machine,
                kind: event.kind,
                phase: self.label.clone(),
            });
            if event.kind == FaultKind::Kill {
                self.unpolled_kills.push(event.machine);
            }
        }
    }

    /// Applies a superstep receipt on the calling thread, advancing the
    /// superstep clock first when the receipt is a communicating one.
    fn apply_step(&mut self, step: Superstep) {
        if step.rounds > 0 {
            self.bump_superstep();
        }
        self.ledger.apply(step, self.label.as_deref());
    }

    /// Sets the label under which subsequent rounds are attributed
    /// (pass `None` to clear).
    pub fn set_phase<S: Into<String>>(&mut self, label: Option<S>) {
        self.phase = label.map(Into::into);
        self.relabel();
    }

    /// Sets an enclosing phase *scope*: while set, every phase label (including
    /// the labels sub-algorithms set via [`Cluster::set_phase`]) is attributed
    /// to the ledger as `scope/phase`. This is how a driver (e.g. the LIS merge
    /// loop) gets a per-level breakdown of the phases its inner `⊡` batches
    /// run — `lis-merge-L2/combine-route` rather than a global `combine-route`
    /// bucket. Pass `None` to clear.
    pub fn set_phase_scope<S: Into<String>>(&mut self, scope: Option<S>) {
        self.scope = scope.map(Into::into);
        self.relabel();
    }

    fn relabel(&mut self) {
        self.label = match (self.scope.as_deref(), self.phase.as_deref()) {
            (Some(s), Some(p)) => Some(format!("{s}/{p}")),
            (Some(s), None) => Some(s.to_string()),
            (None, Some(p)) => Some(p.to_string()),
            (None, None) => None,
        };
    }

    /// Manually charges `rounds` rounds (for modelling a step outside the provided
    /// primitives). Advances the superstep clock when `rounds > 0`.
    pub fn charge_rounds(&mut self, primitive: &'static str, rounds: u64) {
        if rounds > 0 {
            self.bump_superstep();
        }
        self.ledger.charge(primitive, rounds, self.label.as_deref());
    }

    /// Manually charges a full superstep receipt — rounds *and* communication —
    /// for modelling a communicating step outside the provided primitives
    /// (e.g. the checkpoint-replication and replica-restore shuffles of a
    /// recovery layer). Advances the superstep clock when `rounds > 0`.
    pub fn charge_superstep(&mut self, primitive: &'static str, rounds: u64, communication: u64) {
        self.apply_step(Superstep::new(primitive, rounds, communication));
    }

    /// The accounting phase of a primitive: applies the cost receipt, then
    /// observes the output's load profile. Runs on the calling thread only.
    fn account<T>(&mut self, step: Superstep, out: &DistVec<T>) {
        let context = step.primitive;
        self.apply_step(step);
        self.observe(out, context);
    }

    fn observe<T>(&mut self, dv: &DistVec<T>, context: &'static str) {
        let violated =
            self.ledger
                .observe_loads(dv.loads(), self.config.space, self.label.as_deref());
        if violated && self.config.enforce_space {
            panic!(
                "MPC space budget exceeded in `{context}`: max load {} > s = {} \
                 (n = {}, δ = {})",
                dv.max_load(),
                self.config.space,
                self.config.n,
                self.config.delta
            );
        }
    }

    // ---------------------------------------------------------------------------
    // Data placement
    // ---------------------------------------------------------------------------

    /// Places the input on the cluster (the model assumes the input starts out
    /// distributed, so this charges no rounds).
    pub fn distribute<T: Send>(&mut self, items: Vec<T>) -> DistVec<T> {
        let dv = DistVec::from_parts(compute::balance(items, self.config.machines));
        self.account(Superstep::new("distribute", costs::DISTRIBUTE, 0), &dv);
        dv
    }

    /// Reads the final result off the cluster (not charged; do not use mid-algorithm).
    pub fn collect<T>(&mut self, dv: DistVec<T>) -> Vec<T> {
        dv.into_inner()
    }

    // ---------------------------------------------------------------------------
    // Local computation (no communication)
    // ---------------------------------------------------------------------------

    /// Applies `f` to every item locally on its machine. Charges no rounds — purely
    /// local work is folded into the adjacent communicating supersteps, as in the
    /// model.
    pub fn map<T, U, F>(&mut self, dv: &DistVec<T>, f: F) -> DistVec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let parts = compute::per_part(&dv.parts, |_, part| part.iter().map(&f).collect());
        let out = DistVec::from_parts(parts);
        self.account(Superstep::local("map"), &out);
        out
    }

    /// Applies `f` to every machine's local slice, producing a new local slice.
    /// Charges no rounds (purely local).
    pub fn map_parts<T, U, F>(&mut self, dv: &DistVec<T>, f: F) -> DistVec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> Vec<U> + Sync,
    {
        let parts = compute::per_part(&dv.parts, |i, part| f(i, part));
        let out = DistVec::from_parts(parts);
        self.account(Superstep::local("map_parts"), &out);
        out
    }

    // ---------------------------------------------------------------------------
    // GSZ primitives
    // ---------------------------------------------------------------------------

    /// Deterministic sorting (Lemma 2.5): sorts all items by `key` and rebalances.
    pub fn sort_by_key<T, K, F>(&mut self, dv: DistVec<T>, key: F) -> DistVec<T>
    where
        T: Send,
        K: Ord + Send,
        F: Fn(&T) -> K + Sync,
    {
        let total = dv.len() as u64;
        let mut items: Vec<T> = dv.into_inner();
        items.par_sort_by(|a, b| key(a).cmp(&key(b)));
        let out = DistVec::from_parts(compute::balance(items, self.config.machines));
        self.account(Superstep::new("sort", costs::SORT, total), &out);
        out
    }

    /// Prefix sums (Lemma 2.4): returns, for every item in the global order of `dv`,
    /// the sum of `weight` over all strictly earlier items (exclusive prefix sum),
    /// paired with the item.
    pub fn prefix_sums<T, F>(&mut self, dv: DistVec<T>, weight: F) -> DistVec<(T, u64)>
    where
        T: Send,
        F: Fn(&T) -> u64 + Sync,
    {
        // Per-machine partial sums are exchanged (o(s) words); items stay in place.
        let machines = dv.machines() as u64;
        let parts = compute::prefix_sums(dv.parts, &weight);
        let out = DistVec::from_parts(parts);
        self.account(
            Superstep::new("prefix_sum", costs::PREFIX_SUM, machines),
            &out,
        );
        out
    }

    /// Offline rank searching (Lemma 2.6), generalized to *grouped* queries: for
    /// every query, counts the values that share its group key and are strictly
    /// smaller than the query value. Returns each query paired with its count, in an
    /// arbitrary (rebalanced) distribution.
    pub fn rank_search<T, Q, K, FV, FQ>(
        &mut self,
        values: &DistVec<T>,
        vkey: FV,
        queries: DistVec<Q>,
        qkey: FQ,
    ) -> DistVec<(Q, u64)>
    where
        T: Sync,
        Q: Send,
        K: Ord + Send + Sync,
        FV: Fn(&T) -> (K, u64) + Sync,
        FQ: Fn(&Q) -> (K, u64) + Sync,
    {
        let communication = values.len() as u64 + 2 * queries.len() as u64;

        // Globally sort the value keys once; answer each query by binary search in
        // its group's slice. (The simulated cost model charges the sort +
        // prefix-sum rounds in the accounting phase.)
        let mut keyed: Vec<(K, u64)> =
            compute::per_part(&values.parts, |_, part| part.iter().map(&vkey).collect())
                .into_iter()
                .flatten()
                .collect();
        keyed.par_sort();
        let answer = |q: &Q| -> u64 {
            let (group, threshold) = qkey(q);
            let lo = keyed.partition_point(|(g, _)| *g < group);
            let hi = keyed[lo..].partition_point(|(g, v)| *g == group && *v < threshold);
            hi as u64
        };
        let parts = compute::per_part_owned(queries.parts, |part| {
            part.into_iter()
                .map(|q| {
                    let c = answer(&q);
                    (q, c)
                })
                .collect()
        });
        let out = DistVec::from_parts(parts);
        self.account(
            Superstep::new("rank_search", costs::RANK_SEARCH, communication),
            &out,
        );
        out
    }

    /// Batched rank-search packages (the §3.2 H-ary tree-descent primitive): like
    /// [`Cluster::rank_search`], but every query is a *package* of several
    /// thresholds against one group key, answered together in one `O(1)`-round
    /// exchange. For each query the result holds, per threshold, the number of
    /// values sharing the query's group key that are strictly smaller.
    ///
    /// This is how the colored H-ary tree of the paper is queried: a descent step
    /// sends one package per tree node naming the boundaries it needs, and the
    /// machines holding that node's points answer all boundaries at once.
    pub fn rank_search_multi<T, Q, K, FV, FQ>(
        &mut self,
        values: &DistVec<T>,
        vkey: FV,
        queries: DistVec<Q>,
        qkey: FQ,
    ) -> DistVec<(Q, Vec<u64>)>
    where
        T: Sync,
        Q: Send + Sync,
        K: Ord + Send + Sync,
        FV: Fn(&T) -> (K, u64) + Sync,
        FQ: Fn(&Q) -> (K, Vec<u64>) + Sync,
    {
        let n_values = values.len() as u64;
        let n_queries = queries.len() as u64;
        let mut keyed: Vec<(K, u64)> =
            compute::per_part(&values.parts, |_, part| part.iter().map(&vkey).collect())
                .into_iter()
                .flatten()
                .collect();
        keyed.par_sort();
        let answered: Vec<(Q, Vec<u64>)> = compute::per_part_owned(queries.parts, |part| {
            part.into_iter()
                .map(|q| {
                    let (group, thresholds) = qkey(&q);
                    let lo = keyed.partition_point(|(g, _)| *g < group);
                    let slice = &keyed[lo..];
                    let counts: Vec<u64> = thresholds
                        .into_iter()
                        .map(|t| slice.partition_point(|(g, v)| *g == group && *v < t) as u64)
                        .collect();
                    (q, counts)
                })
                .collect()
        })
        .into_iter()
        .flatten()
        .collect();
        // Communication: every value key moves once; every package moves to its
        // group and back with one word per threshold answer.
        let thresholds_total: u64 = answered.iter().map(|(_, c)| c.len() as u64).sum();
        let communication = n_values + 2 * n_queries + thresholds_total;
        // Lemma 2.6 routes packages to their groups and back; the answers come
        // home rebalanced.
        let out = DistVec::from_parts(compute::balance(answered, self.config.machines));
        self.account(
            Superstep::new("rank_search_multi", costs::RANK_SEARCH_MULTI, communication),
            &out,
        );
        out
    }

    /// Shared gather phase of [`Cluster::group_map`] and
    /// [`Cluster::group_map_rebalanced`]: collects `parts` into key-sorted
    /// groups, picks the LPT packing and accounts the packed load profile
    /// *before* any group runs, so strict clusters refuse oversized groups up
    /// front. Returns the groups with their target machines.
    #[allow(clippy::type_complexity)]
    fn gather_packed<T, K, FK>(
        &mut self,
        parts: Vec<Vec<T>>,
        key: FK,
        primitive: &'static str,
    ) -> (Vec<(K, Vec<T>)>, Vec<usize>)
    where
        T: Send,
        K: Ord + Send + Sync,
        FK: Fn(&T) -> K + Sync,
    {
        let groups = compute::gather_groups(parts, &key);
        let sizes: Vec<usize> = groups.iter().map(|(_, items)| items.len()).collect();
        let (machine_of_group, loads) = compute::pack_groups(&sizes, self.config.machines);
        let violated = self.ledger.observe_loads(
            loads.iter().copied(),
            self.config.space,
            self.label.as_deref(),
        );
        if violated && self.config.enforce_space {
            panic!(
                "MPC space budget exceeded in `{primitive}`: max packed load {} > s = {}",
                loads.iter().max().copied().unwrap_or(0),
                self.config.space
            );
        }
        (groups, machine_of_group)
    }

    /// Groups items by key, places every group on a single machine (greedy packing)
    /// and applies `f` to each group. The group key and its items are passed by
    /// value; the outputs of all groups are left distributed as packed.
    ///
    /// This is the workhorse for "solve each subproblem locally" steps; a group
    /// larger than the space budget is a space violation.
    pub fn group_map<T, K, U, FK, F>(&mut self, dv: DistVec<T>, key: FK, f: F) -> DistVec<U>
    where
        T: Send,
        K: Ord + Send + std::hash::Hash + Clone + Sync,
        U: Send,
        FK: Fn(&T) -> K + Sync,
        F: Fn(&K, Vec<T>) -> Vec<U> + Sync + Send,
    {
        let total = dv.len() as u64;
        let m = self.config.machines;
        self.apply_step(Superstep::new("group_map", costs::GROUP_MAP, total));
        let (groups, machine_of_group) = self.gather_packed(dv.parts, key, "group_map");

        // Compute: run every group concurrently, then collect results onto their
        // machines (a deterministic sequential scatter).
        let results: Vec<(usize, Vec<U>)> = groups
            .into_par_iter()
            .zip(machine_of_group.par_iter().copied())
            .map(|((k, items), machine)| (machine, f(&k, items)))
            .collect();
        let mut parts: Vec<Vec<U>> = (0..m).map(|_| Vec::new()).collect();
        for (machine, mut out) in results {
            parts[machine].append(&mut out);
        }
        let out = DistVec::from_parts(parts);
        self.observe(&out, "group_map");
        out
    }

    /// Like [`Cluster::group_map`], but the combined group outputs leave on the
    /// wire: they are *rebalanced* across all machines instead of staying packed
    /// on the machine that ran their group.
    ///
    /// This is the right primitive for **emission** steps — a group inspects its
    /// items and produces messages addressed to the *next* superstep's groups
    /// (e.g. the §3.3 routing replicating each union point to the subgrids whose
    /// pierced interval contains its color, or the Hunt–Szymanski match-pair
    /// join). In the model those messages are delivered directly to their
    /// destinations: replication fans out over an `O(1)`-round broadcast tree
    /// and no machine ever *holds* the full emitted set, so the honest resident
    /// profile between the supersteps is the balanced one. The output volume is
    /// charged as communication on top of the input shuffle; the bound that
    /// remains the caller's obligation — and is checked by the next
    /// key-grouping superstep — is that every *receiving* group fits in `s`.
    pub fn group_map_rebalanced<T, K, U, FK, F>(
        &mut self,
        dv: DistVec<T>,
        key: FK,
        f: F,
    ) -> DistVec<U>
    where
        T: Send,
        K: Ord + Send + std::hash::Hash + Clone + Sync,
        U: Send,
        FK: Fn(&T) -> K + Sync,
        F: Fn(&K, Vec<T>) -> Vec<U> + Sync + Send,
    {
        let total = dv.len() as u64;
        let m = self.config.machines;
        let (groups, _) = self.gather_packed(dv.parts, key, "group_map_rebalanced");

        // Compute: run every group concurrently; outputs keep group-key order.
        let emitted: Vec<U> = groups
            .into_par_iter()
            .map(|(k, items)| f(&k, items))
            .collect::<Vec<Vec<U>>>()
            .into_iter()
            .flatten()
            .collect();
        let communication = total + emitted.len() as u64;
        let out = DistVec::from_parts(compute::balance(emitted, m));
        self.account(
            Superstep::new("group_map_rebalanced", costs::GROUP_MAP, communication),
            &out,
        );
        out
    }

    /// Keyed co-group (sort-join): groups *two* distributed vectors by a shared
    /// key space, places every key's combined group on one machine (greedy
    /// packing, like [`Cluster::group_map`]) and applies `f` to the key with
    /// both sides' items (each in its global arrival order). Keys present on
    /// only one side still run, with the other side empty.
    ///
    /// This is the routing primitive for "join a query stream against resident
    /// data" steps — e.g. the witness traceback delivering per-block
    /// reconstruction queries to the machines holding those blocks' elements —
    /// and costs the same `O(1)` rounds as a group map (one sort + prefix-sum
    /// packing + route). A combined group larger than the space budget is a
    /// space violation.
    pub fn cogroup_map<A, B, K, U, FA, FB, F>(
        &mut self,
        a: DistVec<A>,
        b: DistVec<B>,
        key_a: FA,
        key_b: FB,
        f: F,
    ) -> DistVec<U>
    where
        A: Send,
        B: Send,
        K: Ord + Send + std::hash::Hash + Clone + Sync,
        U: Send,
        FA: Fn(&A) -> K + Sync,
        FB: Fn(&B) -> K + Sync,
        F: Fn(&K, Vec<A>, Vec<B>) -> Vec<U> + Sync + Send,
    {
        enum Side<A, B> {
            Left(A),
            Right(B),
        }
        let total = (a.len() + b.len()) as u64;
        let m = self.config.machines;
        self.apply_step(Superstep::new("cogroup_map", costs::GROUP_MAP, total));
        // Tag the two streams and gather them as one keyed stream; within a
        // group, gathering is stable, so each side keeps its own global order.
        let mut parts: Vec<Vec<Side<A, B>>> = a
            .parts
            .into_iter()
            .map(|p| p.into_iter().map(Side::Left).collect())
            .collect();
        parts.resize_with(parts.len().max(b.parts.len()).max(m), Vec::new);
        for (i, p) in b.parts.into_iter().enumerate() {
            parts[i].extend(p.into_iter().map(Side::Right));
        }
        let (groups, machine_of_group) = self.gather_packed(
            parts,
            |side: &Side<A, B>| match side {
                Side::Left(x) => key_a(x),
                Side::Right(y) => key_b(y),
            },
            "cogroup_map",
        );
        let results: Vec<(usize, Vec<U>)> = groups
            .into_par_iter()
            .zip(machine_of_group.par_iter().copied())
            .map(|((k, items), machine)| {
                let mut lefts = Vec::new();
                let mut rights = Vec::new();
                for side in items {
                    match side {
                        Side::Left(x) => lefts.push(x),
                        Side::Right(y) => rights.push(y),
                    }
                }
                (machine, f(&k, lefts, rights))
            })
            .collect();
        let mut parts: Vec<Vec<U>> = (0..m).map(|_| Vec::new()).collect();
        for (machine, mut out) in results {
            parts[machine].append(&mut out);
        }
        let out = DistVec::from_parts(parts);
        self.observe(&out, "cogroup_map");
        out
    }

    /// Concatenates two distributed vectors machine-wise (no data movement, no
    /// rounds): machine `i` simply owns both its parts.
    pub fn concat<T: Send>(&mut self, a: DistVec<T>, b: DistVec<T>) -> DistVec<T> {
        let mut parts: Vec<Vec<T>> = a.parts;
        let m = parts.len().max(b.parts.len()).max(self.config.machines);
        parts.resize_with(m, Vec::new);
        for (i, mut p) in b.parts.into_iter().enumerate() {
            parts[i].append(&mut p);
        }
        let out = DistVec::from_parts(parts);
        self.account(Superstep::local("concat"), &out);
        out
    }

    /// Keeps only the items for which `keep` returns true (purely local).
    pub fn filter<T, F>(&mut self, dv: DistVec<T>, keep: F) -> DistVec<T>
    where
        T: Send,
        F: Fn(&T) -> bool + Sync,
    {
        let parts = compute::per_part_owned(dv.parts, |part| {
            part.into_iter().filter(|t| keep(t)).collect()
        });
        let out = DistVec::from_parts(parts);
        self.account(Superstep::local("filter"), &out);
        out
    }

    /// Balanced multicast: applies `f` to every item, flattening the results,
    /// with the copies *leaving on the wire* — rebalanced across machines —
    /// instead of piling up beside their source item.
    ///
    /// Use this when one item fans out into many addressed copies (an interval
    /// broadcast): in the model the copies are created down an `O(1)`-depth
    /// broadcast tree in which every relay sends and receives at most `s`
    /// words per round, so no machine ever holds one item's full fan-out. The
    /// receiving side's budget is the caller's obligation, checked by the next
    /// key-grouping superstep. Charges [`costs::MULTICAST`] rounds and the
    /// emitted volume as communication.
    pub fn flat_map_rebalanced<T, U, F>(&mut self, dv: &DistVec<T>, f: F) -> DistVec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> Vec<U> + Sync,
    {
        let emitted: Vec<U> =
            compute::per_part(&dv.parts, |_, part| part.iter().flat_map(&f).collect())
                .into_iter()
                .flatten()
                .collect();
        let communication = emitted.len() as u64;
        let out = DistVec::from_parts(compute::balance(emitted, self.config.machines));
        self.account(
            Superstep::new("multicast", costs::MULTICAST, communication),
            &out,
        );
        out
    }

    /// Applies `f` to every item and flattens the results (purely local).
    pub fn flat_map<T, U, F>(&mut self, dv: &DistVec<T>, f: F) -> DistVec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> Vec<U> + Sync,
    {
        let parts = compute::per_part(&dv.parts, |_, part| part.iter().flat_map(&f).collect());
        let out = DistVec::from_parts(parts);
        self.account(Superstep::local("flat_map"), &out);
        out
    }

    /// Creates an empty distributed vector.
    pub fn empty<T: Send>(&mut self) -> DistVec<T> {
        DistVec::from_parts((0..self.config.machines).map(|_| Vec::new()).collect())
    }

    /// Broadcasts a small value to all machines (Õ(s) words per machine).
    pub fn broadcast<T: Clone>(&mut self, value: T) -> T {
        self.apply_step(Superstep::new(
            "broadcast",
            costs::BROADCAST,
            self.config.machines as u64,
        ));
        value
    }

    /// Computes the inverse of a permutation given as `(index, value)` pairs
    /// (Lemma 2.3): each pair `(i, p_i)` is routed to the machine responsible for
    /// `p_i` and stored as `(p_i, i)`.
    pub fn inverse_permutation(&mut self, dv: DistVec<(u32, u32)>) -> DistVec<(u32, u32)> {
        let total = dv.len() as u64;
        let mut items: Vec<(u32, u32)> = compute::per_part_owned(dv.parts, |part| {
            part.into_iter().map(|(i, p)| (p, i)).collect()
        })
        .into_iter()
        .flatten()
        .collect();
        items.par_sort_unstable();
        let out = DistVec::from_parts(compute::balance(items, self.config.machines));
        self.account(
            Superstep::new("inverse_permutation", costs::INVERSE_PERMUTATION, total),
            &out,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn cluster(n: usize, delta: f64) -> Cluster {
        Cluster::new(MpcConfig::new(n, delta))
    }

    #[test]
    fn distribute_balances_items() {
        let mut cl = cluster(1000, 0.5);
        let dv = cl.distribute((0..1000u32).collect());
        assert_eq!(dv.len(), 1000);
        assert!(dv.max_load() <= cl.config().space);
        assert_eq!(cl.rounds(), 0);
    }

    #[test]
    fn sort_by_key_sorts_globally() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cl = cluster(5000, 0.5);
        let mut items: Vec<u32> = (0..5000).collect();
        items.shuffle(&mut rng);
        let dv = cl.distribute(items);
        let sorted = cl.sort_by_key(dv, |&x| x);
        let flat = sorted.into_inner();
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cl.rounds(), costs::SORT);
    }

    #[test]
    fn prefix_sums_are_exclusive() {
        let mut cl = cluster(100, 0.5);
        let dv = cl.distribute(vec![1u64; 100]);
        let ps = cl.prefix_sums(dv, |&w| w);
        let flat = ps.into_inner();
        for (i, (_, sum)) in flat.iter().enumerate() {
            assert_eq!(*sum, i as u64);
        }
    }

    #[test]
    fn prefix_sums_cross_machine_bases_match_sequential() {
        // Non-uniform weights across many machines exercise the base-offset
        // phase of the parallel scan.
        let mut cl = Cluster::new(MpcConfig::new(4000, 0.5).with_machines(13));
        let weights: Vec<u64> = (0..4000u64).map(|i| i % 7).collect();
        let dv = cl.distribute(weights.clone());
        let flat = cl.prefix_sums(dv, |&w| w).into_inner();
        let mut running = 0u64;
        for (i, (w, sum)) in flat.into_iter().enumerate() {
            assert_eq!(w, weights[i]);
            assert_eq!(sum, running, "at index {i}");
            running += w;
        }
    }

    #[test]
    fn rank_search_counts_smaller_values_per_group() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cl = cluster(2000, 0.5);
        let values: Vec<(u32, u64)> = (0..2000)
            .map(|_| (rng.gen_range(0..5), rng.gen_range(0..1000)))
            .collect();
        let queries: Vec<(u32, u64)> = (0..500)
            .map(|_| (rng.gen_range(0..6), rng.gen_range(0..1100)))
            .collect();
        let vdv = cl.distribute(values.clone());
        let qdv = cl.distribute(queries);
        let answered = cl.rank_search(&vdv, |&v| v, qdv, |&q| q);
        for ((group, threshold), count) in answered.into_inner() {
            let expected = values
                .iter()
                .filter(|&&(g, v)| g == group && v < threshold)
                .count() as u64;
            assert_eq!(count, expected);
        }
    }

    #[test]
    fn rank_search_multi_answers_every_threshold() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut cl = cluster(3000, 0.5);
        let values: Vec<(u32, u64)> = (0..3000)
            .map(|_| (rng.gen_range(0..7), rng.gen_range(0..500)))
            .collect();
        let queries: Vec<(u32, Vec<u64>)> = (0..200)
            .map(|_| {
                let group = rng.gen_range(0..8);
                let k = rng.gen_range(1..6);
                (group, (0..k).map(|_| rng.gen_range(0..600)).collect())
            })
            .collect();
        let vdv = cl.distribute(values.clone());
        let qdv = cl.distribute(queries);
        let answered = cl.rank_search_multi(&vdv, |&v| v, qdv, |q| (q.0, q.1.clone()));
        for ((group, thresholds), counts) in answered.into_inner() {
            assert_eq!(thresholds.len(), counts.len());
            for (t, c) in thresholds.iter().zip(&counts) {
                let expected = values
                    .iter()
                    .filter(|&&(g, v)| g == group && v < *t)
                    .count() as u64;
                assert_eq!(*c, expected, "group={group} t={t}");
            }
        }
        assert_eq!(cl.rounds(), costs::RANK_SEARCH_MULTI);
    }

    #[test]
    fn group_map_runs_each_group_once() {
        let mut cl = cluster(1000, 0.5);
        let items: Vec<(u32, u32)> = (0..1000).map(|i| (i % 17, i)).collect();
        let dv = cl.distribute(items);
        let out = cl.group_map(
            dv,
            |&(g, _)| g,
            |&g, items| {
                vec![(
                    g,
                    items.len() as u32,
                    items.iter().map(|&(_, v)| v).min().unwrap(),
                )]
            },
        );
        let mut flat = out.into_inner();
        flat.sort_unstable();
        assert_eq!(flat.len(), 17);
        for (g, count, min) in flat {
            let expected = (0..1000u32).filter(|i| i % 17 == g).count() as u32;
            assert_eq!(count, expected);
            assert_eq!(min, g);
        }
    }

    #[test]
    #[should_panic(expected = "space budget exceeded")]
    fn strict_mode_panics_on_oversized_group() {
        let mut cl = Cluster::new(MpcConfig::new(10_000, 0.5).with_space(10).strict());
        let items: Vec<u32> = (0..1000).collect();
        let dv = DistVec::from_parts(vec![items]);
        // All items share one group: cannot fit on a machine with space 10.
        let _ = cl.group_map(dv, |_| 0u32, |_, items| items);
    }

    #[test]
    fn cogroup_map_joins_both_sides_per_key() {
        let mut cl = cluster(1000, 0.5);
        // Left: 2 items per key 0..10; right: 1 query per even key, plus a
        // right-only key 99.
        let left: Vec<(u32, u32)> = (0..20).map(|i| (i % 10, i)).collect();
        let mut right: Vec<(u32, &'static str)> = (0..10).step_by(2).map(|k| (k, "q")).collect();
        right.push((99, "lonely"));
        let ldv = cl.distribute(left);
        let rdv = cl.distribute(right);
        let out = cl.cogroup_map(
            ldv,
            rdv,
            |&(k, _)| k,
            |&(k, _)| k,
            |&k, lefts, rights| vec![(k, lefts.len(), rights.len())],
        );
        let mut flat = out.into_inner();
        flat.sort_unstable();
        assert_eq!(flat.len(), 11);
        for &(k, nl, nr) in &flat {
            if k == 99 {
                assert_eq!((nl, nr), (0, 1));
            } else {
                assert_eq!(nl, 2, "key {k}");
                assert_eq!(nr, usize::from(k % 2 == 0), "key {k}");
            }
        }
        assert_eq!(cl.ledger().primitive_counts["cogroup_map"], 1);
        assert_eq!(cl.rounds(), costs::GROUP_MAP);
    }

    #[test]
    fn cogroup_map_preserves_side_order_within_groups() {
        let mut cl = Cluster::new(MpcConfig::new(600, 0.5).with_machines(7));
        let left: Vec<(u32, u32)> = (0..300).map(|i| (i % 3, i)).collect();
        let right: Vec<(u32, u32)> = (0..90).map(|i| (i % 3, 1000 + i)).collect();
        let ldv = cl.distribute(left);
        let rdv = cl.distribute(right);
        let out = cl.cogroup_map(
            ldv,
            rdv,
            |&(k, _)| k,
            |&(k, _)| k,
            |&k, lefts, rights| {
                // Each side must arrive in its own global order.
                assert!(lefts.windows(2).all(|w| w[0].1 < w[1].1), "key {k}");
                assert!(rights.windows(2).all(|w| w[0].1 < w[1].1), "key {k}");
                vec![(k, lefts.len() + rights.len())]
            },
        );
        let mut flat = out.into_inner();
        flat.sort_unstable();
        assert_eq!(flat, vec![(0, 130), (1, 130), (2, 130)]);
    }

    #[test]
    #[should_panic(expected = "space budget exceeded in `cogroup_map`")]
    fn strict_mode_panics_on_oversized_cogroup() {
        let mut cl = Cluster::new(MpcConfig::new(10_000, 0.5).with_space(10).strict());
        let left: Vec<u32> = (0..30).collect();
        let right: Vec<u32> = (0..30).collect();
        let ldv = cl.distribute(left);
        let rdv = cl.distribute(right);
        let _ = cl.cogroup_map(ldv, rdv, |_| 0u32, |_| 0u32, |_, l, _| l);
    }

    #[test]
    fn group_map_rebalanced_spreads_emitted_copies() {
        // One group emitting far more than s must not overload any machine:
        // the outputs leave on the wire, balanced.
        let mut cl = Cluster::new(MpcConfig::new(400, 0.5).with_space(64).strict());
        let items: Vec<u32> = (0..40).collect();
        let dv = cl.distribute(items);
        let out = cl.group_map_rebalanced(
            dv,
            |_| 0u32,
            |_, items| {
                items
                    .into_iter()
                    .flat_map(|v| (0..10).map(move |c| (v, c)))
                    .collect::<Vec<_>>()
            },
        );
        assert!(out.max_load() <= cl.config().space);
        let mut flat = out.into_inner();
        flat.sort_unstable();
        assert_eq!(flat.len(), 400);
        assert_eq!(flat[0], (0, 0));
        assert_eq!(flat[399], (39, 9));
        assert_eq!(cl.ledger().primitive_counts["group_map_rebalanced"], 1);
    }

    #[test]
    fn flat_map_rebalanced_multicast_is_balanced_and_charged() {
        let mut cl = Cluster::new(MpcConfig::new(100, 0.5).with_space(32).strict());
        let dv = cl.distribute((0..20u32).collect());
        let rounds_before = cl.rounds();
        // Every item fans out 15-fold: piled beside its source this would
        // overload a machine; balanced it fits.
        let out = cl.flat_map_rebalanced(&dv, |&v| (0..15u32).map(|c| (v, c)).collect());
        assert_eq!(out.len(), 300);
        assert!(out.max_load() <= cl.config().space);
        assert_eq!(cl.rounds() - rounds_before, costs::MULTICAST);
        assert!(cl.ledger().communication >= 300);
    }

    #[test]
    fn phase_scope_prefixes_inner_phase_labels() {
        let mut cl = cluster(500, 0.5);
        cl.set_phase_scope(Some("outer-L1"));
        cl.set_phase(Some("inner"));
        let dv = cl.distribute((0..500u32).collect());
        let _ = cl.sort_by_key(dv, |&x| x);
        cl.set_phase(None::<String>);
        cl.charge_rounds("extra", 2); // attributed to the bare scope
        cl.set_phase_scope(None::<String>);
        cl.set_phase(Some("inner"));
        cl.charge_rounds("extra", 1); // unscoped phase
        let ledger = cl.ledger();
        assert_eq!(ledger.rounds_by_phase["outer-L1/inner"], costs::SORT);
        assert_eq!(ledger.rounds_by_phase["outer-L1"], 2);
        assert_eq!(ledger.rounds_by_phase["inner"], 1);
    }

    #[test]
    fn inverse_permutation_matches_direct_inverse() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 300u32;
        let mut perm: Vec<u32> = (0..n).collect();
        perm.shuffle(&mut rng);
        let mut cl = cluster(n as usize, 0.4);
        let pairs: Vec<(u32, u32)> = perm
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u32, p))
            .collect();
        let dv = cl.distribute(pairs);
        let inv = cl.inverse_permutation(dv).into_inner();
        for (p, i) in inv {
            assert_eq!(perm[i as usize], p);
        }
    }

    #[test]
    fn ledger_tracks_phases_and_primitives() {
        let mut cl = cluster(500, 0.5);
        cl.set_phase(Some("setup"));
        let dv = cl.distribute((0..500u32).collect());
        let dv = cl.sort_by_key(dv, |&x| std::cmp::Reverse(x));
        cl.set_phase(Some("work"));
        let _ = cl.sort_by_key(dv, |&x| x);
        assert_eq!(cl.ledger().rounds_by_phase["setup"], costs::SORT);
        assert_eq!(cl.ledger().rounds_by_phase["work"], costs::SORT);
        assert_eq!(cl.ledger().primitive_counts["sort"], 2);
        assert!(cl.ledger().communication >= 1000);
    }

    #[test]
    fn map_charges_no_rounds() {
        let mut cl = cluster(100, 0.5);
        let dv = cl.distribute((0..100u32).collect());
        let doubled = cl.map(&dv, |&x| x * 2);
        assert_eq!(cl.rounds(), 0);
        assert_eq!(doubled.len(), 100);
        assert_eq!(
            doubled.iter().copied().sum::<u32>(),
            (0..100).map(|x| x * 2).sum()
        );
    }

    #[test]
    fn cogroup_map_works_on_a_single_machine() {
        // m = 1: every group lands on machine 0; the join must still run and
        // keep each side's order.
        let mut cl = Cluster::new(MpcConfig::new(200, 0.5).with_machines(1));
        let left: Vec<(u32, u32)> = (0..40).map(|i| (i % 4, i)).collect();
        let right: Vec<(u32, u32)> = (0..12).map(|i| (i % 4, 100 + i)).collect();
        let ldv = cl.distribute(left);
        let rdv = cl.distribute(right);
        let out = cl.cogroup_map(
            ldv,
            rdv,
            |&(k, _)| k,
            |&(k, _)| k,
            |&k, lefts, rights| {
                assert!(lefts.windows(2).all(|w| w[0].1 < w[1].1), "key {k}");
                assert!(rights.windows(2).all(|w| w[0].1 < w[1].1), "key {k}");
                vec![(k, lefts.len(), rights.len())]
            },
        );
        let mut flat = out.into_inner();
        flat.sort_unstable();
        assert_eq!(flat, vec![(0, 10, 3), (1, 10, 3), (2, 10, 3), (3, 10, 3)]);
        assert_eq!(cl.rounds(), costs::GROUP_MAP);
    }

    #[test]
    fn cogroup_map_handles_all_empty_inputs() {
        // Both sides empty (and on a single machine): no groups run, the
        // output is empty on every machine, accounting still happens.
        for machines in [1, 5] {
            let mut cl = Cluster::new(MpcConfig::new(100, 0.5).with_machines(machines));
            let ldv = cl.empty::<(u32, u32)>();
            let rdv = cl.empty::<(u32, u32)>();
            let out = cl.cogroup_map(ldv, rdv, |&(k, _)| k, |&(k, _)| k, |&k, _, _| vec![k]);
            assert_eq!(out.len(), 0, "machines={machines}");
            assert_eq!(out.machines(), machines);
            assert_eq!(cl.rounds(), costs::GROUP_MAP);
            assert_eq!(cl.ledger().space_violations, 0);
        }
    }

    #[test]
    fn cogroup_map_one_sided_empty_still_runs_groups() {
        let mut cl = Cluster::new(MpcConfig::new(100, 0.5).with_machines(1));
        let ldv = cl.distribute(vec![(0u32, 1u32), (1, 2)]);
        let rdv = cl.empty::<(u32, u32)>();
        let out = cl.cogroup_map(
            ldv,
            rdv,
            |&(k, _)| k,
            |&(k, _)| k,
            |&k, lefts, rights| vec![(k, lefts.len(), rights.len())],
        );
        let mut flat = out.into_inner();
        flat.sort_unstable();
        assert_eq!(flat, vec![(0, 1, 0), (1, 1, 0)]);
    }

    #[test]
    fn flat_map_rebalanced_works_on_a_single_machine_and_empty_input() {
        let mut cl = Cluster::new(MpcConfig::new(100, 0.5).with_machines(1));
        let dv = cl.distribute((0..10u32).collect());
        let out = cl.flat_map_rebalanced(&dv, |&v| vec![v, v]);
        let mut flat = out.into_inner();
        flat.sort_unstable();
        assert_eq!(flat.len(), 20);
        assert_eq!(cl.rounds(), costs::MULTICAST);

        // All-empty shards: the multicast emits nothing, charges its rounds,
        // and returns an empty vector with one part per machine.
        for machines in [1, 7] {
            let mut cl = Cluster::new(MpcConfig::new(100, 0.5).with_machines(machines));
            let dv = cl.empty::<u32>();
            let out = cl.flat_map_rebalanced(&dv, |&v| vec![v]);
            assert_eq!(out.len(), 0, "machines={machines}");
            assert_eq!(out.machines(), machines);
            assert_eq!(cl.rounds(), costs::MULTICAST);
        }
    }

    #[test]
    fn group_map_rebalanced_single_machine_and_empty() {
        let mut cl = Cluster::new(MpcConfig::new(100, 0.5).with_machines(1));
        let dv = cl.distribute((0..10u32).collect());
        let out = cl.group_map_rebalanced(dv, |&v| v % 2, |_, items| items);
        assert_eq!(out.len(), 10);

        let empty = cl.empty::<u32>();
        let out = cl.group_map_rebalanced(empty, |&v| v, |_, items| items);
        assert_eq!(out.len(), 0);
        assert_eq!(out.machines(), 1);
    }

    #[test]
    fn fault_events_fire_at_their_supersteps() {
        use crate::faults::{FaultKind, FaultPlan};
        let plan = FaultPlan::delay(0, 1, 3).and_kill(1, 2);
        let mut cl = Cluster::new(MpcConfig::new(1000, 0.5).with_faults(plan));
        cl.set_phase(Some("work"));
        let dv = cl.distribute((0..1000u32).collect());
        assert_eq!(cl.superstep(), 0, "distribute is free: no barrier yet");
        let dv = cl.sort_by_key(dv, |&x| x); // superstep 1 → the delay fires
        assert_eq!(cl.superstep(), 1);
        assert_eq!(cl.ledger().stall_rounds, 3);
        assert!(cl.poll_kills().is_empty(), "no kill yet");
        let _ = cl.sort_by_key(dv, |&x| x); // superstep 2 → the kill fires
        assert_eq!(cl.poll_kills(), vec![1]);
        assert!(cl.poll_kills().is_empty(), "kills drain exactly once");
        let ledger = cl.ledger();
        assert_eq!(ledger.fault_events.len(), 2);
        assert_eq!(ledger.fault_events[0].kind, FaultKind::Delay(3));
        assert_eq!(ledger.fault_events[1].kind, FaultKind::Kill);
        assert_eq!(ledger.fault_events[1].phase.as_deref(), Some("work"));
        assert_eq!(ledger.superstep_spans["work"], (1, 2));
        assert_eq!(
            ledger.rounds,
            2 * costs::SORT,
            "stalls must not add synchronous rounds"
        );
        assert_eq!(ledger.kills(), 1);
    }

    #[test]
    fn past_due_fault_events_fire_at_the_next_barrier() {
        use crate::faults::FaultPlan;
        // Scheduled for superstep 5, but the run has fewer barriers per phase:
        // the event fires as soon as the clock reaches it, never silently
        // skipped while barriers keep happening.
        let mut cl = Cluster::new(MpcConfig::new(1000, 0.5).with_faults(FaultPlan::kill(2, 2)));
        let dv = cl.distribute((0..1000u32).collect());
        let dv = cl.sort_by_key(dv, |&x| x);
        let dv = cl.sort_by_key(dv, |&x| x);
        let _ = cl.sort_by_key(dv, |&x| x);
        assert_eq!(cl.superstep(), 3);
        assert_eq!(cl.poll_kills(), vec![2]);
        // Events beyond the final superstep simply do not fire.
        let ledger = cl.ledger();
        assert_eq!(ledger.fault_events.len(), 1);
        assert_eq!(ledger.fault_events[0].superstep, 2);
    }

    #[test]
    fn reset_ledger_rearms_the_fault_plan() {
        use crate::faults::FaultPlan;
        let mut cl = Cluster::new(MpcConfig::new(1000, 0.5).with_faults(FaultPlan::kill(1, 1)));
        let dv = cl.distribute((0..1000u32).collect());
        let _ = cl.sort_by_key(dv, |&x| x);
        assert_eq!(cl.poll_kills(), vec![1]);
        cl.reset_ledger();
        assert_eq!(cl.superstep(), 0);
        let dv = cl.distribute((0..1000u32).collect());
        let _ = cl.sort_by_key(dv, |&x| x);
        assert_eq!(cl.poll_kills(), vec![1], "schedule replays after reset");
    }

    #[test]
    #[should_panic(expected = "at least 2 machines")]
    fn kill_on_single_machine_cluster_is_rejected() {
        use crate::faults::FaultPlan;
        let cfg = MpcConfig::new(100, 0.5)
            .with_machines(1)
            .with_faults(FaultPlan::kill(0, 1));
        let _ = Cluster::new(cfg);
    }

    #[test]
    #[should_panic(expected = "targets machine")]
    fn fault_plan_must_target_existing_machines() {
        use crate::faults::FaultPlan;
        let cfg = MpcConfig::new(100, 0.5)
            .with_machines(4)
            .with_faults(FaultPlan::delay(9, 1, 1));
        let _ = Cluster::new(cfg);
    }

    #[test]
    fn charge_superstep_advances_clock_and_charges_both_measures() {
        let mut cl = cluster(100, 0.5);
        cl.set_phase(Some("checkpoint"));
        cl.charge_superstep("checkpoint", costs::CHECKPOINT, 42);
        assert_eq!(cl.superstep(), 1);
        assert_eq!(cl.rounds(), costs::CHECKPOINT);
        assert_eq!(cl.ledger().communication, 42);
        assert_eq!(cl.ledger().comm_by_phase["checkpoint"], 42);
        // Zero-round charges are not barriers.
        cl.charge_superstep("free", 0, 0);
        assert_eq!(cl.superstep(), 1);
    }

    #[test]
    fn ledger_identical_across_thread_counts() {
        // The compute/account split must keep accounting off the worker
        // threads: same history, same ledger, at any parallelism.
        let run = || {
            let mut cl = Cluster::new(MpcConfig::new(3000, 0.5));
            let dv = cl.distribute((0..3000u32).rev().collect::<Vec<_>>());
            let dv = cl.sort_by_key(dv, |&x| x);
            let dv = cl.map(&dv, |&x| (x % 37, x));
            let dv = cl.group_map(dv, |&(g, _)| g, |&g, items| vec![(g, items.len() as u32)]);
            let mut flat = dv.into_inner();
            flat.sort_unstable();
            (flat, cl.ledger().clone())
        };
        let sequential = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(run);
        for threads in [2, 4] {
            let parallel = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(run);
            assert_eq!(sequential.0, parallel.0, "outputs at {threads} threads");
            assert_eq!(sequential.1, parallel.1, "ledger at {threads} threads");
        }
    }
}
