//! The simulated cluster and its O(1)-round primitives.

use crate::config::MpcConfig;
use crate::costs;
use crate::distvec::DistVec;
use crate::ledger::Ledger;
use rayon::prelude::*;

/// A simulated MPC cluster: machine layout, space budget and accounting ledger.
///
/// All primitives take `&mut self` so that every data movement is recorded. Per-item
/// and per-group local work runs in parallel with rayon — the simulator is itself a
/// shared-memory parallel program, which is what makes the larger experiments
/// tractable — but the *accounting* is strictly per the MPC model.
pub struct Cluster {
    config: MpcConfig,
    ledger: Ledger,
    phase: Option<String>,
}

impl Cluster {
    /// Creates a cluster with the given configuration.
    pub fn new(config: MpcConfig) -> Self {
        Self {
            config,
            ledger: Ledger::default(),
            phase: None,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// The accounting ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Number of rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.ledger.rounds
    }

    /// Resets the ledger (configuration is kept).
    pub fn reset_ledger(&mut self) {
        self.ledger = Ledger::default();
    }

    /// Sets the label under which subsequent rounds are attributed
    /// (pass `None` to clear).
    pub fn set_phase<S: Into<String>>(&mut self, label: Option<S>) {
        self.phase = label.map(Into::into);
    }

    /// Manually charges `rounds` rounds (for modelling a step outside the provided
    /// primitives).
    pub fn charge_rounds(&mut self, primitive: &'static str, rounds: u64) {
        self.ledger.charge(primitive, rounds, self.phase.as_deref());
    }

    fn charge(&mut self, primitive: &'static str, rounds: u64) {
        self.ledger.charge(primitive, rounds, self.phase.as_deref());
    }

    fn observe<T>(&mut self, dv: &DistVec<T>, context: &'static str) {
        let violated = self.ledger.observe_loads(dv.loads(), self.config.space);
        if violated && self.config.enforce_space {
            panic!(
                "MPC space budget exceeded in `{context}`: max load {} > s = {} \
                 (n = {}, δ = {})",
                dv.max_load(),
                self.config.space,
                self.config.n,
                self.config.delta
            );
        }
    }

    /// Splits items evenly across machines (block distribution).
    fn balance<T: Send>(&self, mut items: Vec<T>) -> Vec<Vec<T>> {
        let m = self.config.machines;
        let total = items.len();
        let per = total.div_ceil(m.max(1)).max(1);
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(m);
        // Draining from the back keeps this O(n); reverse chunk order afterwards.
        let mut rest = items.split_off(0);
        for _ in 0..m {
            let take = per.min(rest.len());
            let tail = rest.split_off(take);
            parts.push(rest);
            rest = tail;
        }
        if !rest.is_empty() {
            // More items than m * per can only happen when m == 0 was clamped; append.
            parts.last_mut().expect("at least one machine").extend(rest);
        }
        parts
    }

    // ---------------------------------------------------------------------------
    // Data placement
    // ---------------------------------------------------------------------------

    /// Places the input on the cluster (the model assumes the input starts out
    /// distributed, so this charges no rounds).
    pub fn distribute<T: Send>(&mut self, items: Vec<T>) -> DistVec<T> {
        self.charge("distribute", costs::DISTRIBUTE);
        let dv = DistVec::from_parts(self.balance(items));
        self.observe(&dv, "distribute");
        dv
    }

    /// Reads the final result off the cluster (not charged; do not use mid-algorithm).
    pub fn collect<T>(&mut self, dv: DistVec<T>) -> Vec<T> {
        dv.into_inner()
    }

    // ---------------------------------------------------------------------------
    // Local computation (no communication)
    // ---------------------------------------------------------------------------

    /// Applies `f` to every item locally on its machine. Charges no rounds — purely
    /// local work is folded into the adjacent communicating supersteps, as in the
    /// model.
    pub fn map<T, U, F>(&mut self, dv: &DistVec<T>, f: F) -> DistVec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.charge("map", costs::LOCAL);
        let parts = dv
            .parts
            .par_iter()
            .map(|part| part.iter().map(&f).collect())
            .collect();
        let out = DistVec::from_parts(parts);
        self.observe(&out, "map");
        out
    }

    /// Applies `f` to every machine's local slice, producing a new local slice.
    /// Charges no rounds (purely local).
    pub fn map_parts<T, U, F>(&mut self, dv: &DistVec<T>, f: F) -> DistVec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> Vec<U> + Sync,
    {
        self.charge("map_parts", costs::LOCAL);
        let parts = dv
            .parts
            .par_iter()
            .enumerate()
            .map(|(i, part)| f(i, part))
            .collect();
        let out = DistVec::from_parts(parts);
        self.observe(&out, "map_parts");
        out
    }

    // ---------------------------------------------------------------------------
    // GSZ primitives
    // ---------------------------------------------------------------------------

    /// Deterministic sorting (Lemma 2.5): sorts all items by `key` and rebalances.
    pub fn sort_by_key<T, K, F>(&mut self, dv: DistVec<T>, key: F) -> DistVec<T>
    where
        T: Send,
        K: Ord + Send,
        F: Fn(&T) -> K + Sync,
    {
        self.charge("sort", costs::SORT);
        let total = dv.len() as u64;
        self.ledger.communicate(total);
        let mut items: Vec<T> = dv.into_inner();
        items.par_sort_by(|a, b| key(a).cmp(&key(b)));
        let out = DistVec::from_parts(self.balance(items));
        self.observe(&out, "sort_by_key");
        out
    }

    /// Prefix sums (Lemma 2.4): returns, for every item in the global order of `dv`,
    /// the sum of `weight` over all strictly earlier items (exclusive prefix sum),
    /// paired with the item.
    pub fn prefix_sums<T, F>(&mut self, dv: DistVec<T>, weight: F) -> DistVec<(T, u64)>
    where
        T: Send,
        F: Fn(&T) -> u64 + Sync,
    {
        self.charge("prefix_sum", costs::PREFIX_SUM);
        // Per-machine partial sums are exchanged (o(s) words); items stay in place.
        self.ledger.communicate(dv.machines() as u64);
        let mut running = 0u64;
        let parts = dv
            .parts
            .into_iter()
            .map(|part| {
                part.into_iter()
                    .map(|item| {
                        let w = weight(&item);
                        let out = (item, running);
                        running += w;
                        out
                    })
                    .collect()
            })
            .collect();
        let out = DistVec::from_parts(parts);
        self.observe(&out, "prefix_sums");
        out
    }

    /// Offline rank searching (Lemma 2.6), generalized to *grouped* queries: for
    /// every query, counts the values that share its group key and are strictly
    /// smaller than the query value. Returns each query paired with its count, in an
    /// arbitrary (rebalanced) distribution.
    pub fn rank_search<T, Q, K, FV, FQ>(
        &mut self,
        values: &DistVec<T>,
        vkey: FV,
        queries: DistVec<Q>,
        qkey: FQ,
    ) -> DistVec<(Q, u64)>
    where
        T: Sync,
        Q: Send,
        K: Ord + Send + Sync,
        FV: Fn(&T) -> (K, u64) + Sync,
        FQ: Fn(&Q) -> (K, u64) + Sync,
    {
        self.charge("rank_search", costs::RANK_SEARCH);
        self.ledger
            .communicate(values.len() as u64 + 2 * queries.len() as u64);

        // Globally sort the value keys once; answer each query by binary search in
        // its group's slice. (The simulated cost model already charged the sort +
        // prefix-sum rounds above.)
        let mut keyed: Vec<(K, u64)> = values.iter().map(vkey).collect();
        keyed.par_sort();
        let answer = |q: &Q| -> u64 {
            let (group, threshold) = qkey(q);
            let lo = keyed.partition_point(|(g, _)| *g < group);
            let hi = keyed[lo..].partition_point(|(g, v)| *g == group && *v < threshold);
            hi as u64
        };
        let parts: Vec<Vec<(Q, u64)>> = queries
            .parts
            .into_par_iter()
            .map(|part| {
                part.into_iter()
                    .map(|q| {
                        let c = answer(&q);
                        (q, c)
                    })
                    .collect()
            })
            .collect();
        let out = DistVec::from_parts(parts);
        self.observe(&out, "rank_search");
        out
    }

    /// Groups items by key, places every group on a single machine (greedy packing)
    /// and applies `f` to each group. The group key and its items are passed by
    /// value; the outputs of all groups are left distributed as packed.
    ///
    /// This is the workhorse for "solve each subproblem locally" steps; a group
    /// larger than the space budget is a space violation.
    pub fn group_map<T, K, U, FK, F>(&mut self, dv: DistVec<T>, key: FK, f: F) -> DistVec<U>
    where
        T: Send,
        K: Ord + Send + std::hash::Hash + Clone + Sync,
        U: Send,
        FK: Fn(&T) -> K + Sync,
        F: Fn(&K, Vec<T>) -> Vec<U> + Sync + Send,
    {
        self.charge("group_map", costs::GROUP_MAP);
        self.ledger.communicate(dv.len() as u64);

        // Gather groups.
        let mut items: Vec<T> = dv.into_inner();
        let mut keyed: Vec<(K, T)> = items.drain(..).map(|t| (key(&t), t)).collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        let mut groups: Vec<(K, Vec<T>)> = Vec::new();
        for (k, t) in keyed {
            match groups.last_mut() {
                Some((gk, items)) if *gk == k => items.push(t),
                _ => groups.push((k, vec![t])),
            }
        }

        // Greedy packing: largest groups first, each into the currently lightest
        // machine (the classical LPT heuristic); mirrors §3.3's "sort them in the
        // order of decreasing sizes and use greedy packing".
        let m = self.config.machines;
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&g| std::cmp::Reverse(groups[g].1.len()));
        let mut machine_of_group = vec![0usize; groups.len()];
        let mut loads = vec![0usize; m];
        for &g in &order {
            let target = (0..m).min_by_key(|&i| loads[i]).unwrap_or(0);
            machine_of_group[g] = target;
            loads[target] += groups[g].1.len();
        }
        let violated = self
            .ledger
            .observe_loads(loads.iter().copied(), self.config.space);
        if violated && self.config.enforce_space {
            panic!(
                "MPC space budget exceeded in `group_map`: max packed load {} > s = {}",
                loads.iter().max().copied().unwrap_or(0),
                self.config.space
            );
        }

        // Run every group (in parallel), then collect results onto their machines.
        let results: Vec<(usize, Vec<U>)> = groups
            .into_par_iter()
            .zip(machine_of_group.par_iter().copied())
            .map(|((k, items), machine)| (machine, f(&k, items)))
            .collect();
        let mut parts: Vec<Vec<U>> = (0..m).map(|_| Vec::new()).collect();
        for (machine, mut out) in results {
            parts[machine].append(&mut out);
        }
        let out = DistVec::from_parts(parts);
        self.observe(&out, "group_map");
        out
    }

    /// Concatenates two distributed vectors machine-wise (no data movement, no
    /// rounds): machine `i` simply owns both its parts.
    pub fn concat<T: Send>(&mut self, a: DistVec<T>, b: DistVec<T>) -> DistVec<T> {
        self.charge("concat", costs::LOCAL);
        let mut parts: Vec<Vec<T>> = a.parts;
        let m = parts.len().max(b.parts.len()).max(self.config.machines);
        parts.resize_with(m, Vec::new);
        for (i, mut p) in b.parts.into_iter().enumerate() {
            parts[i].append(&mut p);
        }
        let out = DistVec::from_parts(parts);
        self.observe(&out, "concat");
        out
    }

    /// Keeps only the items for which `keep` returns true (purely local).
    pub fn filter<T, F>(&mut self, dv: DistVec<T>, keep: F) -> DistVec<T>
    where
        T: Send,
        F: Fn(&T) -> bool + Sync,
    {
        self.charge("filter", costs::LOCAL);
        let parts = dv
            .parts
            .into_par_iter()
            .map(|part| part.into_iter().filter(|t| keep(t)).collect())
            .collect();
        let out = DistVec::from_parts(parts);
        self.observe(&out, "filter");
        out
    }

    /// Applies `f` to every item and flattens the results (purely local).
    pub fn flat_map<T, U, F>(&mut self, dv: &DistVec<T>, f: F) -> DistVec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> Vec<U> + Sync,
    {
        self.charge("flat_map", costs::LOCAL);
        let parts = dv
            .parts
            .par_iter()
            .map(|part| part.iter().flat_map(&f).collect())
            .collect();
        let out = DistVec::from_parts(parts);
        self.observe(&out, "flat_map");
        out
    }

    /// Creates an empty distributed vector.
    pub fn empty<T: Send>(&mut self) -> DistVec<T> {
        DistVec::from_parts((0..self.config.machines).map(|_| Vec::new()).collect())
    }

    /// Broadcasts a small value to all machines (Õ(s) words per machine).
    pub fn broadcast<T: Clone>(&mut self, value: T) -> T {
        self.charge("broadcast", costs::BROADCAST);
        self.ledger.communicate(self.config.machines as u64);
        value
    }

    /// Computes the inverse of a permutation given as `(index, value)` pairs
    /// (Lemma 2.3): each pair `(i, p_i)` is routed to the machine responsible for
    /// `p_i` and stored as `(p_i, i)`.
    pub fn inverse_permutation(&mut self, dv: DistVec<(u32, u32)>) -> DistVec<(u32, u32)> {
        self.charge("inverse_permutation", costs::INVERSE_PERMUTATION);
        self.ledger.communicate(dv.len() as u64);
        let swapped: Vec<(u32, u32)> = dv.into_inner().into_iter().map(|(i, p)| (p, i)).collect();
        let mut items = swapped;
        items.par_sort_unstable();
        let out = DistVec::from_parts(self.balance(items));
        self.observe(&out, "inverse_permutation");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn cluster(n: usize, delta: f64) -> Cluster {
        Cluster::new(MpcConfig::new(n, delta))
    }

    #[test]
    fn distribute_balances_items() {
        let mut cl = cluster(1000, 0.5);
        let dv = cl.distribute((0..1000u32).collect());
        assert_eq!(dv.len(), 1000);
        assert!(dv.max_load() <= cl.config().space);
        assert_eq!(cl.rounds(), 0);
    }

    #[test]
    fn sort_by_key_sorts_globally() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cl = cluster(5000, 0.5);
        let mut items: Vec<u32> = (0..5000).collect();
        items.shuffle(&mut rng);
        let dv = cl.distribute(items);
        let sorted = cl.sort_by_key(dv, |&x| x);
        let flat = sorted.into_inner();
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cl.rounds(), costs::SORT);
    }

    #[test]
    fn prefix_sums_are_exclusive() {
        let mut cl = cluster(100, 0.5);
        let dv = cl.distribute(vec![1u64; 100]);
        let ps = cl.prefix_sums(dv, |&w| w);
        let flat = ps.into_inner();
        for (i, (_, sum)) in flat.iter().enumerate() {
            assert_eq!(*sum, i as u64);
        }
    }

    #[test]
    fn rank_search_counts_smaller_values_per_group() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cl = cluster(2000, 0.5);
        let values: Vec<(u32, u64)> = (0..2000)
            .map(|_| (rng.gen_range(0..5), rng.gen_range(0..1000)))
            .collect();
        let queries: Vec<(u32, u64)> = (0..500)
            .map(|_| (rng.gen_range(0..6), rng.gen_range(0..1100)))
            .collect();
        let vdv = cl.distribute(values.clone());
        let qdv = cl.distribute(queries);
        let answered = cl.rank_search(&vdv, |&v| v, qdv, |&q| q);
        for ((group, threshold), count) in answered.into_inner() {
            let expected = values
                .iter()
                .filter(|&&(g, v)| g == group && v < threshold)
                .count() as u64;
            assert_eq!(count, expected);
        }
    }

    #[test]
    fn group_map_runs_each_group_once() {
        let mut cl = cluster(1000, 0.5);
        let items: Vec<(u32, u32)> = (0..1000).map(|i| (i % 17, i)).collect();
        let dv = cl.distribute(items);
        let out = cl.group_map(
            dv,
            |&(g, _)| g,
            |&g, items| {
                vec![(
                    g,
                    items.len() as u32,
                    items.iter().map(|&(_, v)| v).min().unwrap(),
                )]
            },
        );
        let mut flat = out.into_inner();
        flat.sort_unstable();
        assert_eq!(flat.len(), 17);
        for (g, count, min) in flat {
            let expected = (0..1000u32).filter(|i| i % 17 == g).count() as u32;
            assert_eq!(count, expected);
            assert_eq!(min, g);
        }
    }

    #[test]
    #[should_panic(expected = "space budget exceeded")]
    fn strict_mode_panics_on_oversized_group() {
        let mut cl = Cluster::new(MpcConfig::new(10_000, 0.5).with_space(10).strict());
        let items: Vec<u32> = (0..1000).collect();
        let dv = DistVec::from_parts(vec![items]);
        // All items share one group: cannot fit on a machine with space 10.
        let _ = cl.group_map(dv, |_| 0u32, |_, items| items);
    }

    #[test]
    fn inverse_permutation_matches_direct_inverse() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 300u32;
        let mut perm: Vec<u32> = (0..n).collect();
        perm.shuffle(&mut rng);
        let mut cl = cluster(n as usize, 0.4);
        let pairs: Vec<(u32, u32)> = perm
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u32, p))
            .collect();
        let dv = cl.distribute(pairs);
        let inv = cl.inverse_permutation(dv).into_inner();
        for (p, i) in inv {
            assert_eq!(perm[i as usize], p);
        }
    }

    #[test]
    fn ledger_tracks_phases_and_primitives() {
        let mut cl = cluster(500, 0.5);
        cl.set_phase(Some("setup"));
        let dv = cl.distribute((0..500u32).collect());
        let dv = cl.sort_by_key(dv, |&x| std::cmp::Reverse(x));
        cl.set_phase(Some("work"));
        let _ = cl.sort_by_key(dv, |&x| x);
        assert_eq!(cl.ledger().rounds_by_phase["setup"], costs::SORT);
        assert_eq!(cl.ledger().rounds_by_phase["work"], costs::SORT);
        assert_eq!(cl.ledger().primitive_counts["sort"], 2);
        assert!(cl.ledger().communication >= 1000);
    }

    #[test]
    fn map_charges_no_rounds() {
        let mut cl = cluster(100, 0.5);
        let dv = cl.distribute((0..100u32).collect());
        let doubled = cl.map(&dv, |&x| x * 2);
        assert_eq!(cl.rounds(), 0);
        assert_eq!(doubled.len(), 100);
        assert_eq!(
            doubled.iter().copied().sum::<u32>(),
            (0..100).map(|x| x * 2).sum()
        );
    }
}
