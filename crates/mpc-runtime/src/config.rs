//! Configuration of the simulated MPC cluster.

use crate::faults::FaultPlan;

/// Parameters of the simulated cluster.
///
/// The defaults follow the paper's model: for an input of size `n` and scalability
/// parameter `δ ∈ (0, 1)` there are `⌈n^δ⌉` machines with `Θ(n^{1−δ})` space each
/// (the `Õ(·)` poly-log slack is exposed as [`MpcConfig::space_slack`]).
#[derive(Clone, Debug)]
pub struct MpcConfig {
    /// Problem size the space budget is derived from.
    pub n: usize,
    /// Scalability parameter `δ` (fully scalable algorithms must work for any value
    /// in `(0, 1)`).
    pub delta: f64,
    /// Number of machines `m`.
    pub machines: usize,
    /// Local space per machine `s`, in items.
    pub space: usize,
    /// Whether exceeding `space` should panic (strict mode) or merely be recorded in
    /// the ledger.
    pub enforce_space: bool,
    /// Multiplicative slack applied to `n^{1−δ}` when deriving `space`
    /// (stands in for the `Õ(·)` poly-log factors of the model).
    pub space_slack: f64,
    /// Deterministic fault schedule (kills/delays) the cluster injects; empty
    /// by default. **Orthogonal to space enforcement**: attaching a plan never
    /// touches [`MpcConfig::enforce_space`], so a strict cluster stays strict
    /// through recovery and a lenient one keeps recording.
    pub faults: FaultPlan,
    /// Forces level checkpointing in pipelines that support recovery (the LIS
    /// merge tree) even when no faults are scheduled and no witness is
    /// requested — useful for measuring the checkpoint overhead in isolation.
    /// Pipelines checkpoint anyway whenever `faults` is non-empty.
    pub checkpoints: bool,
}

impl MpcConfig {
    /// Builds a configuration for input size `n` and scalability parameter `delta`,
    /// with a poly-logarithmic slack of `4·log₂(n+2)` on the space budget.
    ///
    /// The budget is a **hard invariant**: any primitive that would place more
    /// than `space` items on one machine panics. This is the default because the
    /// paper's algorithms are fully scalable — they never need more. Use
    /// [`MpcConfig::lenient`] for ablation baselines (e.g. the reference
    /// grid-phase gather) that deliberately overshoot and only record violations.
    pub fn new(n: usize, delta: f64) -> Self {
        Self::lenient(n, delta).strict()
    }

    /// Like [`MpcConfig::new`], but merely *records* space violations in the
    /// ledger instead of panicking. This is the explicit opt-out used by the
    /// ablation binaries and by tests that run deliberately non-conformant
    /// baselines or force pathological parameter choices.
    pub fn lenient(n: usize, delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta < 1.0,
            "δ must lie strictly between 0 and 1"
        );
        let nf = n.max(2) as f64;
        let machines = nf.powf(delta).ceil() as usize;
        let space_slack = 4.0 * nf.log2();
        let space = (nf.powf(1.0 - delta) * space_slack).ceil() as usize;
        Self {
            n,
            delta,
            machines: machines.max(1),
            space: space.max(16),
            enforce_space: false,
            space_slack,
            faults: FaultPlan::none(),
            checkpoints: false,
        }
    }

    /// Overrides the machine count.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines.max(1);
        self
    }

    /// Overrides the per-machine space budget.
    pub fn with_space(mut self, space: usize) -> Self {
        self.space = space.max(1);
        self
    }

    /// Enables strict enforcement: any primitive that would place more than `space`
    /// items on a machine panics instead of recording a violation.
    pub fn strict(mut self) -> Self {
        self.enforce_space = true;
        self
    }

    /// Disables strict enforcement on an already-built configuration (violations
    /// are recorded in the ledger instead of panicking).
    pub fn recording(mut self) -> Self {
        self.enforce_space = false;
        self
    }

    /// Attaches a deterministic fault schedule (see [`FaultPlan`]). Does
    /// **not** change space enforcement: `MpcConfig::new(..).with_faults(..)`
    /// is still strict, `lenient(..).with_faults(..)` still records.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Forces level checkpointing in recovery-capable pipelines even without a
    /// fault plan (see [`MpcConfig::checkpoints`]).
    pub fn with_checkpoints(mut self, checkpoints: bool) -> Self {
        self.checkpoints = checkpoints;
        self
    }

    /// The theoretical per-machine space `n^{1−δ}` without the poly-log slack.
    pub fn base_space(&self) -> usize {
        (self.n.max(2) as f64).powf(1.0 - self.delta).ceil() as usize
    }

    /// Total space across all machines.
    pub fn total_space(&self) -> usize {
        self.machines.saturating_mul(self.space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_machine_count_and_space() {
        let cfg = MpcConfig::new(1 << 16, 0.5);
        assert_eq!(cfg.machines, 256);
        assert!(cfg.space >= 256, "space must cover n^(1-δ)");
        assert!(cfg.total_space() >= 1 << 16, "cluster must hold the input");
    }

    #[test]
    fn new_is_strict_and_lenient_records() {
        assert!(MpcConfig::new(1000, 0.5).enforce_space);
        assert!(!MpcConfig::lenient(1000, 0.5).enforce_space);
        assert!(MpcConfig::lenient(1000, 0.5).strict().enforce_space);
        assert!(!MpcConfig::new(1000, 0.5).recording().enforce_space);
        // Budget derivation is identical on both paths.
        let strict = MpcConfig::new(1 << 14, 0.4);
        let lenient = MpcConfig::lenient(1 << 14, 0.4);
        assert_eq!(strict.space, lenient.space);
        assert_eq!(strict.machines, lenient.machines);
    }

    #[test]
    fn scalability_parameter_changes_shape() {
        let low = MpcConfig::new(1 << 20, 0.25);
        let high = MpcConfig::new(1 << 20, 0.75);
        assert!(low.machines < high.machines);
        assert!(low.base_space() > high.base_space());
    }

    #[test]
    #[should_panic(expected = "strictly between")]
    fn rejects_delta_one() {
        MpcConfig::new(100, 1.0);
    }

    #[test]
    fn fault_and_checkpoint_options_do_not_touch_space_enforcement() {
        // Regression (PR 6): attaching a fault plan or forcing checkpoints must
        // compose with strict()/lenient()/recording() without silently flipping
        // the strict-space default in either direction.
        let plan = FaultPlan::kill(1, 10).and_delay(0, 5, 2);
        let strict = MpcConfig::new(1000, 0.5).with_faults(plan.clone());
        assert!(strict.enforce_space, "with_faults disabled strict panics");
        assert_eq!(strict.faults, plan);

        let lenient = MpcConfig::lenient(1000, 0.5).with_faults(plan.clone());
        assert!(!lenient.enforce_space, "with_faults enabled strictness");
        assert_eq!(lenient.faults, plan);

        // The enforcement toggles, in turn, must not drop the plan.
        assert_eq!(strict.clone().recording().faults, plan);
        assert_eq!(lenient.clone().strict().faults, plan);

        let ckpt = MpcConfig::new(1000, 0.5).with_checkpoints(true);
        assert!(ckpt.enforce_space && ckpt.checkpoints);
        assert!(
            ckpt.recording().checkpoints,
            "recording dropped checkpoints"
        );
        assert!(
            MpcConfig::lenient(1000, 0.5)
                .with_checkpoints(true)
                .strict()
                .checkpoints,
            "strict dropped checkpoints"
        );

        // And the default stays: no faults, no forced checkpoints, strict.
        let default = MpcConfig::new(1000, 0.5);
        assert!(default.faults.is_empty());
        assert!(!default.checkpoints);
        assert!(default.enforce_space);
    }

    #[test]
    fn builders() {
        let cfg = MpcConfig::new(1000, 0.5)
            .with_machines(7)
            .with_space(123)
            .strict();
        assert_eq!(cfg.machines, 7);
        assert_eq!(cfg.space, 123);
        assert!(cfg.enforce_space);
    }
}
