//! Round costs charged by each simulated primitive.
//!
//! The paper only uses the fact that each primitive takes `O(1)` rounds; the exact
//! constants below model a standard implementation (e.g. sample sort: sample →
//! broadcast pivots → route → local sort) and are exposed so that experiments can
//! convert measured primitive counts into round counts and vice versa.

/// Rounds charged for distributing the initial input (it is already distributed in
/// the model, so this is free).
pub const DISTRIBUTE: u64 = 0;

/// Rounds for a purely local map (no communication).
pub const LOCAL: u64 = 0;

/// Rounds for deterministic sorting (Lemma 2.5, Goodrich–Sitchinava–Zhang).
pub const SORT: u64 = 3;

/// Rounds for prefix sums (Lemma 2.4).
pub const PREFIX_SUM: u64 = 2;

/// Rounds for one all-to-all shuffle (route every item to a machine chosen by key).
pub const SHUFFLE: u64 = 1;

/// Rounds for broadcasting an `O(s)`-sized value to all machines.
pub const BROADCAST: u64 = 1;

/// Rounds for offline rank searching (Lemma 2.6): sort + prefix sums + route back.
pub const RANK_SEARCH: u64 = SORT + PREFIX_SUM + SHUFFLE;

/// Rounds for one batched rank-search package exchange (the §3.2 tree-descent
/// primitive): the same sort + prefix-sum + route structure as [`RANK_SEARCH`];
/// a package carries several thresholds for one group key and is answered in
/// the same superstep.
pub const RANK_SEARCH_MULTI: u64 = RANK_SEARCH;

/// Rounds for grouping records by key onto machines and mapping each group
/// (sort by key + prefix sums for packing + route).
pub const GROUP_MAP: u64 = SORT + PREFIX_SUM + SHUFFLE;

/// Rounds for computing an inverse permutation (Lemma 2.3): a single shuffle.
pub const INVERSE_PERMUTATION: u64 = SHUFFLE;

/// Rounds for a balanced multicast (each item expands into addressed copies
/// that leave on the wire): a broadcast-tree fan-out plus the delivery shuffle.
/// The tree depth is `O(log_s k)` for fan-out `k`; with `k ≤ n = s^{1/(1−δ)}`
/// (constant `δ`) that is `O(1)`, modelled by one fan-out round.
pub const MULTICAST: u64 = 1 + SHUFFLE;

/// Rounds for replicating a level checkpoint onto a neighbor machine: each
/// machine sends a copy of its checkpoint shard to machine `(i+1) mod m`, one
/// point-to-point shuffle.
pub const CHECKPOINT: u64 = SHUFFLE;

/// Rounds for restoring a lost shard from its surviving replica: the neighbor
/// ships the checkpoint copy back to the cold standby, one shuffle.
pub const RESTORE: u64 = SHUFFLE;
