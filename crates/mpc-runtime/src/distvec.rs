//! Distributed vectors: data partitioned across the virtual machines.

/// A vector of items partitioned across the machines of a [`crate::Cluster`].
///
/// `parts[i]` is the local storage of machine `i`. A `DistVec` is always created and
/// transformed through cluster primitives so that the ledger sees every data
/// movement; the accessors here are read-only (plus [`DistVec::into_inner`] for
/// collecting final results).
#[derive(Clone, Debug)]
pub struct DistVec<T> {
    pub(crate) parts: Vec<Vec<T>>,
}

impl<T> DistVec<T> {
    /// Creates a distributed vector from explicit per-machine parts.
    pub(crate) fn from_parts(parts: Vec<Vec<T>>) -> Self {
        Self { parts }
    }

    /// Number of machines the vector is spread over.
    pub fn machines(&self) -> usize {
        self.parts.len()
    }

    /// Total number of items.
    pub fn len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Whether the vector holds no items.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(Vec::is_empty)
    }

    /// Number of items on machine `i`.
    pub fn load(&self, i: usize) -> usize {
        self.parts[i].len()
    }

    /// Largest per-machine load.
    pub fn max_load(&self) -> usize {
        self.parts.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over all items machine by machine.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.parts.iter().flatten()
    }

    /// Read-only view of a machine's local data.
    pub fn part(&self, i: usize) -> &[T] {
        &self.parts[i]
    }

    /// Flattens the distributed vector into a single `Vec`, machine by machine.
    /// This models reading the final output off the cluster and is not charged
    /// rounds; do not use it inside an algorithm.
    pub fn into_inner(self) -> Vec<T> {
        self.parts.into_iter().flatten().collect()
    }

    /// Per-machine loads.
    pub fn loads(&self) -> impl Iterator<Item = usize> + '_ {
        self.parts.iter().map(Vec::len)
    }
}

impl<T> IntoIterator for DistVec<T> {
    type Item = T;
    type IntoIter = std::iter::Flatten<std::vec::IntoIter<Vec<T>>>;

    fn into_iter(self) -> Self::IntoIter {
        self.parts.into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let dv = DistVec::from_parts(vec![vec![1, 2], vec![], vec![3]]);
        assert_eq!(dv.machines(), 3);
        assert_eq!(dv.len(), 3);
        assert!(!dv.is_empty());
        assert_eq!(dv.load(0), 2);
        assert_eq!(dv.max_load(), 2);
        assert_eq!(dv.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(dv.into_inner(), vec![1, 2, 3]);
    }
}
