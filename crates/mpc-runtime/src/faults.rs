//! Deterministic fault injection: kill/delay schedules for chaos testing.
//!
//! Production MPC clusters lose and stall machines mid-round. A [`FaultPlan`]
//! describes, ahead of time, exactly which machine fails at which superstep —
//! either a **kill** (the machine crashes; a cold standby replaces it with
//! empty memory, so the shard it held is lost) or a **delay** (a straggler:
//! the machine finishes the superstep `d` barriers late, stalling everyone at
//! the synchronous barrier). The plan is attached to
//! [`crate::MpcConfig::with_faults`] and honored by the [`crate::Cluster`]
//! *deterministically*: the superstep counter advances once per communicating
//! primitive, events fire the moment the counter reaches their superstep, and
//! every firing is recorded in the [`crate::Ledger`] ([`FaultRecord`]) — so a
//! faulty run is exactly reproducible at every thread count.
//!
//! The runtime detects and accounts; *recovery* is the algorithm's job. Kills
//! are queued for the algorithm to drain via [`crate::Cluster::poll_kills`]
//! (e.g. the LIS pipeline re-derives the killed machine's merge-tree shard
//! from its level checkpoints under a `recovery-L<k>` ledger scope). Delays
//! need no algorithmic response: the barrier absorbs them, and the stall is
//! charged to [`crate::Ledger::stall_rounds`].

/// What happens to the machine when the event fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The machine crashes and is immediately replaced by a cold standby with
    /// empty memory: every item resident on it at that superstep is lost.
    /// Requires a cluster of at least two machines (recovery re-derives the
    /// lost shard from checkpoints replicated on the surviving machines).
    Kill,
    /// The machine straggles: it completes the superstep this many barriers
    /// late. The synchronous barrier absorbs the delay — no data is lost and
    /// no recovery is needed — and the stall is charged to
    /// [`crate::Ledger::stall_rounds`].
    Delay(u64),
}

/// One scheduled fault: `machine` suffers `kind` when the cluster's superstep
/// counter reaches `superstep` (1-based; the counter advances once per
/// communicating primitive, see [`crate::Cluster::superstep`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Index of the affected machine (must be `< MpcConfig::machines`).
    pub machine: usize,
    /// Superstep at which the fault fires. Events whose superstep is never
    /// reached (the run ends first) simply do not fire.
    pub superstep: u64,
    /// Kill or delay.
    pub kind: FaultKind,
}

/// A ledger entry for one fault that actually fired, with the phase label that
/// was active at the barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Superstep at which the fault fired.
    pub superstep: u64,
    /// The affected machine.
    pub machine: usize,
    /// Kill or delay.
    pub kind: FaultKind,
    /// The `scope/phase` label active when the fault fired, if any.
    pub phase: Option<String>,
}

/// A deterministic schedule of fault events, kept sorted by
/// `(superstep, machine)` so two plans built from the same events compare and
/// fire identically regardless of insertion order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults (the default on every [`crate::MpcConfig`]).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from explicit events (sorted internally).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.superstep, e.machine, e.kind));
        Self { events }
    }

    /// A plan with a single kill of `machine` at `superstep`.
    pub fn kill(machine: usize, superstep: u64) -> Self {
        Self::none().and_kill(machine, superstep)
    }

    /// A plan with a single `d`-superstep delay of `machine` at `superstep`.
    pub fn delay(machine: usize, superstep: u64, d: u64) -> Self {
        Self::none().and_delay(machine, superstep, d)
    }

    /// Adds a kill of `machine` at `superstep`.
    pub fn and_kill(self, machine: usize, superstep: u64) -> Self {
        self.and(FaultEvent {
            machine,
            superstep,
            kind: FaultKind::Kill,
        })
    }

    /// Adds a `d`-superstep delay of `machine` at `superstep`.
    pub fn and_delay(self, machine: usize, superstep: u64, d: u64) -> Self {
        self.and(FaultEvent {
            machine,
            superstep,
            kind: FaultKind::Delay(d.max(1)),
        })
    }

    /// Adds one event (re-sorting to keep firing order canonical).
    pub fn and(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self.events
            .sort_by_key(|e| (e.superstep, e.machine, e.kind));
        self
    }

    /// A random schedule of `count` events derived **entirely from `seed`**
    /// (SplitMix64; no global RNG state): machines drawn from `0..machines`,
    /// supersteps from `1..=max_superstep`, an even mix of kills and short
    /// (1–3 barrier) delays. Equal arguments yield equal plans, which is what
    /// makes a chaos sweep replayable from its seed alone.
    pub fn random(seed: u64, machines: usize, max_superstep: u64, count: usize) -> Self {
        let mut state = seed;
        let mut next = move || {
            // SplitMix64: the standard seeding PRNG, deterministic and fast.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let machines = machines.max(1) as u64;
        let max_superstep = max_superstep.max(1);
        let events = (0..count)
            .map(|_| {
                let machine = (next() % machines) as usize;
                let superstep = 1 + next() % max_superstep;
                let kind = if next() % 2 == 0 {
                    FaultKind::Kill
                } else {
                    FaultKind::Delay(1 + next() % 3)
                };
                FaultEvent {
                    machine,
                    superstep,
                    kind,
                }
            })
            .collect();
        Self::new(events)
    }

    /// Whether the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, sorted by `(superstep, machine)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan contains at least one kill.
    pub fn has_kills(&self) -> bool {
        self.events.iter().any(|e| e.kind == FaultKind::Kill)
    }

    /// Largest machine index any event targets, if the plan is non-empty.
    pub fn max_machine(&self) -> Option<usize> {
        self.events.iter().map(|e| e.machine).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_keep_events_sorted_by_firing_order() {
        let plan = FaultPlan::kill(3, 50).and_delay(1, 10, 2).and_kill(0, 50);
        let steps: Vec<(u64, usize)> = plan
            .events()
            .iter()
            .map(|e| (e.superstep, e.machine))
            .collect();
        assert_eq!(steps, vec![(10, 1), (50, 0), (50, 3)]);
        assert!(plan.has_kills());
        assert_eq!(plan.max_machine(), Some(3));
    }

    #[test]
    fn plans_compare_regardless_of_insertion_order() {
        let a = FaultPlan::kill(2, 7).and_delay(0, 3, 1);
        let b = FaultPlan::delay(0, 3, 1).and_kill(2, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn random_plans_are_seed_deterministic_and_in_range() {
        let a = FaultPlan::random(42, 8, 100, 6);
        let b = FaultPlan::random(42, 8, 100, 6);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 6);
        for e in a.events() {
            assert!(e.machine < 8);
            assert!((1..=100).contains(&e.superstep));
            if let FaultKind::Delay(d) = e.kind {
                assert!((1..=3).contains(&d));
            }
        }
        assert_ne!(a, FaultPlan::random(43, 8, 100, 6), "seed must matter");
    }

    #[test]
    fn delay_builder_floors_at_one_barrier() {
        let plan = FaultPlan::delay(0, 5, 0);
        assert_eq!(plan.events()[0].kind, FaultKind::Delay(1));
    }

    #[test]
    fn empty_plan_is_default() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none(), FaultPlan::default());
        assert!(!FaultPlan::none().has_kills());
        assert_eq!(FaultPlan::none().max_machine(), None);
    }
}
