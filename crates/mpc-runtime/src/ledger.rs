//! Accounting of rounds, communication, per-machine load and fault events.

use crate::faults::{FaultKind, FaultRecord};
use std::collections::BTreeMap;

/// The costs of one primitive invocation, assembled *beside* the parallel
/// compute phase and applied to the [`Ledger`] in a single deterministic
/// accounting step on the calling thread (see `cluster.rs` for the two-phase
/// structure). Keeping the receipt separate from the ledger is what lets the
/// per-machine compute run on worker threads without ever touching `&mut
/// Ledger`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Superstep {
    /// Name of the primitive being charged.
    pub primitive: &'static str,
    /// Rounds the primitive costs (a constant per primitive; see [`crate::costs`]).
    pub rounds: u64,
    /// Items moved between machines by the primitive.
    pub communication: u64,
}

impl Superstep {
    /// A receipt charging `rounds` rounds and `communication` moved items.
    pub fn new(primitive: &'static str, rounds: u64, communication: u64) -> Self {
        Self {
            primitive,
            rounds,
            communication,
        }
    }

    /// A receipt for a purely local primitive (no rounds, no communication).
    pub fn local(primitive: &'static str) -> Self {
        Self::new(primitive, crate::costs::LOCAL, 0)
    }
}

/// Mutable record of everything the simulated cluster has done so far.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Total rounds charged.
    pub rounds: u64,
    /// Total items communicated (an item moving between machines counts once).
    pub communication: u64,
    /// Peak number of items held by a single machine at the end of any superstep.
    pub max_machine_load: usize,
    /// Number of supersteps in which some machine exceeded the space budget.
    pub space_violations: u64,
    /// Largest per-machine load observed in a violating superstep.
    pub worst_overload: usize,
    /// Rounds attributed to each label (see [`crate::Cluster::set_phase`]).
    pub rounds_by_phase: BTreeMap<String, u64>,
    /// Communicated items attributed to each label.
    pub comm_by_phase: BTreeMap<String, u64>,
    /// Peak per-machine load observed while each label was active.
    pub max_load_by_phase: BTreeMap<String, usize>,
    /// Space-violating supersteps attributed to each label.
    pub violations_by_phase: BTreeMap<String, u64>,
    /// Number of primitive invocations by name.
    pub primitive_counts: BTreeMap<&'static str, u64>,
    /// Every injected fault that actually fired, in firing order, with the
    /// phase label active at its barrier (see [`crate::FaultPlan`]).
    pub fault_events: Vec<FaultRecord>,
    /// Barriers spent waiting for stragglers: the sum of all fired
    /// [`FaultKind::Delay`] durations. Kept separate from [`Ledger::rounds`] —
    /// a straggler stretches wall-clock at the barrier but does not add
    /// synchronous rounds to the algorithm.
    pub stall_rounds: u64,
    /// First and last superstep index observed under each phase label (the
    /// superstep counter advances once per communicating primitive). This is
    /// what lets a chaos harness aim a kill *inside* a specific merge level:
    /// probe a fault-free run, read the level's span, schedule the fault.
    pub superstep_spans: BTreeMap<String, (u64, u64)>,
}

impl Ledger {
    /// Applies a completed superstep's receipt: one deterministic accounting
    /// step covering both its round charge and its communication volume.
    pub(crate) fn apply(&mut self, step: Superstep, phase: Option<&str>) {
        self.charge(step.primitive, step.rounds, phase);
        self.communicate(step.communication);
        if step.communication > 0 {
            if let Some(p) = phase {
                *self.comm_by_phase.entry(p.to_string()).or_default() += step.communication;
            }
        }
    }

    /// Records `rounds` rounds of a primitive, attributing them to `phase` when set.
    pub(crate) fn charge(&mut self, primitive: &'static str, rounds: u64, phase: Option<&str>) {
        self.rounds += rounds;
        *self.primitive_counts.entry(primitive).or_default() += 1;
        if let Some(p) = phase {
            *self.rounds_by_phase.entry(p.to_string()).or_default() += rounds;
        }
    }

    /// Records the load profile after a superstep, attributing the peak (and any
    /// violation) to `phase` when set.
    pub(crate) fn observe_loads(
        &mut self,
        loads: impl Iterator<Item = usize>,
        space: usize,
        phase: Option<&str>,
    ) -> bool {
        let mut violated = false;
        let mut peak = 0usize;
        for load in loads {
            peak = peak.max(load);
            if load > space {
                violated = true;
                self.worst_overload = self.worst_overload.max(load);
            }
        }
        self.max_machine_load = self.max_machine_load.max(peak);
        if let Some(p) = phase {
            let entry = self.max_load_by_phase.entry(p.to_string()).or_default();
            *entry = (*entry).max(peak);
        }
        if violated {
            self.space_violations += 1;
            if let Some(p) = phase {
                *self.violations_by_phase.entry(p.to_string()).or_default() += 1;
            }
        }
        violated
    }

    /// Records communicated items.
    pub(crate) fn communicate(&mut self, items: u64) {
        self.communication += items;
    }

    /// Records that superstep `index` ran under `phase` (span bookkeeping).
    pub(crate) fn note_superstep(&mut self, index: u64, phase: Option<&str>) {
        if let Some(p) = phase {
            let span = self
                .superstep_spans
                .entry(p.to_string())
                .or_insert((index, index));
            span.0 = span.0.min(index);
            span.1 = span.1.max(index);
        }
    }

    /// Records one fired fault event; delays accumulate into
    /// [`Ledger::stall_rounds`].
    pub(crate) fn record_fault(&mut self, record: FaultRecord) {
        if let FaultKind::Delay(d) = record.kind {
            self.stall_rounds += d;
        }
        self.fault_events.push(record);
    }

    /// Number of fired kill events.
    pub fn kills(&self) -> usize {
        self.fault_events
            .iter()
            .filter(|r| r.kind == FaultKind::Kill)
            .count()
    }

    /// Total rounds charged under every phase label starting with `prefix`
    /// (e.g. `"service-append"` to cover `service-append-L3/relabel` and
    /// friends). This is how a driver proves a scoped sub-computation's cost:
    /// the analytics service asserts its incremental appends charge only the
    /// O(log n) spine merges by reading the `service-*` scopes back.
    pub fn scope_rounds(&self, prefix: &str) -> u64 {
        self.rounds_by_phase
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Total items communicated under every phase label starting with `prefix`.
    pub fn scope_comm(&self, prefix: &str) -> u64 {
        self.comm_by_phase
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Space-violating supersteps recorded under every phase label starting
    /// with `prefix`.
    pub fn scope_violations(&self, prefix: &str) -> u64 {
        self.violations_by_phase
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Superstep span covering every phase label starting with `prefix`
    /// (e.g. `"lis-merge-L2/"`), if any such label ran.
    pub fn superstep_span_of(&self, prefix: &str) -> Option<(u64, u64)> {
        self.superstep_spans
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &(lo, hi))| (lo, hi))
            .reduce(|a, b| (a.0.min(b.0), a.1.max(b.1)))
    }

    /// Human-readable one-line summary (used by the experiment binaries).
    pub fn summary(&self) -> String {
        format!(
            "rounds={} comm={} max_load={} violations={} faults={} stall={}",
            self.rounds,
            self.communication,
            self.max_machine_load,
            self.space_violations,
            self.fault_events.len(),
            self.stall_rounds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_rounds_and_phases() {
        let mut ledger = Ledger::default();
        ledger.charge("sort", 3, Some("split"));
        ledger.charge("shuffle", 1, Some("split"));
        ledger.charge("sort", 3, None);
        assert_eq!(ledger.rounds, 7);
        assert_eq!(ledger.rounds_by_phase["split"], 4);
        assert_eq!(ledger.primitive_counts["sort"], 2);
    }

    #[test]
    fn apply_covers_rounds_and_communication() {
        let mut ledger = Ledger::default();
        ledger.apply(Superstep::new("sort", 3, 500), Some("split"));
        ledger.apply(Superstep::local("map"), None);
        assert_eq!(ledger.rounds, 3);
        assert_eq!(ledger.communication, 500);
        assert_eq!(ledger.rounds_by_phase["split"], 3);
        assert_eq!(ledger.primitive_counts["map"], 1);

        let mut same = Ledger::default();
        same.apply(Superstep::new("sort", 3, 500), Some("split"));
        same.apply(Superstep::local("map"), None);
        assert_eq!(
            ledger, same,
            "ledgers with identical histories compare equal"
        );
    }

    #[test]
    fn observe_loads_tracks_violations() {
        let mut ledger = Ledger::default();
        assert!(!ledger.observe_loads([3, 5, 2].into_iter(), 10, None));
        assert!(ledger.observe_loads([3, 50, 2].into_iter(), 10, Some("route")));
        assert_eq!(ledger.max_machine_load, 50);
        assert_eq!(ledger.space_violations, 1);
        assert_eq!(ledger.worst_overload, 50);
        assert_eq!(ledger.max_load_by_phase["route"], 50);
        assert_eq!(ledger.violations_by_phase["route"], 1);
    }

    #[test]
    fn scope_aggregators_sum_matching_prefixes() {
        let mut ledger = Ledger::default();
        ledger.apply(
            Superstep::new("sort", 3, 100),
            Some("service-append-L1/relabel"),
        );
        ledger.apply(
            Superstep::new("mul", 5, 40),
            Some("service-append-L2/combine"),
        );
        ledger.apply(Superstep::new("sort", 7, 9), Some("service-root/fold"));
        let _ = ledger.observe_loads([99].into_iter(), 10, Some("service-append-L2/combine"));
        assert_eq!(ledger.scope_rounds("service-append"), 8);
        assert_eq!(ledger.scope_rounds("service-"), 15);
        assert_eq!(ledger.scope_rounds("lis-merge"), 0);
        assert_eq!(ledger.scope_comm("service-append"), 140);
        assert_eq!(ledger.scope_comm("service-root"), 9);
        assert_eq!(ledger.scope_violations("service-append"), 1);
        assert_eq!(ledger.scope_violations("service-root"), 0);
    }

    #[test]
    fn per_phase_breakdowns_accumulate() {
        let mut ledger = Ledger::default();
        ledger.apply(Superstep::new("sort", 3, 500), Some("route"));
        ledger.apply(Superstep::new("sort", 3, 200), Some("route"));
        ledger.apply(Superstep::new("sort", 3, 70), Some("grid"));
        assert_eq!(ledger.comm_by_phase["route"], 700);
        assert_eq!(ledger.comm_by_phase["grid"], 70);
        assert_eq!(ledger.communication, 770);
        let _ = ledger.observe_loads([4, 9].into_iter(), 100, Some("grid"));
        let _ = ledger.observe_loads([7, 2].into_iter(), 100, Some("grid"));
        assert_eq!(ledger.max_load_by_phase["grid"], 9);
        assert!(ledger.violations_by_phase.is_empty());
    }
}
