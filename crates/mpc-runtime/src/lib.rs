//! A deterministic simulator for the Massively Parallel Computation (MPC) model.
//!
//! The MPC model (§1.1 of the paper): `m = O(n^δ)` machines, each with local space
//! `s = Õ(n^{1−δ})`; computation proceeds in synchronous rounds; in every round each
//! machine computes locally on its data and then exchanges at most `s` words. The
//! primary complexity measure is the number of rounds.
//!
//! This crate replaces the paper's idealized cluster with an in-process simulator:
//!
//! * [`MpcConfig`] fixes `n`, `δ`, the machine count and the per-machine space budget.
//! * [`Cluster`] owns the round/space/communication ledger and executes *supersteps*
//!   over [`DistVec`]s (vectors partitioned across the virtual machines). Per-machine
//!   local work genuinely runs in parallel (a scoped thread pool honoring
//!   `RAYON_NUM_THREADS`); every primitive is split into a pure parallel *compute*
//!   phase and a single-threaded *account* phase applying a [`ledger::Superstep`]
//!   receipt, so ledger totals and outputs are bit-identical at every thread count.
//! * [`Cluster::sort_by_key`], [`Cluster::group_map`], [`Cluster::rank_search`],
//!   [`Cluster::broadcast`], … implement the deterministic `O(1)`-round primitives of
//!   Goodrich–Sitchinava–Zhang that the paper invokes (Lemmas 2.3–2.6), each charged a
//!   fixed constant number of rounds (see [`costs`]).
//!
//! The simulator measures exactly the quantities the paper's theorems are about —
//! rounds, peak per-machine load, total communication — and can either record or
//! enforce the space budget.
//!
//! # Fault injection and recovery scopes
//!
//! A [`FaultPlan`] attached via [`MpcConfig::with_faults`] schedules machine
//! **kills** (crash + cold-standby replacement with empty memory) and
//! **delays** (stragglers) at explicit superstep indices. The [`Cluster`]
//! maintains a deterministic superstep counter — advanced once per
//! communicating primitive — and fires each event exactly when the counter
//! reaches its superstep, recording a [`FaultRecord`] in the [`Ledger`]. Kills
//! are queued for the running algorithm to drain via [`Cluster::poll_kills`];
//! recovery work it performs in response is expected to run under a
//! `recovery-*` ledger scope (the LIS/LCS pipelines use `recovery-base`,
//! `recovery-L<k>` and `recovery-witness-L<k>`), so the extra rounds are
//! separately attributable. Delays are absorbed by the synchronous barrier and
//! charged to [`Ledger::stall_rounds`], never to [`Ledger::rounds`]: round
//! complexity is a synchronous measure, stragglers stretch wall-clock only.
//! Fault firing, recovery, and all accounting are bit-identical at every
//! thread count, which is what makes chaos schedules replayable from a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod config;
pub mod costs;
pub mod distvec;
pub mod faults;
pub mod ledger;

pub use cluster::Cluster;
pub use config::MpcConfig;
pub use distvec::DistVec;
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultRecord};
pub use ledger::{Ledger, Superstep};
