//! Classical baselines: patience sorting (Fredman), quadratic dynamic programs and
//! brute-force semi-local oracles used to validate the seaweed-based algorithms.

/// Length of the longest *strictly* increasing subsequence, via patience sorting
/// (`O(n log n)`, Fredman 1975).
pub fn lis_length_patience<T: Ord>(seq: &[T]) -> usize {
    let mut tails: Vec<&T> = Vec::new();
    for x in seq {
        // First tail that is ≥ x gets replaced (strict increase ⇒ lower_bound).
        let pos = tails.partition_point(|&t| t < x);
        if pos == tails.len() {
            tails.push(x);
        } else {
            tails[pos] = x;
        }
    }
    tails.len()
}

/// Recovers one longest strictly increasing subsequence (values), `O(n log n)`.
pub fn lis_values<T: Ord + Clone>(seq: &[T]) -> Vec<T> {
    if seq.is_empty() {
        return Vec::new();
    }
    let n = seq.len();
    let mut tails_idx: Vec<usize> = Vec::new();
    let mut prev: Vec<usize> = vec![usize::MAX; n];
    for (i, x) in seq.iter().enumerate() {
        let pos = tails_idx.partition_point(|&t| seq[t] < *x);
        prev[i] = if pos == 0 {
            usize::MAX
        } else {
            tails_idx[pos - 1]
        };
        if pos == tails_idx.len() {
            tails_idx.push(i);
        } else {
            tails_idx[pos] = i;
        }
    }
    let mut out = Vec::with_capacity(tails_idx.len());
    let mut cur = *tails_idx.last().expect("nonempty");
    while cur != usize::MAX {
        out.push(seq[cur].clone());
        cur = prev[cur];
    }
    out.reverse();
    out
}

/// Quadratic DP for the longest strictly increasing subsequence (test oracle).
pub fn lis_length_dp<T: Ord>(seq: &[T]) -> usize {
    let n = seq.len();
    let mut best = vec![1usize; n];
    let mut ans = 0;
    for i in 0..n {
        for j in 0..i {
            if seq[j] < seq[i] {
                best[i] = best[i].max(best[j] + 1);
            }
        }
        ans = ans.max(best[i]);
    }
    ans
}

/// Classical `O(mn)` dynamic program for the length of the longest common
/// subsequence.
pub fn lcs_length_dp<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let (m, n) = (a.len(), b.len());
    let mut prev = vec![0usize; n + 1];
    let mut cur = vec![0usize; n + 1];
    for i in 1..=m {
        for j in 1..=n {
            cur[j] = if a[i - 1] == b[j - 1] {
                prev[j - 1] + 1
            } else {
                prev[j].max(cur[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Brute-force semi-local LIS oracle: `result[l][r]` = LIS of `seq[l..r]`
/// (`O(n³ log n)`; tests only).
pub fn semi_local_lis_brute<T: Ord>(seq: &[T]) -> Vec<Vec<usize>> {
    let n = seq.len();
    (0..=n)
        .map(|l| {
            (0..=n)
                .map(|r| {
                    if r >= l {
                        lis_length_patience(&seq[l..r])
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect()
}

/// Brute-force semi-local LCS oracle against windows of `b`: `result[l][r]` =
/// LCS(a, b[l..r]) (tests only).
pub fn semi_local_lcs_brute<T: PartialEq>(a: &[T], b: &[T]) -> Vec<Vec<usize>> {
    let n = b.len();
    (0..=n)
        .map(|l| {
            (0..=n)
                .map(|r| {
                    if r >= l {
                        lcs_length_dp(a, &b[l..r])
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn patience_matches_dp_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let n = rng.gen_range(0..60);
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..30)).collect();
            assert_eq!(lis_length_patience(&seq), lis_length_dp(&seq), "{seq:?}");
        }
    }

    #[test]
    fn lis_values_is_valid_and_maximal() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let n = rng.gen_range(1..60);
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..40)).collect();
            let v = lis_values(&seq);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "not strictly increasing");
            assert_eq!(v.len(), lis_length_patience(&seq));
            // v must be a subsequence of seq.
            let mut it = seq.iter();
            assert!(v.iter().all(|x| it.any(|y| y == x)), "not a subsequence");
        }
    }

    #[test]
    fn lis_known_cases() {
        assert_eq!(lis_length_patience::<u32>(&[]), 0);
        assert_eq!(lis_length_patience(&[5]), 1);
        assert_eq!(lis_length_patience(&[1, 2, 3, 4]), 4);
        assert_eq!(lis_length_patience(&[4, 3, 2, 1]), 1);
        assert_eq!(lis_length_patience(&[3, 1, 4, 1, 5, 9, 2, 6]), 4); // 1 4 5 9 / 1 4 5 6
        assert_eq!(lis_length_patience(&[2, 2, 2]), 1); // strict
    }

    #[test]
    fn lcs_known_cases() {
        assert_eq!(lcs_length_dp(b"ABCBDAB", b"BDCABA"), 4);
        assert_eq!(lcs_length_dp(b"", b"ABC"), 0);
        assert_eq!(lcs_length_dp(b"XYZ", b"XYZ"), 3);
        assert_eq!(lcs_length_dp(b"ABC", b"DEF"), 0);
    }

    #[test]
    fn lcs_of_sorted_is_lis() {
        // LIS(A) = LCS(sort(A), A) — the reduction the seaweed framework exploits.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let n = rng.gen_range(0..40);
            let mut seq: Vec<u32> = (0..n as u32).collect();
            seq.shuffle(&mut rng);
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            assert_eq!(lcs_length_dp(&sorted, &seq), lis_length_patience(&seq));
        }
    }
}
