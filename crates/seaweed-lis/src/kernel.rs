//! The semi-local seaweed kernel `P_{X,Y}` and its algebra.
//!
//! For strings `X` (length `m`) and `Y` (length `n`), the *seaweed braid* of the
//! alignment grid defines a permutation of size `m + n` mapping the `m + n`
//! seaweeds' entry points (left boundary + top boundary) to their exit points
//! (bottom boundary + right boundary). This permutation — the *kernel* — encodes the
//! whole semi-local LCS information of the pair: the LCS of `X` against any window
//! `Y[l..r)` can be read off with a single dominance count (see
//! [`SeaweedKernel::lcs_window`]).
//!
//! Index conventions (0-based everywhere):
//!
//! * entry `e < m`   — left boundary, rows numbered **bottom to top** (`e = m-1-row`),
//! * entry `m + c`   — top boundary, column `c`, left to right,
//! * exit  `x < n`   — bottom boundary, column `x`, left to right,
//! * exit  `n + e`   — right boundary, rows numbered **bottom to top** (`e = m-1-row`).
//!
//! Under these conventions the concatenation law is exactly the implicit unit-Monge
//! multiplication of the paper:
//! `P_{X, Y₁Y₂} = (P_{X,Y₁} ⊕ I_{n₂}) ⊡ (I_{n₁} ⊕ P_{X,Y₂})`
//! (see [`compose_horizontal`]), which is why Theorem 1.1/1.2 immediately yield
//! parallel LIS and LCS algorithms.

use monge::dominance::DominanceCounter;
use monge::{mul, PermutationMatrix};
use rayon::prelude::*;

/// The semi-local kernel of a pair of strings (a permutation of size `m + n`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeaweedKernel {
    m: usize,
    n: usize,
    perm: PermutationMatrix,
}

impl SeaweedKernel {
    /// Builds a kernel from raw parts.
    ///
    /// # Panics
    /// Panics if the permutation size is not `m + n`.
    pub fn from_parts(m: usize, n: usize, perm: PermutationMatrix) -> Self {
        assert_eq!(
            perm.size(),
            m + n,
            "kernel permutation must have size m + n"
        );
        Self { m, n, perm }
    }

    /// Computes the kernel of `(x, y)` by direct seaweed combing: `O(mn)` time,
    /// `O((m+n)²/64)` bits for the crossing history. This is the ground-truth
    /// construction; the divide-and-conquer constructions in [`crate::lis`] produce
    /// identical kernels using `⊡`.
    pub fn comb(x: &[u32], y: &[u32]) -> Self {
        let (m, n) = (x.len(), y.len());
        let total = m + n;
        // crossed[a * total + b] records whether seaweeds a and b have crossed.
        let mut crossed = CrossingSet::new(total);

        // Seaweed ids equal their entry index: left row i enters as id m-1-i,
        // top column j enters as id m + j.
        let mut col_cur: Vec<u32> = (0..n as u32).map(|j| m as u32 + j).collect();
        let mut exits = vec![0u32; total];

        for i in 0..m {
            let mut row_cur = (m - 1 - i) as u32;
            for j in 0..n {
                let top = col_cur[j];
                let left = row_cur;
                let is_match = x[i] == y[j];
                let cross = !is_match && !crossed.contains(top, left);
                if cross {
                    crossed.insert(top, left);
                    // top continues down, left continues right: nothing to swap.
                } else {
                    // Bounce: the top seaweed turns right, the left seaweed turns down.
                    col_cur[j] = left;
                    row_cur = top;
                }
            }
            // row_cur exits through the right boundary of row i.
            exits[row_cur as usize] = (n + (m - 1 - i)) as u32;
        }
        for (j, &id) in col_cur.iter().enumerate() {
            exits[id as usize] = j as u32;
        }
        Self {
            m,
            n,
            perm: PermutationMatrix::from_rows(exits),
        }
    }

    /// Budget-bounded streaming comb: combs `y` in column chunks of at most
    /// `max_cols` columns and composes the chunk kernels left to right with the
    /// concatenation law `P_{X, Y₁Y₂} = (P₁ ⊕ I) ⊡ (I ⊕ P₂)`.
    ///
    /// Direct combing materializes a crossing bitset of `(m + n)²` bits; the
    /// streamed variant touches only `(m + max_cols)²` bits at a time, so a
    /// machine with a word budget `s` can comb arbitrarily long `y` against a
    /// short `x` without ever holding the full quadratic history. The result is
    /// **identical** to [`SeaweedKernel::comb`] (the composition law is exact).
    pub fn comb_streamed(x: &[u32], y: &[u32], max_cols: usize) -> Self {
        let chunk = max_cols.max(1);
        if y.len() <= chunk {
            return Self::comb(x, y);
        }
        y.chunks(chunk)
            .map(|block| Self::comb(x, block))
            .reduce(|acc, next| compose_horizontal(&acc, &next))
            .expect("y has at least one chunk")
    }

    /// Parallel block combing: splits `Y` into one block per thread, combs the
    /// blocks concurrently, and merges the block kernels left to right with the
    /// concatenation law `P_{X, Y₁Y₂} = (P₁ ⊕ I) ⊡ (I ⊕ P₂)`.
    ///
    /// The result is **identical** to [`SeaweedKernel::comb`] (the composition
    /// law is exact, not approximate — see the `composition_matches_direct_combing`
    /// test), so this is a drop-in for large inputs. With one thread, or below
    /// the block threshold, it falls back to direct combing.
    pub fn comb_par(x: &[u32], y: &[u32]) -> Self {
        /// Below this many columns per block the O(mn) combing is cheaper than
        /// the O((m+n) log(m+n)) merge multiplications it would save.
        const MIN_BLOCK: usize = 256;
        /// Each block is itself combed in streamed sub-chunks of at most this
        /// many columns, capping the crossing bitset at `(m + 4096)²` bits no
        /// matter how long `y` is.
        const MAX_COMB_COLS: usize = 4096;
        let threads = rayon::current_num_threads();
        if threads <= 1 || y.len() < 2 * MIN_BLOCK {
            return Self::comb_streamed(x, y, MAX_COMB_COLS);
        }
        let block = y.len().div_ceil(threads).max(MIN_BLOCK);
        let blocks: Vec<&[u32]> = y.chunks(block).collect();
        let kernels: Vec<SeaweedKernel> = blocks
            .into_par_iter()
            .map(|b| Self::comb_streamed(x, b, MAX_COMB_COLS))
            .collect();
        kernels
            .into_iter()
            .reduce(|acc, next| compose_horizontal(&acc, &next))
            .expect("y has at least one block")
    }

    /// Length of `X`.
    pub fn x_len(&self) -> usize {
        self.m
    }

    /// Length of `Y`.
    pub fn y_len(&self) -> usize {
        self.n
    }

    /// The underlying permutation (entry → exit).
    pub fn permutation(&self) -> &PermutationMatrix {
        &self.perm
    }

    /// Number of entries a level checkpoint of this kernel ships: the full
    /// entry → exit permutation, `m + n` words. A merge-tree node's checkpoint
    /// is this plus its sorted value set, which is what the fault-tolerant
    /// pipelines charge when replicating a level (`costs::CHECKPOINT`) or
    /// restoring a lost shard from its replica (`costs::RESTORE`).
    pub fn checkpoint_entries(&self) -> usize {
        self.perm.size()
    }

    /// Exit point of the seaweed entering at `entry`.
    pub fn exit_of(&self, entry: usize) -> usize {
        self.perm.col_of(entry)
    }

    /// LCS of `X` against the window `Y[l..r)`, by counting the seaweeds that both
    /// enter the top boundary at column ≥ `l` and leave the bottom boundary at
    /// column < `r`:
    ///
    /// `LCS(X, Y[l..r)) = (r − l) − #{top-entry ≥ l, bottom-exit < r}`.
    ///
    /// `O(m + n)` per query; use [`SemiLocalQueries`] for many queries.
    pub fn lcs_window(&self, l: usize, r: usize) -> usize {
        assert!(l <= r && r <= self.n, "window [{l}, {r}) out of range");
        let crossing = (self.m + l..self.m + self.n)
            .filter(|&e| self.perm.col_of(e) < r)
            .count();
        (r - l) - crossing
    }

    /// LCS of the *substring* `X[lo..hi)` against the whole `Y` — the transposed
    /// counterpart of [`Self::lcs_window`], by counting the seaweeds that enter
    /// the left boundary at a row ≥ `lo` and leave the right boundary at a row
    /// < `hi`:
    ///
    /// `LCS(X[lo..hi), Y) = (hi − lo) − #{left-entry row ≥ lo, right-exit row < hi}`.
    ///
    /// (Seaweed paths are monotone — down and right only — so a left-entering
    /// seaweed exits right at a row no smaller than its entry row, which is what
    /// makes the single dominance count exact.) For the LIS kernel, where `X` is
    /// the sorted value alphabet, this answers *value-range-restricted* LIS
    /// queries. `O(m)` per query; the witness traceback splits on the batched
    /// forms [`Self::x_prefix_lcs`] / [`Self::x_suffix_lcs`], of which this is
    /// the single-window special case (`x_suffix_lcs(lo, hi)[0]`).
    pub fn lcs_x_window(&self, lo: usize, hi: usize) -> usize {
        self.x_suffix_lcs(lo, hi)[0]
    }

    /// All prefix answers of one X window in a single `O(m)` pass: returns `v`
    /// of length `hi − lo + 1` with `v[d] = LCS(X[lo..lo+d), Y)`.
    ///
    /// This is one half of the Hirschberg-style split the witness traceback
    /// performs at a merge node (the other half is [`Self::x_suffix_lcs`] on the
    /// sibling): growing the window by one row raises the LCS by one unless the
    /// seaweed exiting right at the new row entered left at a row ≥ `lo`.
    pub fn x_prefix_lcs(&self, lo: usize, hi: usize) -> Vec<usize> {
        assert!(
            lo <= hi && hi <= self.m,
            "X window [{lo}, {hi}) out of range (m = {})",
            self.m
        );
        // Entry row (when entered from the left) of the seaweed exiting right
        // at each row; u32::MAX marks rows whose right exit is fed from the top.
        let mut left_source = vec![u32::MAX; self.m];
        for e in 0..self.m {
            let exit = self.perm.col_of(e);
            if exit >= self.n {
                left_source[self.m - 1 - (exit - self.n)] = (self.m - 1 - e) as u32;
            }
        }
        let mut out = Vec::with_capacity(hi - lo + 1);
        let mut f = 0usize;
        out.push(f);
        for row in lo..hi {
            let crossed = left_source[row] != u32::MAX && left_source[row] as usize >= lo;
            f += 1 - usize::from(crossed);
            out.push(f);
        }
        out
    }

    /// All suffix answers of one X window in a single `O(m)` pass: returns `v`
    /// of length `hi − lo + 1` with `v[d] = LCS(X[lo+d..hi), Y)`.
    pub fn x_suffix_lcs(&self, lo: usize, hi: usize) -> Vec<usize> {
        assert!(
            lo <= hi && hi <= self.m,
            "X window [{lo}, {hi}) out of range (m = {})",
            self.m
        );
        let mut out = vec![0usize; hi - lo + 1];
        let mut g = 0usize;
        for row in (lo..hi).rev() {
            // Shrinking the window start to `row` adds one row; it contributes
            // unless its seaweed passes left → right inside the window.
            let exit = self.perm.col_of(self.m - 1 - row);
            let crossed = exit >= self.n && self.m - 1 - (exit - self.n) < hi;
            g += 1 - usize::from(crossed);
            out[row - lo] = g;
        }
        out
    }

    /// Builds an indexed query structure answering [`Self::lcs_window`] in
    /// `O(log² n)` per query.
    pub fn queries(&self) -> SemiLocalQueries {
        let points: Vec<(u32, u32)> = (self.m..self.m + self.n)
            .filter_map(|e| {
                let exit = self.perm.col_of(e);
                (exit < self.n).then_some(((e - self.m) as u32, exit as u32))
            })
            .collect();
        SemiLocalQueries {
            n: self.n,
            counter: DominanceCounter::new(&points),
        }
    }

    /// Inflates a kernel computed over a *sub-alphabet* of `X` back to the full
    /// alphabet.
    ///
    /// `self` must be the kernel of `(identity over the |values| present symbols, Y)`;
    /// `values` lists, in increasing order, which rows of the full `m_big`-row grid
    /// those symbols correspond to. Rows of the full grid that carry no symbol have
    /// no match cells, so their seaweed passes straight from the left boundary to the
    /// right boundary and every other seaweed is unaffected.
    pub fn inflate_rows(&self, values: &[usize], m_big: usize) -> Self {
        assert_eq!(values.len(), self.m, "values must list every present row");
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "values must be increasing"
        );
        assert!(values.last().is_none_or(|&v| v < m_big));
        let (m_small, n) = (self.m, self.n);
        let mut exits = vec![u32::MAX; m_big + n];

        // Small right-exit index → big right-exit index.
        let map_exit = |exit: usize| -> u32 {
            if exit < n {
                exit as u32
            } else {
                let small_row = m_small - 1 - (exit - n);
                let big_row = values[small_row];
                (n + (m_big - 1 - big_row)) as u32
            }
        };

        // Present left entries and all top entries follow the small kernel.
        for small_row in 0..m_small {
            let big_row = values[small_row];
            let small_entry = m_small - 1 - small_row;
            let big_entry = m_big - 1 - big_row;
            exits[big_entry] = map_exit(self.perm.col_of(small_entry));
        }
        for c in 0..n {
            exits[m_big + c] = map_exit(self.perm.col_of(m_small + c));
        }
        // Absent rows pass straight through.
        let present: std::collections::HashSet<usize> = values.iter().copied().collect();
        for row in 0..m_big {
            if !present.contains(&row) {
                exits[m_big - 1 - row] = (n + (m_big - 1 - row)) as u32;
            }
        }
        debug_assert!(exits.iter().all(|&e| e != u32::MAX));
        Self {
            m: m_big,
            n,
            perm: PermutationMatrix::from_rows(exits),
        }
    }
}

/// Builds the two padded permutation matrices whose implicit unit-Monge product is
/// the kernel of the concatenation: `P_{X,Y₁Y₂} = (P₁ ⊕ I_{n₂}) ⊡ (I_{n₁} ⊕ P₂)`.
///
/// Exposed separately so that callers can route the `⊡` through a different
/// multiplication engine (the MPC algorithm of `monge-mpc` in particular).
pub fn compose_operands(
    k1: &SeaweedKernel,
    k2: &SeaweedKernel,
) -> (PermutationMatrix, PermutationMatrix) {
    assert_eq!(k1.m, k2.m, "both kernels must share the same X");
    let (m, n1, n2) = (k1.m, k1.n, k2.n);
    let big = m + n1 + n2;

    // P₁ ⊕ I_{n₂}: the first grid transforms {left, top₁} and leaves top₂ untouched.
    let mut p1 = vec![0u32; big];
    for e in 0..m + n1 {
        p1[e] = k1.perm.col_of(e) as u32;
    }
    for c in 0..n2 {
        p1[m + n1 + c] = (n1 + m + c) as u32;
    }
    // I_{n₁} ⊕ P₂: the second grid leaves bottom₁ untouched and transforms {mid, top₂}.
    let mut p2 = vec![0u32; big];
    for (b, item) in p2.iter_mut().enumerate().take(n1) {
        *item = b as u32;
    }
    for e in 0..m + n2 {
        p2[n1 + e] = (n1 + k2.perm.col_of(e)) as u32;
    }
    (
        PermutationMatrix::from_rows(p1),
        PermutationMatrix::from_rows(p2),
    )
}

/// Wraps the product of [`compose_operands`] back into a kernel for `Y₁ ◦ Y₂`.
pub fn compose_from_product(
    k1: &SeaweedKernel,
    k2: &SeaweedKernel,
    product: PermutationMatrix,
) -> SeaweedKernel {
    assert_eq!(product.size(), k1.m + k1.n + k2.n);
    SeaweedKernel {
        m: k1.m,
        n: k1.n + k2.n,
        perm: product,
    }
}

/// Horizontal composition: the kernel of `(X, Y₁ ◦ Y₂)` from the kernels of
/// `(X, Y₁)` and `(X, Y₂)`, via a single implicit unit-Monge multiplication.
pub fn compose_horizontal(k1: &SeaweedKernel, k2: &SeaweedKernel) -> SeaweedKernel {
    let (p1, p2) = compose_operands(k1, k2);
    compose_from_product(k1, k2, mul(&p1, &p2))
}

/// Indexed semi-local query structure produced by [`SeaweedKernel::queries`].
#[derive(Clone, Debug)]
pub struct SemiLocalQueries {
    n: usize,
    counter: DominanceCounter,
}

impl SemiLocalQueries {
    /// LCS of `X` against `Y[l..r)` in `O(log² n)`.
    pub fn lcs_window(&self, l: usize, r: usize) -> usize {
        assert!(l <= r && r <= self.n, "window [{l}, {r}) out of range");
        let crossing = self.counter.count_row_ge_col_lt(l as u32, r as u32);
        (r - l) - crossing
    }

    /// Length of `Y`.
    pub fn y_len(&self) -> usize {
        self.n
    }
}

/// Dense bitset recording which unordered seaweed pairs have crossed.
struct CrossingSet {
    total: usize,
    bits: Vec<u64>,
}

impl CrossingSet {
    fn new(total: usize) -> Self {
        let words = (total * total).div_ceil(64);
        Self {
            total,
            bits: vec![0; words.max(1)],
        }
    }

    fn index(&self, a: u32, b: u32) -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        lo as usize * self.total + hi as usize
    }

    fn contains(&self, a: u32, b: u32) -> bool {
        let i = self.index(a, b);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    fn insert(&mut self, a: u32, b: u32) {
        let i = self.index(a, b);
        self.bits[i / 64] |= 1 << (i % 64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::lcs_length_dp;
    use rand::prelude::*;

    fn random_string(len: usize, alphabet: u32, rng: &mut StdRng) -> Vec<u32> {
        (0..len).map(|_| rng.gen_range(0..alphabet)).collect()
    }

    #[test]
    fn kernel_is_a_permutation_of_size_m_plus_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = random_string(7, 3, &mut rng);
        let y = random_string(11, 3, &mut rng);
        let k = SeaweedKernel::comb(&x, &y);
        assert_eq!(k.permutation().size(), 18);
        assert_eq!(k.x_len(), 7);
        assert_eq!(k.y_len(), 11);
    }

    #[test]
    fn window_queries_match_dp_lcs() {
        // The defining semi-local property of the kernel.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..25 {
            let m = rng.gen_range(1..12);
            let n = rng.gen_range(1..14);
            let alphabet = rng.gen_range(2..5);
            let x = random_string(m, alphabet, &mut rng);
            let y = random_string(n, alphabet, &mut rng);
            let k = SeaweedKernel::comb(&x, &y);
            let q = k.queries();
            for l in 0..=n {
                for r in l..=n {
                    let expected = lcs_length_dp(&x, &y[l..r]);
                    assert_eq!(k.lcs_window(l, r), expected, "x={x:?} y={y:?} [{l},{r})");
                    assert_eq!(q.lcs_window(l, r), expected);
                }
            }
        }
    }

    #[test]
    fn x_window_queries_match_dp_lcs() {
        // The transposed semi-local family: windows of X against the whole Y,
        // including the batched prefix/suffix forms used by the witness split.
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..25 {
            let m = rng.gen_range(1..12);
            let n = rng.gen_range(1..14);
            let alphabet = rng.gen_range(2..5);
            let x = random_string(m, alphabet, &mut rng);
            let y = random_string(n, alphabet, &mut rng);
            let k = SeaweedKernel::comb(&x, &y);
            for lo in 0..=m {
                for hi in lo..=m {
                    let expected = lcs_length_dp(&x[lo..hi], &y);
                    assert_eq!(
                        k.lcs_x_window(lo, hi),
                        expected,
                        "x={x:?} y={y:?} [{lo},{hi})"
                    );
                }
                let prefixes = k.x_prefix_lcs(lo, m);
                let suffixes = k.x_suffix_lcs(lo, m);
                for d in 0..=m - lo {
                    assert_eq!(prefixes[d], lcs_length_dp(&x[lo..lo + d], &y));
                    assert_eq!(suffixes[d], lcs_length_dp(&x[lo + d..m], &y));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "X window")]
    fn x_window_out_of_range_panics() {
        let k = SeaweedKernel::comb(&[0, 1], &[1, 0]);
        let _ = k.lcs_x_window(1, 3);
    }

    #[test]
    fn empty_windows_and_full_window() {
        let x = vec![0u32, 1, 2];
        let y = vec![2u32, 0, 1, 2];
        let k = SeaweedKernel::comb(&x, &y);
        assert_eq!(k.lcs_window(2, 2), 0);
        assert_eq!(k.lcs_window(0, 4), lcs_length_dp(&x, &y));
    }

    #[test]
    fn composition_matches_direct_combing() {
        // P_{X, Y₁Y₂} = (P_{X,Y₁} ⊕ I) ⊡ (I ⊕ P_{X,Y₂})
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let m = rng.gen_range(1..9);
            let n1 = rng.gen_range(1..9);
            let n2 = rng.gen_range(1..9);
            let alphabet = rng.gen_range(2..5);
            let x = random_string(m, alphabet, &mut rng);
            let y1 = random_string(n1, alphabet, &mut rng);
            let y2 = random_string(n2, alphabet, &mut rng);
            let k1 = SeaweedKernel::comb(&x, &y1);
            let k2 = SeaweedKernel::comb(&x, &y2);
            let composed = compose_horizontal(&k1, &k2);
            let y: Vec<u32> = y1.iter().chain(y2.iter()).copied().collect();
            let direct = SeaweedKernel::comb(&x, &y);
            assert_eq!(composed, direct, "x={x:?} y1={y1:?} y2={y2:?}");
        }
    }

    #[test]
    fn comb_streamed_equals_direct_combing() {
        // Across chunk sizes (smaller than, equal to, larger than |y|) the
        // streamed composition must reproduce the direct comb exactly.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let m = rng.gen_range(1..10);
            let n = rng.gen_range(1..40);
            let alphabet = rng.gen_range(2..6);
            let x = random_string(m, alphabet, &mut rng);
            let y = random_string(n, alphabet, &mut rng);
            let direct = SeaweedKernel::comb(&x, &y);
            for chunk in [1usize, 3, 7, n, n + 5] {
                assert_eq!(
                    SeaweedKernel::comb_streamed(&x, &y, chunk),
                    direct,
                    "chunk={chunk} x={x:?} y={y:?}"
                );
            }
        }
    }

    #[test]
    fn comb_par_equals_direct_combing() {
        // Above and below the block threshold, at several thread counts.
        let mut rng = StdRng::seed_from_u64(7);
        let x = random_string(40, 8, &mut rng);
        let y = random_string(1500, 8, &mut rng);
        let direct = SeaweedKernel::comb(&x, &y);
        for threads in [1, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par = pool.install(|| SeaweedKernel::comb_par(&x, &y));
            assert_eq!(par, direct, "threads={threads}");
        }
        let tiny = random_string(30, 4, &mut rng);
        assert_eq!(
            SeaweedKernel::comb_par(&x, &tiny),
            SeaweedKernel::comb(&x, &tiny)
        );
    }

    #[test]
    fn composition_is_associative_via_kernels() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = random_string(6, 3, &mut rng);
        let ys: Vec<Vec<u32>> = (0..3).map(|_| random_string(5, 3, &mut rng)).collect();
        let ks: Vec<SeaweedKernel> = ys.iter().map(|y| SeaweedKernel::comb(&x, y)).collect();
        let left = compose_horizontal(&compose_horizontal(&ks[0], &ks[1]), &ks[2]);
        let right = compose_horizontal(&ks[0], &compose_horizontal(&ks[1], &ks[2]));
        assert_eq!(left, right);
    }

    #[test]
    fn inflation_matches_full_grid_combing() {
        // Kernel over the present symbols, inflated, equals the kernel over the full
        // identity alphabet.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let m_big = rng.gen_range(2..12);
            let k = rng.gen_range(1..=m_big);
            // Choose k distinct "present" rows and a sequence over them.
            let mut rows: Vec<usize> = (0..m_big).collect();
            rows.shuffle(&mut rng);
            let mut present: Vec<usize> = rows[..k].to_vec();
            present.sort_unstable();
            let len = rng.gen_range(1..10);
            let y_big: Vec<u32> = (0..len)
                .map(|_| present[rng.gen_range(0..k)] as u32)
                .collect();
            // Relabel to the compact alphabet 0..k.
            let rank = |v: u32| present.iter().position(|&p| p == v as usize).unwrap() as u32;
            let y_small: Vec<u32> = y_big.iter().map(|&v| rank(v)).collect();

            let x_small: Vec<u32> = (0..k as u32).collect();
            let x_big: Vec<u32> = (0..m_big as u32).collect();
            let small = SeaweedKernel::comb(&x_small, &y_small);
            let inflated = small.inflate_rows(&present, m_big);
            let direct = SeaweedKernel::comb(&x_big, &y_big);
            assert_eq!(inflated, direct, "present={present:?} y={y_big:?}");
        }
    }
}
