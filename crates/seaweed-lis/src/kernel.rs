//! The semi-local seaweed kernel `P_{X,Y}` and its algebra.
//!
//! For strings `X` (length `m`) and `Y` (length `n`), the *seaweed braid* of the
//! alignment grid defines a permutation of size `m + n` mapping the `m + n`
//! seaweeds' entry points (left boundary + top boundary) to their exit points
//! (bottom boundary + right boundary). This permutation — the *kernel* — encodes the
//! whole semi-local LCS information of the pair: the LCS of `X` against any window
//! `Y[l..r)` can be read off with a single dominance count (see
//! [`SeaweedKernel::lcs_window`]).
//!
//! Index conventions (0-based everywhere):
//!
//! * entry `e < m`   — left boundary, rows numbered **bottom to top** (`e = m-1-row`),
//! * entry `m + c`   — top boundary, column `c`, left to right,
//! * exit  `x < n`   — bottom boundary, column `x`, left to right,
//! * exit  `n + e`   — right boundary, rows numbered **bottom to top** (`e = m-1-row`).
//!
//! Under these conventions the concatenation law is exactly the implicit unit-Monge
//! multiplication of the paper:
//! `P_{X, Y₁Y₂} = (P_{X,Y₁} ⊕ I_{n₂}) ⊡ (I_{n₁} ⊕ P_{X,Y₂})`
//! (see [`compose_horizontal`]), which is why Theorem 1.1/1.2 immediately yield
//! parallel LIS and LCS algorithms.
//!
//! # Combing fast: the comparison rule and the word-level braid invariant
//!
//! [`SeaweedKernel::comb`] materializes the full crossing history (a triangular
//! bitset over unordered seaweed pairs) and consults it at every cell — the
//! textbook construction, kept as the differential oracle. The production path,
//! [`SeaweedKernel::comb_bitparallel`], exploits a structural fact of the braid:
//! two seaweeds meeting at a cell (the horizontal one carrying id `h`, the
//! vertical one id `v`) have crossed before **iff `h > v`**. Seaweed ids equal
//! counterclockwise entry positions, seaweed paths are monotone (down/right
//! only), and a pair physically crosses at most once, so the pair has crossed
//! exactly when its current anti-diagonal order disagrees with its entry order.
//! The per-cell update therefore needs no history at all:
//! *swap ids iff `x[i] == y[j] || h > v`*. On top of that comparison rule the
//! fast comb packs the match structure of 64 columns into one `u64` word and
//! keeps, per word, the minimum resident vertical id. A whole word is
//! *transparent* to the sweeping seaweed — no match bit and minimum id `≥ h`
//! means no cell in it can swap — and is skipped with two word-level
//! comparisons; only opaque words are walked cell by cell.

use monge::dominance::DominanceCounter;
use monge::{mul, PermutationMatrix};
use rayon::prelude::*;

/// The semi-local kernel of a pair of strings (a permutation of size `m + n`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeaweedKernel {
    m: usize,
    n: usize,
    perm: PermutationMatrix,
}

impl SeaweedKernel {
    /// Builds a kernel from raw parts.
    ///
    /// # Panics
    /// Panics if the permutation size is not `m + n`.
    pub fn from_parts(m: usize, n: usize, perm: PermutationMatrix) -> Self {
        assert_eq!(
            perm.size(),
            m + n,
            "kernel permutation must have size m + n"
        );
        Self { m, n, perm }
    }

    /// Computes the kernel of `(x, y)` by direct seaweed combing: `O(mn)` time,
    /// `(m+n)(m+n−1)/2` bits for the crossing history. This is the ground-truth
    /// construction and the differential oracle for the fast path
    /// ([`SeaweedKernel::comb_bitparallel`]); the divide-and-conquer
    /// constructions in [`crate::lis`] produce identical kernels using `⊡`.
    pub fn comb(x: &[u32], y: &[u32]) -> Self {
        let (m, n) = (x.len(), y.len());
        let total = m + n;
        // crossed records, per unordered pair {a, b}, whether a and b have crossed.
        let mut crossed = CrossingSet::new(total);

        // Seaweed ids equal their entry index: left row i enters as id m-1-i,
        // top column j enters as id m + j.
        let mut col_cur: Vec<u32> = (0..n as u32).map(|j| m as u32 + j).collect();
        let mut exits = vec![0u32; total];

        for i in 0..m {
            let mut row_cur = (m - 1 - i) as u32;
            for j in 0..n {
                let top = col_cur[j];
                let left = row_cur;
                let is_match = x[i] == y[j];
                let cross = !is_match && !crossed.contains(top, left);
                if cross {
                    crossed.insert(top, left);
                    // top continues down, left continues right: nothing to swap.
                } else {
                    // Bounce: the top seaweed turns right, the left seaweed turns down.
                    col_cur[j] = left;
                    row_cur = top;
                }
            }
            // row_cur exits through the right boundary of row i.
            exits[row_cur as usize] = (n + (m - 1 - i)) as u32;
        }
        for (j, &id) in col_cur.iter().enumerate() {
            exits[id as usize] = j as u32;
        }
        Self {
            m,
            n,
            perm: PermutationMatrix::from_rows(exits),
        }
    }

    /// Bit-parallel comb: computes exactly the kernel of [`SeaweedKernel::comb`]
    /// without any crossing history, in `O(m·n/64 + (opaque cells))` time and
    /// `O(m + n)` space: every row scans the `n/64` resident-minimum words, but
    /// a transparent word costs one comparison instead of 64 cell updates.
    ///
    /// The per-cell rule is the comparison form of combing (see the module docs):
    /// the sweeping seaweed id `h` and the resident column id `v[j]` swap iff
    /// `x[i] == y[j] || h > v[j]`. The match structure of `y` is packed 64
    /// columns per `u64` word, and each word carries a running minimum of its
    /// resident ids. The **word-level braid invariant** is that a word with no
    /// match bit whose minimum resident id is `≥ h` is *transparent*: the
    /// sweeping seaweed crosses all 64 columns without a single swap, so the
    /// word's state is untouched and `h` is unchanged. Both conditions are one
    /// word-level comparison each (`mbits == 0` and `wmin[w] >= h`), so a
    /// transparent word costs `O(1)` instead of 64 cell updates; only opaque
    /// words are walked cell by cell (refreshing their minimum in the same
    /// pass). On the LIS workloads of [`crate::lis`] the vast majority of words
    /// are transparent, which is where the measured speedup of
    /// `exp_kernel_bench` comes from.
    pub fn comb_bitparallel(x: &[u32], y: &[u32]) -> Self {
        let (m, n) = (x.len(), y.len());
        let total = m + n;
        let words = n.div_ceil(64);

        // Dense alphabet of y plus CSR lists of each symbol's match columns
        // (ascending), so a row's match bits are gathered word by word without
        // a quadratic per-symbol bitmask table.
        let mut symbols: Vec<u32> = y.to_vec();
        symbols.sort_unstable();
        symbols.dedup();
        let mut starts = vec![0u32; symbols.len() + 1];
        for &v in y {
            let s = symbols.partition_point(|&u| u < v);
            starts[s + 1] += 1;
        }
        for s in 0..symbols.len() {
            starts[s + 1] += starts[s];
        }
        let mut match_cols = vec![0u32; n];
        let mut cursor: Vec<u32> = starts[..symbols.len()].to_vec();
        for (j, &v) in y.iter().enumerate() {
            let s = symbols.partition_point(|&u| u < v);
            match_cols[cursor[s] as usize] = j as u32;
            cursor[s] += 1;
        }

        // v[j]: id of the seaweed currently occupying column j (init m + j).
        let mut v: Vec<u32> = (0..n as u32).map(|j| m as u32 + j).collect();
        // wmin[w]: minimum resident id over word w's columns.
        let mut wmin: Vec<u32> = (0..words).map(|w| (m + 64 * w) as u32).collect();
        let mut exits = vec![0u32; total];

        for i in 0..m {
            let mut h = (m - 1 - i) as u32;
            let (mut p, pend) = {
                let s = symbols.partition_point(|&u| u < x[i]);
                if s < symbols.len() && symbols[s] == x[i] {
                    (starts[s] as usize, starts[s + 1] as usize)
                } else {
                    (0, 0)
                }
            };
            for (w, wm) in wmin.iter_mut().enumerate() {
                let base = w * 64;
                let word_end = (base + 64).min(n);
                // Gather this row's match bits for the word.
                let mut mbits = 0u64;
                while p < pend && (match_cols[p] as usize) < word_end {
                    mbits |= 1u64 << (match_cols[p] as usize - base);
                    p += 1;
                }
                // Word-level braid invariant: transparent word, skip in O(1).
                if mbits == 0 && *wm >= h {
                    continue;
                }
                let mut newmin = u32::MAX;
                for (j, vj) in v[base..word_end].iter_mut().enumerate() {
                    let t = *vj;
                    if (mbits >> j) & 1 == 1 || h > t {
                        // Bounce, exactly as in `comb`.
                        *vj = h;
                        h = t;
                    }
                    newmin = newmin.min(*vj);
                }
                *wm = newmin;
            }
            exits[h as usize] = (n + (m - 1 - i)) as u32;
        }
        for (j, &id) in v.iter().enumerate() {
            exits[id as usize] = j as u32;
        }
        Self {
            m,
            n,
            perm: PermutationMatrix::from_rows(exits),
        }
    }

    /// Budget-bounded streaming comb: combs `y` in column chunks of at most
    /// `max_cols` columns and composes the chunk kernels left to right with the
    /// concatenation law `P_{X, Y₁Y₂} = (P₁ ⊕ I) ⊡ (I ⊕ P₂)`.
    ///
    /// The reference comb materializes a crossing bitset of `(m + n)²/2` bits;
    /// the streamed variant's modeled footprint is only `(m + max_cols)²/2`
    /// bits per chunk, so a machine with a word budget `s` can comb arbitrarily
    /// long `y` against a short `x` without ever holding the full quadratic
    /// history. Each chunk is combed with the bit-parallel fast path
    /// ([`SeaweedKernel::comb_bitparallel`]); the result is **identical** to
    /// [`SeaweedKernel::comb`] (the composition law is exact).
    pub fn comb_streamed(x: &[u32], y: &[u32], max_cols: usize) -> Self {
        let chunk = max_cols.max(1);
        if y.len() <= chunk {
            return Self::comb_bitparallel(x, y);
        }
        y.chunks(chunk)
            .map(|block| Self::comb_bitparallel(x, block))
            .reduce(|acc, next| compose_horizontal(&acc, &next))
            .expect("y has at least one chunk")
    }

    /// Parallel block combing with default [`CombParams`]: splits `Y` into one
    /// block per thread, combs the blocks concurrently, and merges the block
    /// kernels left to right with the concatenation law
    /// `P_{X, Y₁Y₂} = (P₁ ⊕ I) ⊡ (I ⊕ P₂)`.
    ///
    /// The result is **identical** to [`SeaweedKernel::comb`] (the composition
    /// law is exact, not approximate — see the `composition_matches_direct_combing`
    /// test), so this is a drop-in for large inputs. With one thread, or below
    /// the block threshold, it falls back to streamed combing.
    pub fn comb_par(x: &[u32], y: &[u32]) -> Self {
        Self::comb_par_with(x, y, &CombParams::default())
    }

    /// [`SeaweedKernel::comb_par`] with explicit tuning knobs, so the bench
    /// harness (`exp_kernel_bench`) can sweep block and chunk sizes.
    pub fn comb_par_with(x: &[u32], y: &[u32], params: &CombParams) -> Self {
        let min_block = params.min_block.max(1);
        let max_cols = params.max_comb_cols.max(1);
        let threads = rayon::current_num_threads();
        if threads <= 1 || y.len() < 2 * min_block {
            return Self::comb_streamed(x, y, max_cols);
        }
        let block = y.len().div_ceil(threads).max(min_block);
        let blocks: Vec<&[u32]> = y.chunks(block).collect();
        let kernels: Vec<SeaweedKernel> = blocks
            .into_par_iter()
            .map(|b| Self::comb_streamed(x, b, max_cols))
            .collect();
        kernels
            .into_iter()
            .reduce(|acc, next| compose_horizontal(&acc, &next))
            .expect("y has at least one block")
    }

    /// Length of `X`.
    pub fn x_len(&self) -> usize {
        self.m
    }

    /// Length of `Y`.
    pub fn y_len(&self) -> usize {
        self.n
    }

    /// The underlying permutation (entry → exit).
    pub fn permutation(&self) -> &PermutationMatrix {
        &self.perm
    }

    /// Number of entries a level checkpoint of this kernel ships: the full
    /// entry → exit permutation, `m + n` words. A merge-tree node's checkpoint
    /// is this plus its sorted value set, which is what the fault-tolerant
    /// pipelines charge when replicating a level (`costs::CHECKPOINT`) or
    /// restoring a lost shard from its replica (`costs::RESTORE`).
    pub fn checkpoint_entries(&self) -> usize {
        self.perm.size()
    }

    /// Exit point of the seaweed entering at `entry`.
    pub fn exit_of(&self, entry: usize) -> usize {
        self.perm.col_of(entry)
    }

    /// LCS of `X` against the window `Y[l..r)`, by counting the seaweeds that both
    /// enter the top boundary at column ≥ `l` and leave the bottom boundary at
    /// column < `r`:
    ///
    /// `LCS(X, Y[l..r)) = (r − l) − #{top-entry ≥ l, bottom-exit < r}`.
    ///
    /// `O(m + n)` per query; use [`SemiLocalQueries`] for many queries.
    pub fn lcs_window(&self, l: usize, r: usize) -> usize {
        assert!(l <= r && r <= self.n, "window [{l}, {r}) out of range");
        let crossing = (self.m + l..self.m + self.n)
            .filter(|&e| self.perm.col_of(e) < r)
            .count();
        (r - l) - crossing
    }

    /// LCS of the *substring* `X[lo..hi)` against the whole `Y` — the transposed
    /// counterpart of [`Self::lcs_window`], by counting the seaweeds that enter
    /// the left boundary at a row ≥ `lo` and leave the right boundary at a row
    /// < `hi`:
    ///
    /// `LCS(X[lo..hi), Y) = (hi − lo) − #{left-entry row ≥ lo, right-exit row < hi}`.
    ///
    /// (Seaweed paths are monotone — down and right only — so a left-entering
    /// seaweed exits right at a row no smaller than its entry row, which is what
    /// makes the single dominance count exact.) For the LIS kernel, where `X` is
    /// the sorted value alphabet, this answers *value-range-restricted* LIS
    /// queries. `O(m)` per query; the witness traceback splits on the batched
    /// forms [`Self::x_prefix_lcs`] / [`Self::x_suffix_lcs`], of which this is
    /// the single-window special case (`x_suffix_lcs(lo, hi)[0]`).
    pub fn lcs_x_window(&self, lo: usize, hi: usize) -> usize {
        self.x_suffix_lcs(lo, hi)[0]
    }

    /// All prefix answers of one X window in a single `O(m)` pass: returns `v`
    /// of length `hi − lo + 1` with `v[d] = LCS(X[lo..lo+d), Y)`.
    ///
    /// This is one half of the Hirschberg-style split the witness traceback
    /// performs at a merge node (the other half is [`Self::x_suffix_lcs`] on the
    /// sibling): growing the window by one row raises the LCS by one unless the
    /// seaweed exiting right at the new row entered left at a row ≥ `lo`.
    pub fn x_prefix_lcs(&self, lo: usize, hi: usize) -> Vec<usize> {
        assert!(
            lo <= hi && hi <= self.m,
            "X window [{lo}, {hi}) out of range (m = {})",
            self.m
        );
        // Entry row (when entered from the left) of the seaweed exiting right
        // at each row; u32::MAX marks rows whose right exit is fed from the top.
        let mut left_source = vec![u32::MAX; self.m];
        for e in 0..self.m {
            let exit = self.perm.col_of(e);
            if exit >= self.n {
                left_source[self.m - 1 - (exit - self.n)] = (self.m - 1 - e) as u32;
            }
        }
        let mut out = Vec::with_capacity(hi - lo + 1);
        let mut f = 0usize;
        out.push(f);
        for row in lo..hi {
            let crossed = left_source[row] != u32::MAX && left_source[row] as usize >= lo;
            f += 1 - usize::from(crossed);
            out.push(f);
        }
        out
    }

    /// All suffix answers of one X window in a single `O(m)` pass: returns `v`
    /// of length `hi − lo + 1` with `v[d] = LCS(X[lo+d..hi), Y)`.
    pub fn x_suffix_lcs(&self, lo: usize, hi: usize) -> Vec<usize> {
        assert!(
            lo <= hi && hi <= self.m,
            "X window [{lo}, {hi}) out of range (m = {})",
            self.m
        );
        let mut out = vec![0usize; hi - lo + 1];
        let mut g = 0usize;
        for row in (lo..hi).rev() {
            // Shrinking the window start to `row` adds one row; it contributes
            // unless its seaweed passes left → right inside the window.
            let exit = self.perm.col_of(self.m - 1 - row);
            let crossed = exit >= self.n && self.m - 1 - (exit - self.n) < hi;
            g += 1 - usize::from(crossed);
            out[row - lo] = g;
        }
        out
    }

    /// Builds an indexed query structure answering [`Self::lcs_window`] in
    /// `O(log² n)` per query.
    pub fn queries(&self) -> SemiLocalQueries {
        let points: Vec<(u32, u32)> = (self.m..self.m + self.n)
            .filter_map(|e| {
                let exit = self.perm.col_of(e);
                (exit < self.n).then_some(((e - self.m) as u32, exit as u32))
            })
            .collect();
        SemiLocalQueries {
            n: self.n,
            counter: DominanceCounter::new(&points),
        }
    }

    /// Inflates a kernel computed over a *sub-alphabet* of `X` back to the full
    /// alphabet.
    ///
    /// `self` must be the kernel of `(identity over the |values| present symbols, Y)`;
    /// `values` lists, in increasing order, which rows of the full `m_big`-row grid
    /// those symbols correspond to. Rows of the full grid that carry no symbol have
    /// no match cells, so their seaweed passes straight from the left boundary to the
    /// right boundary and every other seaweed is unaffected.
    pub fn inflate_rows(&self, values: &[usize], m_big: usize) -> Self {
        assert_eq!(values.len(), self.m, "values must list every present row");
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "values must be increasing"
        );
        assert!(values.last().is_none_or(|&v| v < m_big));
        let (m_small, n) = (self.m, self.n);
        let mut exits = vec![u32::MAX; m_big + n];

        // Small right-exit index → big right-exit index.
        let map_exit = |exit: usize| -> u32 {
            if exit < n {
                exit as u32
            } else {
                let small_row = m_small - 1 - (exit - n);
                let big_row = values[small_row];
                (n + (m_big - 1 - big_row)) as u32
            }
        };

        // Present left entries and all top entries follow the small kernel.
        for small_row in 0..m_small {
            let big_row = values[small_row];
            let small_entry = m_small - 1 - small_row;
            let big_entry = m_big - 1 - big_row;
            exits[big_entry] = map_exit(self.perm.col_of(small_entry));
        }
        for c in 0..n {
            exits[m_big + c] = map_exit(self.perm.col_of(m_small + c));
        }
        // Absent rows pass straight through.
        let present: std::collections::HashSet<usize> = values.iter().copied().collect();
        for row in 0..m_big {
            if !present.contains(&row) {
                exits[m_big - 1 - row] = (n + (m_big - 1 - row)) as u32;
            }
        }
        debug_assert!(exits.iter().all(|&e| e != u32::MAX));
        Self {
            m: m_big,
            n,
            perm: PermutationMatrix::from_rows(exits),
        }
    }
}

/// Tuning knobs for [`SeaweedKernel::comb_par_with`].
///
/// The defaults reproduce the previously hard-coded constants; `exp_kernel_bench`
/// sweeps both knobs to expose their wall-clock effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CombParams {
    /// Below this many columns per block the O(mn) combing is cheaper than the
    /// O((m+n) log(m+n)) merge multiplications parallel blocking would save.
    pub min_block: usize,
    /// Each block is combed in streamed sub-chunks of at most this many columns,
    /// capping the modeled per-chunk footprint no matter how long `y` is.
    pub max_comb_cols: usize,
}

impl Default for CombParams {
    fn default() -> Self {
        Self {
            min_block: 256,
            max_comb_cols: 4096,
        }
    }
}

/// Builds the two padded permutation matrices whose implicit unit-Monge product is
/// the kernel of the concatenation: `P_{X,Y₁Y₂} = (P₁ ⊕ I_{n₂}) ⊡ (I_{n₁} ⊕ P₂)`.
///
/// Exposed separately so that callers can route the `⊡` through a different
/// multiplication engine (the MPC algorithm of `monge-mpc` in particular).
pub fn compose_operands(
    k1: &SeaweedKernel,
    k2: &SeaweedKernel,
) -> (PermutationMatrix, PermutationMatrix) {
    assert_eq!(k1.m, k2.m, "both kernels must share the same X");
    let (m, n1, n2) = (k1.m, k1.n, k2.n);
    let big = m + n1 + n2;

    // P₁ ⊕ I_{n₂}: the first grid transforms {left, top₁} and leaves top₂ untouched.
    let mut p1 = vec![0u32; big];
    for e in 0..m + n1 {
        p1[e] = k1.perm.col_of(e) as u32;
    }
    for c in 0..n2 {
        p1[m + n1 + c] = (n1 + m + c) as u32;
    }
    // I_{n₁} ⊕ P₂: the second grid leaves bottom₁ untouched and transforms {mid, top₂}.
    let mut p2 = vec![0u32; big];
    for (b, item) in p2.iter_mut().enumerate().take(n1) {
        *item = b as u32;
    }
    for e in 0..m + n2 {
        p2[n1 + e] = (n1 + k2.perm.col_of(e)) as u32;
    }
    (
        PermutationMatrix::from_rows(p1),
        PermutationMatrix::from_rows(p2),
    )
}

/// Wraps the product of [`compose_operands`] back into a kernel for `Y₁ ◦ Y₂`.
pub fn compose_from_product(
    k1: &SeaweedKernel,
    k2: &SeaweedKernel,
    product: PermutationMatrix,
) -> SeaweedKernel {
    assert_eq!(product.size(), k1.m + k1.n + k2.n);
    SeaweedKernel {
        m: k1.m,
        n: k1.n + k2.n,
        perm: product,
    }
}

/// Horizontal composition: the kernel of `(X, Y₁ ◦ Y₂)` from the kernels of
/// `(X, Y₁)` and `(X, Y₂)`, via a single implicit unit-Monge multiplication.
pub fn compose_horizontal(k1: &SeaweedKernel, k2: &SeaweedKernel) -> SeaweedKernel {
    let (p1, p2) = compose_operands(k1, k2);
    compose_from_product(k1, k2, mul(&p1, &p2))
}

/// Indexed semi-local query structure produced by [`SeaweedKernel::queries`].
#[derive(Clone, Debug)]
pub struct SemiLocalQueries {
    n: usize,
    counter: DominanceCounter,
}

impl SemiLocalQueries {
    /// LCS of `X` against `Y[l..r)` in `O(log² n)`.
    pub fn lcs_window(&self, l: usize, r: usize) -> usize {
        assert!(l <= r && r <= self.n, "window [{l}, {r}) out of range");
        let crossing = self.counter.count_row_ge_col_lt(l as u32, r as u32);
        (r - l) - crossing
    }

    /// Length of `Y`.
    pub fn y_len(&self) -> usize {
        self.n
    }
}

/// Dense bitset recording which unordered seaweed pairs have crossed.
///
/// Pairs are stored triangularly — entry `(lo, hi)` with `lo < hi` lives at bit
/// `hi(hi−1)/2 + lo` — so the set holds `total(total−1)/2` bits, half of the
/// naive `total²` square layout. Seaweed ids are distinct, so the diagonal never
/// occurs.
struct CrossingSet {
    total: usize,
    bits: Vec<u64>,
}

impl CrossingSet {
    fn new(total: usize) -> Self {
        let pairs = total * total.saturating_sub(1) / 2;
        let words = pairs.div_ceil(64);
        Self {
            total,
            bits: vec![0; words.max(1)],
        }
    }

    fn index(&self, a: u32, b: u32) -> usize {
        debug_assert_ne!(a, b, "a seaweed never crosses itself");
        let (lo, hi) = if a < b {
            (a as usize, b as usize)
        } else {
            (b as usize, a as usize)
        };
        debug_assert!(hi < self.total);
        hi * (hi - 1) / 2 + lo
    }

    fn contains(&self, a: u32, b: u32) -> bool {
        let i = self.index(a, b);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    fn insert(&mut self, a: u32, b: u32) {
        let i = self.index(a, b);
        self.bits[i / 64] |= 1 << (i % 64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::lcs_length_dp;
    use rand::prelude::*;

    fn random_string(len: usize, alphabet: u32, rng: &mut StdRng) -> Vec<u32> {
        (0..len).map(|_| rng.gen_range(0..alphabet)).collect()
    }

    #[test]
    fn kernel_is_a_permutation_of_size_m_plus_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = random_string(7, 3, &mut rng);
        let y = random_string(11, 3, &mut rng);
        let k = SeaweedKernel::comb(&x, &y);
        assert_eq!(k.permutation().size(), 18);
        assert_eq!(k.x_len(), 7);
        assert_eq!(k.y_len(), 11);
    }

    #[test]
    fn window_queries_match_dp_lcs() {
        // The defining semi-local property of the kernel.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..25 {
            let m = rng.gen_range(1..12);
            let n = rng.gen_range(1..14);
            let alphabet = rng.gen_range(2..5);
            let x = random_string(m, alphabet, &mut rng);
            let y = random_string(n, alphabet, &mut rng);
            let k = SeaweedKernel::comb(&x, &y);
            let q = k.queries();
            for l in 0..=n {
                for r in l..=n {
                    let expected = lcs_length_dp(&x, &y[l..r]);
                    assert_eq!(k.lcs_window(l, r), expected, "x={x:?} y={y:?} [{l},{r})");
                    assert_eq!(q.lcs_window(l, r), expected);
                }
            }
        }
    }

    #[test]
    fn x_window_queries_match_dp_lcs() {
        // The transposed semi-local family: windows of X against the whole Y,
        // including the batched prefix/suffix forms used by the witness split.
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..25 {
            let m = rng.gen_range(1..12);
            let n = rng.gen_range(1..14);
            let alphabet = rng.gen_range(2..5);
            let x = random_string(m, alphabet, &mut rng);
            let y = random_string(n, alphabet, &mut rng);
            let k = SeaweedKernel::comb(&x, &y);
            for lo in 0..=m {
                for hi in lo..=m {
                    let expected = lcs_length_dp(&x[lo..hi], &y);
                    assert_eq!(
                        k.lcs_x_window(lo, hi),
                        expected,
                        "x={x:?} y={y:?} [{lo},{hi})"
                    );
                }
                let prefixes = k.x_prefix_lcs(lo, m);
                let suffixes = k.x_suffix_lcs(lo, m);
                for d in 0..=m - lo {
                    assert_eq!(prefixes[d], lcs_length_dp(&x[lo..lo + d], &y));
                    assert_eq!(suffixes[d], lcs_length_dp(&x[lo + d..m], &y));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "X window")]
    fn x_window_out_of_range_panics() {
        let k = SeaweedKernel::comb(&[0, 1], &[1, 0]);
        let _ = k.lcs_x_window(1, 3);
    }

    #[test]
    fn empty_windows_and_full_window() {
        let x = vec![0u32, 1, 2];
        let y = vec![2u32, 0, 1, 2];
        let k = SeaweedKernel::comb(&x, &y);
        assert_eq!(k.lcs_window(2, 2), 0);
        assert_eq!(k.lcs_window(0, 4), lcs_length_dp(&x, &y));
    }

    #[test]
    fn composition_matches_direct_combing() {
        // P_{X, Y₁Y₂} = (P_{X,Y₁} ⊕ I) ⊡ (I ⊕ P_{X,Y₂})
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let m = rng.gen_range(1..9);
            let n1 = rng.gen_range(1..9);
            let n2 = rng.gen_range(1..9);
            let alphabet = rng.gen_range(2..5);
            let x = random_string(m, alphabet, &mut rng);
            let y1 = random_string(n1, alphabet, &mut rng);
            let y2 = random_string(n2, alphabet, &mut rng);
            let k1 = SeaweedKernel::comb(&x, &y1);
            let k2 = SeaweedKernel::comb(&x, &y2);
            let composed = compose_horizontal(&k1, &k2);
            let y: Vec<u32> = y1.iter().chain(y2.iter()).copied().collect();
            let direct = SeaweedKernel::comb(&x, &y);
            assert_eq!(composed, direct, "x={x:?} y1={y1:?} y2={y2:?}");
        }
    }

    #[test]
    fn comb_streamed_equals_direct_combing() {
        // Across chunk sizes (smaller than, equal to, larger than |y|) the
        // streamed composition must reproduce the direct comb exactly.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let m = rng.gen_range(1..10);
            let n = rng.gen_range(1..40);
            let alphabet = rng.gen_range(2..6);
            let x = random_string(m, alphabet, &mut rng);
            let y = random_string(n, alphabet, &mut rng);
            let direct = SeaweedKernel::comb(&x, &y);
            for chunk in [1usize, 3, 7, n, n + 5] {
                assert_eq!(
                    SeaweedKernel::comb_streamed(&x, &y, chunk),
                    direct,
                    "chunk={chunk} x={x:?} y={y:?}"
                );
            }
        }
    }

    #[test]
    fn comb_bitparallel_equals_reference_comb() {
        // The fast path must be bit-identical to the crossing-history oracle,
        // including duplicate-heavy alphabets, symbols of x absent from y, and
        // sizes straddling the 64-column word boundary.
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..60 {
            let m = rng.gen_range(0..20);
            let n = rng.gen_range(0..150);
            let alphabet = rng.gen_range(1..8);
            let x = random_string(m, alphabet + 4, &mut rng);
            let y = random_string(n, alphabet, &mut rng);
            assert_eq!(
                SeaweedKernel::comb_bitparallel(&x, &y),
                SeaweedKernel::comb(&x, &y),
                "x={x:?} y={y:?}"
            );
        }
        for (m, n) in [(0, 0), (0, 5), (5, 0), (1, 1), (3, 64), (3, 65), (2, 128)] {
            let x = random_string(m, 3, &mut rng);
            let y = random_string(n, 3, &mut rng);
            assert_eq!(
                SeaweedKernel::comb_bitparallel(&x, &y),
                SeaweedKernel::comb(&x, &y),
                "m={m} n={n}"
            );
        }
    }

    #[test]
    fn crossing_set_triangular_indexing_at_boundaries() {
        // Exhaustive check that insert/contains agree for every unordered pair
        // and both argument orders, across totals that straddle word boundaries
        // (the boundary indices 0, total−2, total−1 included).
        for total in [2usize, 3, 5, 11, 12, 64, 65] {
            let mut set = CrossingSet::new(total);
            let mut inserted: Vec<(u32, u32)> = Vec::new();
            let pairs: Vec<(u32, u32)> = (0..total as u32)
                .flat_map(|lo| (lo + 1..total as u32).map(move |hi| (lo, hi)))
                .collect();
            for &(lo, hi) in &pairs {
                assert!(!set.contains(lo, hi), "total={total} pre ({lo},{hi})");
                assert!(!set.contains(hi, lo));
                set.insert(hi, lo); // insert in reversed order on purpose
                inserted.push((lo, hi));
                for &(a, b) in &pairs {
                    let expect = inserted.contains(&(a, b));
                    assert_eq!(set.contains(a, b), expect, "total={total} ({a},{b})");
                    assert_eq!(set.contains(b, a), expect);
                }
            }
        }
    }

    #[test]
    fn comb_par_with_params_equals_direct_combing() {
        // Sweeping CombParams must never change the result, only the schedule.
        let mut rng = StdRng::seed_from_u64(17);
        let x = random_string(24, 6, &mut rng);
        let y = random_string(900, 6, &mut rng);
        let direct = SeaweedKernel::comb(&x, &y);
        for min_block in [1usize, 64, 256, 2048] {
            for max_comb_cols in [32usize, 300, 4096] {
                let params = CombParams {
                    min_block,
                    max_comb_cols,
                };
                assert_eq!(
                    SeaweedKernel::comb_par_with(&x, &y, &params),
                    direct,
                    "params={params:?}"
                );
            }
        }
        assert_eq!(
            CombParams::default(),
            CombParams {
                min_block: 256,
                max_comb_cols: 4096
            }
        );
    }

    #[test]
    fn comb_par_equals_direct_combing() {
        // Above and below the block threshold, at several thread counts.
        let mut rng = StdRng::seed_from_u64(7);
        let x = random_string(40, 8, &mut rng);
        let y = random_string(1500, 8, &mut rng);
        let direct = SeaweedKernel::comb(&x, &y);
        for threads in [1, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par = pool.install(|| SeaweedKernel::comb_par(&x, &y));
            assert_eq!(par, direct, "threads={threads}");
        }
        let tiny = random_string(30, 4, &mut rng);
        assert_eq!(
            SeaweedKernel::comb_par(&x, &tiny),
            SeaweedKernel::comb(&x, &tiny)
        );
    }

    #[test]
    fn composition_is_associative_via_kernels() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = random_string(6, 3, &mut rng);
        let ys: Vec<Vec<u32>> = (0..3).map(|_| random_string(5, 3, &mut rng)).collect();
        let ks: Vec<SeaweedKernel> = ys.iter().map(|y| SeaweedKernel::comb(&x, y)).collect();
        let left = compose_horizontal(&compose_horizontal(&ks[0], &ks[1]), &ks[2]);
        let right = compose_horizontal(&ks[0], &compose_horizontal(&ks[1], &ks[2]));
        assert_eq!(left, right);
    }

    #[test]
    fn inflation_matches_full_grid_combing() {
        // Kernel over the present symbols, inflated, equals the kernel over the full
        // identity alphabet.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let m_big = rng.gen_range(2..12);
            let k = rng.gen_range(1..=m_big);
            // Choose k distinct "present" rows and a sequence over them.
            let mut rows: Vec<usize> = (0..m_big).collect();
            rows.shuffle(&mut rng);
            let mut present: Vec<usize> = rows[..k].to_vec();
            present.sort_unstable();
            let len = rng.gen_range(1..10);
            let y_big: Vec<u32> = (0..len)
                .map(|_| present[rng.gen_range(0..k)] as u32)
                .collect();
            // Relabel to the compact alphabet 0..k.
            let rank = |v: u32| present.iter().position(|&p| p == v as usize).unwrap() as u32;
            let y_small: Vec<u32> = y_big.iter().map(|&v| rank(v)).collect();

            let x_small: Vec<u32> = (0..k as u32).collect();
            let x_big: Vec<u32> = (0..m_big as u32).collect();
            let small = SeaweedKernel::comb(&x_small, &y_small);
            let inflated = small.inflate_rows(&present, m_big);
            let direct = SeaweedKernel::comb(&x_big, &y_big);
            assert_eq!(inflated, direct, "present={present:?} y={y_big:?}");
        }
    }
}
