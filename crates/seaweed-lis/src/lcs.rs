//! LCS via the seaweed framework and via the Hunt–Szymanski reduction to LIS.
//!
//! Corollary 1.3.1 of the paper obtains an MPC LCS algorithm by listing all matching
//! pairs of the two strings in lexicographic order and running LIS on the second
//! coordinates (Hunt & Szymanski 1977). This module implements that reduction
//! sequentially, plus semi-local LCS queries through the combing kernel
//! (the sequential counterpart of Corollary 1.3.3).

use crate::baselines::lis_length_patience;
use crate::kernel::{SeaweedKernel, SemiLocalQueries};
use std::collections::HashMap;
use std::hash::Hash;

/// Lists all matching pairs `(i, j)` with `a[i] == b[j]`, sorted by `i` ascending and,
/// within equal `i`, by `j` descending — the order required by the Hunt–Szymanski
/// reduction. The number of pairs can be as large as `|a| · |b|`.
pub fn hunt_szymanski_pairs<T: Eq + Hash>(a: &[T], b: &[T]) -> Vec<(u32, u32)> {
    let mut positions: HashMap<&T, Vec<u32>> = HashMap::new();
    for (j, y) in b.iter().enumerate() {
        positions.entry(y).or_default().push(j as u32);
    }
    let mut pairs = Vec::new();
    for (i, x) in a.iter().enumerate() {
        if let Some(js) = positions.get(x) {
            // js is ascending; emit descending.
            pairs.extend(js.iter().rev().map(|&j| (i as u32, j)));
        }
    }
    pairs
}

/// LCS length via the Hunt–Szymanski reduction: the longest strictly increasing
/// subsequence (in the second coordinate) of the match-pair list equals the LCS.
/// Runs in `O((|a| + |b| + M) log M)` where `M` is the number of matching pairs.
pub fn lcs_via_lis<T: Eq + Hash>(a: &[T], b: &[T]) -> usize {
    let pairs = hunt_szymanski_pairs(a, b);
    let seconds: Vec<u32> = pairs.iter().map(|&(_, j)| j).collect();
    lis_length_patience(&seconds)
}

/// LCS length through the seaweed kernel (combing): `O(|a| · |b|)` but also yields
/// every semi-local answer. Large grids are combed block-parallel
/// ([`SeaweedKernel::comb_par`]; identical result).
pub fn lcs_via_kernel(a: &[u32], b: &[u32]) -> usize {
    if b.is_empty() {
        return 0;
    }
    SeaweedKernel::comb_par(a, b).lcs_window(0, b.len())
}

/// Semi-local LCS: after `O(|a| · |b|)` preprocessing, answers `LCS(a, b[l..r))` for
/// any window in `O(log² n)` (sequential counterpart of Corollary 1.3.3).
#[derive(Clone, Debug)]
pub struct SemiLocalLcs {
    queries: SemiLocalQueries,
}

impl SemiLocalLcs {
    /// Builds the structure by combing the full alignment grid (block-parallel
    /// for large grids; identical result).
    pub fn new(a: &[u32], b: &[u32]) -> Self {
        Self {
            queries: SeaweedKernel::comb_par(a, b).queries(),
        }
    }

    /// `LCS(a, b[l..r))`.
    pub fn lcs_window(&self, l: usize, r: usize) -> usize {
        self.queries.lcs_window(l, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{lcs_length_dp, semi_local_lcs_brute};
    use rand::prelude::*;

    fn random_string(len: usize, alphabet: u32, rng: &mut StdRng) -> Vec<u32> {
        (0..len).map(|_| rng.gen_range(0..alphabet)).collect()
    }

    #[test]
    fn hunt_szymanski_matches_dp() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            let m = rng.gen_range(0..40);
            let n = rng.gen_range(0..40);
            let alphabet = rng.gen_range(2..8);
            let a = random_string(m, alphabet, &mut rng);
            let b = random_string(n, alphabet, &mut rng);
            assert_eq!(
                lcs_via_lis(&a, &b),
                lcs_length_dp(&a, &b),
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn kernel_lcs_matches_dp() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let m = rng.gen_range(1..25);
            let n = rng.gen_range(1..25);
            let alphabet = rng.gen_range(2..6);
            let a = random_string(m, alphabet, &mut rng);
            let b = random_string(n, alphabet, &mut rng);
            assert_eq!(lcs_via_kernel(&a, &b), lcs_length_dp(&a, &b));
        }
    }

    #[test]
    fn pair_listing_order() {
        let a = [1u32, 2, 1];
        let b = [1u32, 1, 2];
        let pairs = hunt_szymanski_pairs(&a, &b);
        assert_eq!(pairs, vec![(0, 1), (0, 0), (1, 2), (2, 1), (2, 0)]);
    }

    #[test]
    fn pair_count_bound() {
        // The reduction may produce Θ(mn) pairs — the reason Corollary 1.3.1 needs
        // Õ(n²) total space.
        let a = vec![7u32; 20];
        let b = vec![7u32; 30];
        assert_eq!(hunt_szymanski_pairs(&a, &b).len(), 600);
        assert_eq!(lcs_via_lis(&a, &b), 20);
    }

    #[test]
    fn semi_local_lcs_matches_brute() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let m = rng.gen_range(1..15);
            let n = rng.gen_range(1..15);
            let a = random_string(m, 4, &mut rng);
            let b = random_string(n, 4, &mut rng);
            let brute = semi_local_lcs_brute(&a, &b);
            let fast = SemiLocalLcs::new(&a, &b);
            for l in 0..=n {
                for r in l..=n {
                    assert_eq!(fast.lcs_window(l, r), brute[l][r]);
                }
            }
        }
    }

    #[test]
    fn disjoint_alphabets_give_zero() {
        let a = vec![1u32, 2, 3];
        let b = vec![4u32, 5, 6];
        assert_eq!(lcs_via_lis(&a, &b), 0);
        assert_eq!(lcs_via_kernel(&a, &b), 0);
    }

    #[test]
    fn identical_strings() {
        let a: Vec<u32> = (0..50).map(|i| i % 7).collect();
        assert_eq!(lcs_via_lis(&a, &a), 50);
        assert_eq!(lcs_via_kernel(&a, &a), 50);
    }
}
