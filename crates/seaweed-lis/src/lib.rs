//! Sequential LIS / LCS applications of the seaweed (unit-Monge) framework.
//!
//! The paper's headline application (Theorem 1.3 and Corollaries 1.3.1–1.3.3) reduces
//! the longest increasing subsequence problem to `O(n)` implicit subunit-Monge
//! multiplications via Tiskin's *semi-local* string comparison framework. This crate
//! implements the sequential side of that reduction:
//!
//! * [`baselines`] — Fredman's `O(n log n)` patience-sorting LIS, quadratic DP
//!   baselines for LIS and LCS, and brute-force semi-local oracles for tests.
//! * [`kernel`] — the semi-local seaweed kernel `P_{X,Y}`: the `O(mn)` combing
//!   algorithm (ground truth), window queries, horizontal composition via `⊡`, and
//!   the alphabet inflation used by the LIS divide and conquer.
//! * [`lis`] — the `O(n log² n)` divide-and-conquer LIS kernel built from `⊡`
//!   (the sequential analogue of Theorem 1.3), global LIS length and semi-local
//!   (window) LIS queries.
//! * [`lcs`] — the Hunt–Szymanski reduction from LCS to LIS (Corollary 1.3.1) and
//!   semi-local LCS queries via the combing kernel (Corollary 1.3.3).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod kernel;
pub mod lcs;
pub mod lis;

pub use kernel::SeaweedKernel;
pub use lcs::lcs_via_lis;
pub use lis::{lis_kernel, lis_length, SemiLocalLis};
