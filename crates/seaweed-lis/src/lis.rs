//! LIS via the seaweed framework: the divide-and-conquer kernel construction that
//! Theorem 1.3 parallelizes.
//!
//! For a sequence `A` of `n` distinct values, `LIS(A[l..r)) = LCS(sorted(A), A[l..r))`,
//! so the semi-local kernel of `(identity over the value alphabet, A)` answers every
//! window-LIS query. The kernel is built bottom-up over the positions of `A`
//! (`A = A_lo ∘ A_hi`): each half is relabelled to its own compact alphabet, solved
//! recursively, inflated back to the full alphabet ([`SeaweedKernel::inflate_rows`])
//! and the two halves are merged with one implicit unit-Monge multiplication
//! ([`compose_horizontal`]). Total work `O(n log² n)`; the MPC version (`lis-mpc`)
//! executes the same recursion level-by-level in `O(log n)` rounds.

use crate::kernel::{compose_horizontal, SeaweedKernel, SemiLocalQueries};

/// Size below which the kernel is computed by direct combing rather than recursion.
const COMB_BASE: usize = 32;

/// Size above which the two recursive halves are forked onto the thread pool.
/// Below this, spawning a scoped thread costs more than the subproblem.
/// `rayon::join` halves the caller's thread budget at every fork, so the
/// recursion self-limits at ~`num_threads` concurrently live subtrees and
/// continues sequentially underneath — the live thread count does not grow
/// with `n`.
const PAR_SPLIT: usize = 1 << 12;

/// Builds the LIS kernel of a permutation of `0..n` (values must be exactly
/// `0..n` in some order).
pub fn lis_kernel_permutation(perm: &[u32]) -> SeaweedKernel {
    let n = perm.len();
    debug_assert!(
        {
            let mut seen = vec![false; n];
            perm.iter().all(|&v| {
                let ok = (v as usize) < n && !seen[v as usize];
                if ok {
                    seen[v as usize] = true;
                }
                ok
            })
        },
        "input must be a permutation of 0..n"
    );

    if n <= COMB_BASE {
        let x: Vec<u32> = (0..n as u32).collect();
        return SeaweedKernel::comb(&x, perm);
    }

    let half = n / 2;
    let (lo, hi) = perm.split_at(half);
    let (lo_relabelled, lo_values) = relabel(lo);
    let (hi_relabelled, hi_values) = relabel(hi);

    let build_lo = || lis_kernel_permutation(&lo_relabelled).inflate_rows(&lo_values, n);
    let build_hi = || lis_kernel_permutation(&hi_relabelled).inflate_rows(&hi_values, n);
    let (k_lo, k_hi) = if n >= PAR_SPLIT {
        rayon::join(build_lo, build_hi)
    } else {
        (build_lo(), build_hi())
    };
    compose_horizontal(&k_lo, &k_hi)
}

/// Budget-bounded streaming LIS kernel: builds the kernel of a permutation of
/// `0..n` by combing consecutive sub-blocks of at most `chunk` elements and
/// composing them left to right.
///
/// Each sub-block is first relabelled to its own compact alphabet, so the
/// direct comb touches a `chunk × chunk` grid with `2·chunk` seaweeds — a
/// crossing bitset of `(2·chunk)²` bits — instead of the `(2n)²` bits a direct
/// comb of the whole permutation would materialize. The sub-kernel is inflated
/// back to the full alphabet ([`SeaweedKernel::inflate_rows`]) and folded into
/// the accumulator with one `⊡` per sub-block, mirroring the §4.2 block
/// decomposition on a single machine. Working set: `O(n + chunk²/w)` words.
///
/// The result is identical to [`lis_kernel_permutation`]; this is the
/// construction the MPC base blocks use so a machine's peak footprint stays
/// within its space budget.
pub fn lis_kernel_permutation_streamed(perm: &[u32], chunk: usize) -> SeaweedKernel {
    let n = perm.len();
    let chunk = chunk.max(1);
    if n <= chunk {
        let x: Vec<u32> = (0..n as u32).collect();
        return SeaweedKernel::comb(&x, perm);
    }
    perm.chunks(chunk)
        .map(|sub| {
            let (relabelled, values) = relabel(sub);
            let x: Vec<u32> = (0..sub.len() as u32).collect();
            SeaweedKernel::comb(&x, &relabelled).inflate_rows(&values, n)
        })
        .reduce(|acc, next| compose_horizontal(&acc, &next))
        .expect("perm has at least one chunk")
}

/// Relabels a sequence of distinct values to ranks `0..len`, returning the rank
/// sequence and the sorted original values.
fn relabel(seq: &[u32]) -> (Vec<u32>, Vec<usize>) {
    let mut values: Vec<usize> = seq.iter().map(|&v| v as usize).collect();
    values.sort_unstable();
    let rank = |v: u32| values.partition_point(|&x| x < v as usize) as u32;
    (seq.iter().map(|&v| rank(v)).collect(), values)
}

/// Ranks an arbitrary sequence into a permutation of `0..n` such that strictly
/// increasing subsequences are preserved exactly: equal values are ranked by
/// *decreasing* position, so no two occurrences of the same value can both appear in
/// an increasing run of ranks.
pub fn rank_sequence<T: Ord>(seq: &[T]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..seq.len()).collect();
    order.sort_by(|&a, &b| seq[a].cmp(&seq[b]).then(b.cmp(&a)));
    let mut ranks = vec![0u32; seq.len()];
    for (rank, &pos) in order.iter().enumerate() {
        ranks[pos] = rank as u32;
    }
    ranks
}

/// Builds the LIS kernel of an arbitrary sequence (duplicates allowed; strict
/// increase semantics).
pub fn lis_kernel<T: Ord>(seq: &[T]) -> SeaweedKernel {
    lis_kernel_permutation(&rank_sequence(seq))
}

/// Length of the longest strictly increasing subsequence, computed through the
/// seaweed kernel (the algorithmic path Theorem 1.3 parallelizes). For a plain
/// sequential answer prefer [`crate::baselines::lis_length_patience`].
pub fn lis_length<T: Ord>(seq: &[T]) -> usize {
    if seq.is_empty() {
        return 0;
    }
    lis_kernel(seq).lcs_window(0, seq.len())
}

/// Semi-local LIS: answers `LIS(A[l..r))` for arbitrary windows after an
/// `O(n log² n)` preprocessing (Corollary 1.3.2's sequential counterpart).
#[derive(Clone, Debug)]
pub struct SemiLocalLis {
    queries: SemiLocalQueries,
}

impl SemiLocalLis {
    /// Preprocesses the sequence.
    pub fn new<T: Ord>(seq: &[T]) -> Self {
        Self {
            queries: lis_kernel(seq).queries(),
        }
    }

    /// Builds the query structure from an already-computed kernel.
    pub fn from_kernel(kernel: &SeaweedKernel) -> Self {
        Self {
            queries: kernel.queries(),
        }
    }

    /// `LIS(A[l..r))` in `O(log² n)`.
    pub fn lis_window(&self, l: usize, r: usize) -> usize {
        self.queries.lcs_window(l, r)
    }

    /// Length of the underlying sequence.
    pub fn len(&self) -> usize {
        self.queries.y_len()
    }

    /// Whether the underlying sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{lis_length_patience, semi_local_lis_brute};
    use rand::prelude::*;

    fn random_permutation(n: usize, rng: &mut StdRng) -> Vec<u32> {
        let mut v: Vec<u32> = (0..n as u32).collect();
        v.shuffle(rng);
        v
    }

    #[test]
    fn dandc_kernel_equals_combed_kernel() {
        // The divide-and-conquer construction (inflate + ⊡) must reproduce the
        // ground-truth combing exactly, not just answer the same queries.
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 7, 33, 48, 64, 100, 150] {
            let perm = random_permutation(n, &mut rng);
            let x: Vec<u32> = (0..n as u32).collect();
            let direct = SeaweedKernel::comb(&x, &perm);
            let dandc = lis_kernel_permutation(&perm);
            assert_eq!(dandc, direct, "n={n}");
        }
    }

    #[test]
    fn streamed_kernel_equals_divide_and_conquer() {
        // The budget-bounded streamed construction (relabelled sub-blocks,
        // left-fold composition) must reproduce the d&c kernel exactly.
        let mut rng = StdRng::seed_from_u64(8);
        for n in [1usize, 2, 5, 33, 64, 100, 150] {
            let perm = random_permutation(n, &mut rng);
            let expected = lis_kernel_permutation(&perm);
            for chunk in [1usize, 4, 13, 32, n.max(1), n + 7] {
                assert_eq!(
                    lis_kernel_permutation_streamed(&perm, chunk),
                    expected,
                    "n={n} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn lis_length_matches_patience_on_permutations() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [0usize, 1, 5, 17, 64, 130, 257] {
            let perm = random_permutation(n, &mut rng);
            assert_eq!(lis_length(&perm), lis_length_patience(&perm), "n={n}");
        }
    }

    #[test]
    fn lis_length_matches_patience_with_duplicates() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let n = rng.gen_range(0..120);
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..20)).collect();
            assert_eq!(lis_length(&seq), lis_length_patience(&seq), "{seq:?}");
        }
    }

    #[test]
    fn rank_sequence_preserves_strict_lis() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let n = rng.gen_range(0..60);
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..10)).collect();
            let ranks = rank_sequence(&seq);
            assert_eq!(
                lis_length_patience(&seq),
                lis_length_patience(&ranks),
                "{seq:?}"
            );
        }
    }

    #[test]
    fn semi_local_lis_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n = rng.gen_range(1..40);
            let perm = random_permutation(n, &mut rng);
            let brute = semi_local_lis_brute(&perm);
            let fast = SemiLocalLis::new(&perm);
            for l in 0..=n {
                for r in l..=n {
                    assert_eq!(
                        fast.lis_window(l, r),
                        brute[l][r],
                        "perm={perm:?} [{l},{r})"
                    );
                }
            }
        }
    }

    #[test]
    fn semi_local_lis_with_duplicates() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let n = rng.gen_range(1..30);
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..6)).collect();
            let brute = semi_local_lis_brute(&seq);
            let fast = SemiLocalLis::new(&seq);
            for l in 0..=n {
                for r in l..=n {
                    assert_eq!(fast.lis_window(l, r), brute[l][r], "seq={seq:?} [{l},{r})");
                }
            }
        }
    }

    #[test]
    fn monotone_sequences() {
        let inc: Vec<u32> = (0..100).collect();
        let dec: Vec<u32> = (0..100).rev().collect();
        assert_eq!(lis_length(&inc), 100);
        assert_eq!(lis_length(&dec), 1);
        let s = SemiLocalLis::new(&dec);
        assert_eq!(s.lis_window(10, 60), 1);
        assert_eq!(s.lis_window(42, 42), 0);
    }
}
