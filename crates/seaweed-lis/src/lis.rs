//! LIS via the seaweed framework: the divide-and-conquer kernel construction that
//! Theorem 1.3 parallelizes.
//!
//! For a sequence `A` of `n` distinct values, `LIS(A[l..r)) = LCS(sorted(A), A[l..r))`,
//! so the semi-local kernel of `(identity over the value alphabet, A)` answers every
//! window-LIS query. The kernel is built bottom-up over the positions of `A`
//! (`A = A_lo ∘ A_hi`): each half is relabelled to its own compact alphabet, solved
//! recursively, inflated back to the full alphabet ([`SeaweedKernel::inflate_rows`])
//! and the two halves are merged with one implicit unit-Monge multiplication
//! ([`compose_horizontal`]). Total work `O(n log² n)`; the MPC version (`lis-mpc`)
//! executes the same recursion level-by-level in `O(log n)` rounds.

use crate::kernel::{compose_horizontal, SeaweedKernel, SemiLocalQueries};

/// Splits a value-window LIS query at a merge node into per-child sub-queries
/// (the Hirschberg-style step of the witness traceback).
///
/// `lo` / `hi` are the two children of the merge in position order: each is the
/// pair of its sorted global value set and its kernel over the corresponding
/// compact alphabet. The query asks for an increasing subsequence of the merged
/// content using only global values in `[vlo, vhi)`, of the *maximal* length
/// `t` (the caller guarantees `t` is exactly the value-window LIS of the merged
/// node, as read off its composed kernel).
///
/// Because the witness is increasing in value as position grows, every value it
/// uses in `lo` is smaller than every value it uses in `hi`: some threshold `w`
/// separates the two parts. The split evaluates, in one pass each,
/// `F[j] = LIS(lo, values ∈ [vlo, w))` ([`SeaweedKernel::x_prefix_lcs`]) and
/// `G[d] = LIS(hi, values ∈ [w, vhi))` ([`SeaweedKernel::x_suffix_lcs`]), then
/// walks the merged staircase of both value sets until `F[j] + G[d] = t` —
/// guaranteed to occur, since every candidate is ≤ `t` (the concatenation of
/// the two sub-witnesses is itself an increasing subsequence) and the optimum's
/// own threshold is among the candidates.
///
/// Returns `(w, t_lo, t_hi)`: the child queries are `(vlo, w, t_lo)` on `lo`
/// and `(w, vhi, t_hi)` on `hi`, with `t_lo + t_hi = t`.
pub fn split_window_lis(
    lo: (&[usize], &SeaweedKernel),
    hi: (&[usize], &SeaweedKernel),
    vlo: usize,
    vhi: usize,
    t: usize,
) -> (usize, usize, usize) {
    let (lo_values, lo_kernel) = lo;
    let (hi_values, hi_kernel) = hi;
    let la = lo_values.partition_point(|&v| v < vlo);
    let lb = lo_values.partition_point(|&v| v < vhi);
    let ra = hi_values.partition_point(|&v| v < vlo);
    let rb = hi_values.partition_point(|&v| v < vhi);
    let f = lo_kernel.x_prefix_lcs(la, lb);
    let g = hi_kernel.x_suffix_lcs(ra, rb);

    let (mut j, mut d) = (0usize, 0usize);
    if f[j] + g[d] == t {
        return (vlo, f[j], g[d]);
    }
    // Walk the merged value staircase: each union value, in increasing order,
    // moves the threshold just past itself, bumping exactly one of (j, d).
    let (mut i, mut k) = (la, ra);
    while i < lb || k < rb {
        let u = if k == rb || (i < lb && lo_values[i] < hi_values[k]) {
            j += 1;
            i += 1;
            lo_values[i - 1]
        } else {
            d += 1;
            k += 1;
            hi_values[k - 1]
        };
        if f[j] + g[d] == t {
            return (u + 1, f[j], g[d]);
        }
    }
    unreachable!("no threshold splits the window [{vlo}, {vhi}) at length {t}")
}

/// Recovers one longest increasing-in-rank subsequence of `items` restricted to
/// ranks in `[vlo, vhi)`. `items` are `(position, rank)` pairs in position
/// order; the result keeps that order. Patience sorting with parent pointers,
/// `O(B log B)` — the base-block step of the witness traceback.
pub fn lis_witness_in_rank_range(items: &[(u32, u32)], vlo: u32, vhi: u32) -> Vec<(u32, u32)> {
    let eligible: Vec<usize> = (0..items.len())
        .filter(|&i| (vlo..vhi).contains(&items[i].1))
        .collect();
    if eligible.is_empty() {
        return Vec::new();
    }
    let mut tails: Vec<usize> = Vec::new(); // indices into `eligible`
    let mut prev: Vec<usize> = vec![usize::MAX; eligible.len()];
    for (e, &i) in eligible.iter().enumerate() {
        let rank = items[i].1;
        let pos = tails.partition_point(|&tl| items[eligible[tl]].1 < rank);
        prev[e] = if pos == 0 { usize::MAX } else { tails[pos - 1] };
        if pos == tails.len() {
            tails.push(e);
        } else {
            tails[pos] = e;
        }
    }
    let mut out = Vec::with_capacity(tails.len());
    let mut cur = *tails.last().expect("nonempty");
    while cur != usize::MAX {
        out.push(items[eligible[cur]]);
        cur = prev[cur];
    }
    out.reverse();
    out
}

/// Size below which the kernel is computed by direct combing rather than recursion.
const COMB_BASE: usize = 32;

/// Size above which the two recursive halves are forked onto the thread pool.
/// Below this, spawning a scoped thread costs more than the subproblem.
/// `rayon::join` halves the caller's thread budget at every fork, so the
/// recursion self-limits at ~`num_threads` concurrently live subtrees and
/// continues sequentially underneath — the live thread count does not grow
/// with `n`.
const PAR_SPLIT: usize = 1 << 12;

/// Builds the LIS kernel of a permutation of `0..n` (values must be exactly
/// `0..n` in some order).
pub fn lis_kernel_permutation(perm: &[u32]) -> SeaweedKernel {
    let n = perm.len();
    debug_assert!(
        {
            let mut seen = vec![false; n];
            perm.iter().all(|&v| {
                let ok = (v as usize) < n && !seen[v as usize];
                if ok {
                    seen[v as usize] = true;
                }
                ok
            })
        },
        "input must be a permutation of 0..n"
    );

    if n <= COMB_BASE {
        let x: Vec<u32> = (0..n as u32).collect();
        return SeaweedKernel::comb_bitparallel(&x, perm);
    }

    let half = n / 2;
    let (lo, hi) = perm.split_at(half);
    let (lo_relabelled, lo_values) = relabel(lo);
    let (hi_relabelled, hi_values) = relabel(hi);

    let build_lo = || lis_kernel_permutation(&lo_relabelled).inflate_rows(&lo_values, n);
    let build_hi = || lis_kernel_permutation(&hi_relabelled).inflate_rows(&hi_values, n);
    let (k_lo, k_hi) = if n >= PAR_SPLIT {
        rayon::join(build_lo, build_hi)
    } else {
        (build_lo(), build_hi())
    };
    compose_horizontal(&k_lo, &k_hi)
}

/// Budget-bounded streaming LIS kernel: builds the kernel of a permutation of
/// `0..n` by combing consecutive sub-blocks of at most `chunk` elements and
/// composing them left to right.
///
/// Each sub-block is first relabelled to its own compact alphabet, so one comb
/// touches a `chunk × chunk` grid with `2·chunk` seaweeds — a modeled crossing
/// history of `(2·chunk)²` bits — instead of the `(2n)²` bits a direct comb of
/// the whole permutation would charge. (The blocks are combed with the
/// history-free [`SeaweedKernel::comb_bitparallel`] fast path, so the actual
/// footprint is linear; the chunked shape is what the MPC space accounting
/// models.) The sub-kernel is inflated
/// back to the full alphabet ([`SeaweedKernel::inflate_rows`]) and folded into
/// the accumulator with one `⊡` per sub-block, mirroring the §4.2 block
/// decomposition on a single machine. Working set: `O(n + chunk²/w)` words.
///
/// The result is identical to [`lis_kernel_permutation`]; this is the
/// construction the MPC base blocks use so a machine's peak footprint stays
/// within its space budget.
pub fn lis_kernel_permutation_streamed(perm: &[u32], chunk: usize) -> SeaweedKernel {
    let n = perm.len();
    let chunk = chunk.max(1);
    if n <= chunk {
        let x: Vec<u32> = (0..n as u32).collect();
        return SeaweedKernel::comb_bitparallel(&x, perm);
    }
    perm.chunks(chunk)
        .map(|sub| {
            let (relabelled, values) = relabel(sub);
            let x: Vec<u32> = (0..sub.len() as u32).collect();
            SeaweedKernel::comb_bitparallel(&x, &relabelled).inflate_rows(&values, n)
        })
        .reduce(|acc, next| compose_horizontal(&acc, &next))
        .expect("perm has at least one chunk")
}

/// Relabels a sequence of distinct values to ranks `0..len`, returning the rank
/// sequence and the sorted original values.
fn relabel(seq: &[u32]) -> (Vec<u32>, Vec<usize>) {
    let mut values: Vec<usize> = seq.iter().map(|&v| v as usize).collect();
    values.sort_unstable();
    let rank = |v: u32| values.partition_point(|&x| x < v as usize) as u32;
    (seq.iter().map(|&v| rank(v)).collect(), values)
}

/// Ranks an arbitrary sequence into a permutation of `0..n` such that strictly
/// increasing subsequences are preserved exactly: equal values are ranked by
/// *decreasing* position, so no two occurrences of the same value can both appear in
/// an increasing run of ranks.
///
/// The tie direction is load-bearing, not a convention: LIS here is *strict*,
/// so two equal elements must never both be selectable, which descending-by-
/// position ranks guarantee (the earlier occurrence gets the larger rank —
/// `rank_sequence(&[5, 5]) == [1, 0]`). The inverted convention (ascending by
/// position) would instead *count* equal elements as increasing and overshoot
/// on duplicate-heavy inputs; the `rank_ties_break_descending_by_position`
/// test below and the duplicate-heavy differential proptest in
/// `tests/properties.rs` pin this down.
pub fn rank_sequence<T: Ord>(seq: &[T]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..seq.len()).collect();
    order.sort_by(|&a, &b| seq[a].cmp(&seq[b]).then(b.cmp(&a)));
    let mut ranks = vec![0u32; seq.len()];
    for (rank, &pos) in order.iter().enumerate() {
        ranks[pos] = rank as u32;
    }
    ranks
}

/// Builds the LIS kernel of an arbitrary sequence (duplicates allowed; strict
/// increase semantics).
pub fn lis_kernel<T: Ord>(seq: &[T]) -> SeaweedKernel {
    lis_kernel_permutation(&rank_sequence(seq))
}

/// Length of the longest strictly increasing subsequence, computed through the
/// seaweed kernel (the algorithmic path Theorem 1.3 parallelizes). For a plain
/// sequential answer prefer [`crate::baselines::lis_length_patience`].
pub fn lis_length<T: Ord>(seq: &[T]) -> usize {
    if seq.is_empty() {
        return 0;
    }
    lis_kernel(seq).lcs_window(0, seq.len())
}

/// The LIS kernel with its merge tree *recorded* for witness traceback: every
/// divide-and-conquer merge keeps its two children (value sets + kernels), which
/// is exactly enough seaweed crossing structure to split a value-window LIS
/// query into per-child sub-queries ([`split_window_lis`]) and push it down to
/// the leaves, where the actual subsequence is reconstructed from the stored
/// contents ([`lis_witness_in_rank_range`]).
///
/// This is the sequential counterpart of the distributed traceback in
/// `lis_mpc::witness`: same tree shape, same split arithmetic, one machine.
pub struct TracedLisKernel {
    n: usize,
    root: Option<TraceNode>,
}

struct TraceNode {
    /// Sorted global ranks present in this node's position range.
    values: Vec<usize>,
    /// Kernel of (identity over `values`, node contents), compact alphabet.
    kernel: SeaweedKernel,
    kind: TraceKind,
}

enum TraceKind {
    /// Contents stored as `(position, global rank)` in position order.
    Leaf { items: Vec<(u32, u32)> },
    /// The two children in position order.
    Merge {
        lo: Box<TraceNode>,
        hi: Box<TraceNode>,
    },
}

impl TracedLisKernel {
    /// Builds the traced kernel: `O(n log² n)`, like [`lis_kernel`], plus the
    /// recorded tree (`O(n log n)` extra space).
    pub fn new<T: Ord>(seq: &[T]) -> Self {
        let n = seq.len();
        let ranks = rank_sequence(seq);
        let items: Vec<(u32, u32)> = ranks
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as u32, r))
            .collect();
        Self {
            n,
            root: (n > 0).then(|| build_trace(items)),
        }
    }

    /// Length of the underlying sequence.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the underlying sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The semi-local kernel of the whole sequence (identical to
    /// [`lis_kernel`]).
    pub fn kernel(&self) -> Option<&SeaweedKernel> {
        self.root.as_ref().map(|r| &r.kernel)
    }

    /// Length of the longest strictly increasing subsequence.
    pub fn lis_length(&self) -> usize {
        self.root
            .as_ref()
            .map_or(0, |r| r.kernel.lcs_window(0, self.n))
    }

    /// Positions (indices into the input sequence) of one longest strictly
    /// increasing subsequence, recovered by traceback through the recorded
    /// merge tree: split at every merge, reconstruct at the leaves.
    pub fn witness(&self) -> Vec<usize> {
        let Some(root) = &self.root else {
            return Vec::new();
        };
        let t = self.lis_length();
        if t == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(t);
        trace_query(root, 0, self.n, t, &mut out);
        debug_assert_eq!(out.len(), t);
        debug_assert!(out.windows(2).all(|w| w[0].1 < w[1].1));
        out.into_iter().map(|(pos, _)| pos as usize).collect()
    }
}

fn build_trace(items: Vec<(u32, u32)>) -> TraceNode {
    let mut values: Vec<usize> = items.iter().map(|&(_, r)| r as usize).collect();
    values.sort_unstable();
    if items.len() <= COMB_BASE {
        let compact: Vec<u32> = items
            .iter()
            .map(|&(_, r)| values.partition_point(|&v| v < r as usize) as u32)
            .collect();
        let x: Vec<u32> = (0..compact.len() as u32).collect();
        let kernel = SeaweedKernel::comb_bitparallel(&x, &compact);
        return TraceNode {
            values,
            kernel,
            kind: TraceKind::Leaf { items },
        };
    }
    let half = items.len() / 2;
    let hi_items = items[half..].to_vec();
    let mut lo_items = items;
    lo_items.truncate(half);
    let lo = build_trace(lo_items);
    let hi = build_trace(hi_items);
    let compact_of = |subset: &[usize]| -> Vec<usize> {
        subset
            .iter()
            .map(|&v| values.partition_point(|&u| u < v))
            .collect()
    };
    let lo_inflated = lo
        .kernel
        .inflate_rows(&compact_of(&lo.values), values.len());
    let hi_inflated = hi
        .kernel
        .inflate_rows(&compact_of(&hi.values), values.len());
    let kernel = compose_horizontal(&lo_inflated, &hi_inflated);
    TraceNode {
        values,
        kernel,
        kind: TraceKind::Merge {
            lo: Box::new(lo),
            hi: Box::new(hi),
        },
    }
}

/// Pushes the query "a length-`t` increasing subsequence using global ranks in
/// `[vlo, vhi)`" down the recorded tree, appending the chosen `(position,
/// rank)` pairs in position order.
fn trace_query(node: &TraceNode, vlo: usize, vhi: usize, t: usize, out: &mut Vec<(u32, u32)>) {
    match &node.kind {
        TraceKind::Leaf { items } => {
            let chosen = lis_witness_in_rank_range(items, vlo as u32, vhi as u32);
            assert_eq!(
                chosen.len(),
                t,
                "leaf reconstruction must realize the split length"
            );
            out.extend(chosen);
        }
        TraceKind::Merge { lo, hi } => {
            let (w, t_lo, t_hi) = split_window_lis(
                (&lo.values, &lo.kernel),
                (&hi.values, &hi.kernel),
                vlo,
                vhi,
                t,
            );
            if t_lo > 0 {
                trace_query(lo, vlo, w, t_lo, out);
            }
            if t_hi > 0 {
                trace_query(hi, w, vhi, t_hi, out);
            }
        }
    }
}

/// Positions of one longest strictly increasing subsequence of `seq`, via the
/// traced seaweed kernel (the algorithmic path the MPC witness recovery
/// parallelizes). For a plain sequential answer prefer
/// [`crate::baselines::lis_values`].
pub fn lis_witness<T: Ord>(seq: &[T]) -> Vec<usize> {
    TracedLisKernel::new(seq).witness()
}

/// Why a window-LIS query was rejected (see [`SemiLocalLis::try_lis_window`]).
///
/// Service-facing entry points must not panic on malformed client input; this
/// is the structured form of every validation [`SemiLocalLis::lis_window`]
/// enforces, so callers that serve untrusted queries can turn a bad window into
/// an error response instead of a crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowError {
    /// `l > r`: the window is inverted.
    Inverted {
        /// Window start (inclusive).
        l: usize,
        /// Window end (exclusive).
        r: usize,
        /// Length of the indexed sequence.
        len: usize,
    },
    /// `r > len`: the window runs past the end of the sequence.
    OutOfRange {
        /// Window start (inclusive).
        l: usize,
        /// Window end (exclusive).
        r: usize,
        /// Length of the indexed sequence.
        len: usize,
    },
    /// The window end exceeds `u32::MAX`: the dominance counter underneath
    /// indexes columns as `u32`, so larger bounds would silently truncate.
    IndexOverflow {
        /// The offending window end.
        r: usize,
    },
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WindowError::Inverted { l, r, len } | WindowError::OutOfRange { l, r, len } => {
                write!(
                    f,
                    "LIS window [{l}, {r}) is invalid for a sequence of length {len}"
                )
            }
            WindowError::IndexOverflow { r } => {
                write!(f, "LIS window end {r} exceeds the u32 index range")
            }
        }
    }
}

impl std::error::Error for WindowError {}

/// Semi-local LIS: answers `LIS(A[l..r))` for arbitrary windows after an
/// `O(n log² n)` preprocessing (Corollary 1.3.2's sequential counterpart).
#[derive(Clone, Debug)]
pub struct SemiLocalLis {
    queries: SemiLocalQueries,
}

impl SemiLocalLis {
    /// Preprocesses the sequence.
    pub fn new<T: Ord>(seq: &[T]) -> Self {
        Self {
            queries: lis_kernel(seq).queries(),
        }
    }

    /// Builds the query structure from an already-computed kernel.
    pub fn from_kernel(kernel: &SeaweedKernel) -> Self {
        Self {
            queries: kernel.queries(),
        }
    }

    /// `LIS(A[l..r))` in `O(log² n)`, with window validation reported as a
    /// [`WindowError`] instead of a panic — the entry point for service-facing
    /// callers handling untrusted queries. `l == r` is a valid empty window
    /// and answers `Ok(0)`.
    pub fn try_lis_window(&self, l: usize, r: usize) -> Result<usize, WindowError> {
        let len = self.len();
        if l > r {
            return Err(WindowError::Inverted { l, r, len });
        }
        if r > len {
            return Err(WindowError::OutOfRange { l, r, len });
        }
        if r > u32::MAX as usize {
            return Err(WindowError::IndexOverflow { r });
        }
        Ok(self.queries.lcs_window(l, r))
    }

    /// `LIS(A[l..r))` in `O(log² n)`.
    ///
    /// # Panics
    ///
    /// Panics when the window is invalid (`l > r` or `r > len`): the dominance
    /// sum underneath would otherwise wrap into a meaningless count, so invalid
    /// windows are rejected loudly instead of clamped. `l == r` is a valid
    /// empty window and answers `0`. Validation is shared with the non-panicking
    /// [`SemiLocalLis::try_lis_window`].
    pub fn lis_window(&self, l: usize, r: usize) -> usize {
        match self.try_lis_window(l, r) {
            Ok(answer) => answer,
            Err(e) => panic!("{e}"),
        }
    }

    /// Length of the underlying sequence.
    pub fn len(&self) -> usize {
        self.queries.y_len()
    }

    /// Whether the underlying sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{lis_length_patience, semi_local_lis_brute};
    use rand::prelude::*;

    fn random_permutation(n: usize, rng: &mut StdRng) -> Vec<u32> {
        let mut v: Vec<u32> = (0..n as u32).collect();
        v.shuffle(rng);
        v
    }

    #[test]
    fn dandc_kernel_equals_combed_kernel() {
        // The divide-and-conquer construction (inflate + ⊡) must reproduce the
        // ground-truth combing exactly, not just answer the same queries.
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 7, 33, 48, 64, 100, 150] {
            let perm = random_permutation(n, &mut rng);
            let x: Vec<u32> = (0..n as u32).collect();
            let direct = SeaweedKernel::comb(&x, &perm);
            let dandc = lis_kernel_permutation(&perm);
            assert_eq!(dandc, direct, "n={n}");
        }
    }

    #[test]
    fn streamed_kernel_equals_divide_and_conquer() {
        // The budget-bounded streamed construction (relabelled sub-blocks,
        // left-fold composition) must reproduce the d&c kernel exactly.
        let mut rng = StdRng::seed_from_u64(8);
        for n in [1usize, 2, 5, 33, 64, 100, 150] {
            let perm = random_permutation(n, &mut rng);
            let expected = lis_kernel_permutation(&perm);
            for chunk in [1usize, 4, 13, 32, n.max(1), n + 7] {
                assert_eq!(
                    lis_kernel_permutation_streamed(&perm, chunk),
                    expected,
                    "n={n} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn lis_length_matches_patience_on_permutations() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [0usize, 1, 5, 17, 64, 130, 257] {
            let perm = random_permutation(n, &mut rng);
            assert_eq!(lis_length(&perm), lis_length_patience(&perm), "n={n}");
        }
    }

    #[test]
    fn lis_length_matches_patience_with_duplicates() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let n = rng.gen_range(0..120);
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..20)).collect();
            assert_eq!(lis_length(&seq), lis_length_patience(&seq), "{seq:?}");
        }
    }

    #[test]
    fn rank_sequence_preserves_strict_lis() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let n = rng.gen_range(0..60);
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..10)).collect();
            let ranks = rank_sequence(&seq);
            assert_eq!(
                lis_length_patience(&seq),
                lis_length_patience(&ranks),
                "{seq:?}"
            );
        }
    }

    #[test]
    fn semi_local_lis_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n = rng.gen_range(1..40);
            let perm = random_permutation(n, &mut rng);
            let brute = semi_local_lis_brute(&perm);
            let fast = SemiLocalLis::new(&perm);
            for l in 0..=n {
                for r in l..=n {
                    assert_eq!(
                        fast.lis_window(l, r),
                        brute[l][r],
                        "perm={perm:?} [{l},{r})"
                    );
                }
            }
        }
    }

    #[test]
    fn semi_local_lis_with_duplicates() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let n = rng.gen_range(1..30);
            let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..6)).collect();
            let brute = semi_local_lis_brute(&seq);
            let fast = SemiLocalLis::new(&seq);
            for l in 0..=n {
                for r in l..=n {
                    assert_eq!(fast.lis_window(l, r), brute[l][r], "seq={seq:?} [{l},{r})");
                }
            }
        }
    }

    #[test]
    fn traced_witness_is_valid_and_maximal() {
        // The traceback through the recorded merge tree must return positions of
        // an actual longest strictly increasing subsequence — on permutations
        // and on duplicate-heavy sequences alike.
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..25 {
            let n = rng.gen_range(0..220);
            let seq: Vec<u32> = if rng.gen_bool(0.5) {
                random_permutation(n, &mut rng)
            } else {
                (0..n).map(|_| rng.gen_range(0..12)).collect()
            };
            let positions = lis_witness(&seq);
            assert_eq!(positions.len(), lis_length_patience(&seq), "{seq:?}");
            assert!(positions.windows(2).all(|w| w[0] < w[1]), "{positions:?}");
            assert!(
                positions.windows(2).all(|w| seq[w[0]] < seq[w[1]]),
                "witness not strictly increasing: {seq:?} {positions:?}"
            );
        }
    }

    #[test]
    fn traced_kernel_matches_untraced() {
        let mut rng = StdRng::seed_from_u64(32);
        for n in [1usize, 7, 33, 100, 150] {
            let perm = random_permutation(n, &mut rng);
            let traced = TracedLisKernel::new(&perm);
            assert_eq!(traced.kernel().unwrap(), &lis_kernel(&perm), "n={n}");
            assert_eq!(traced.lis_length(), lis_length_patience(&perm));
        }
        assert!(TracedLisKernel::new::<u32>(&[]).witness().is_empty());
    }

    #[test]
    fn split_window_lis_splits_exactly() {
        // Every merge split must hand down sub-lengths that add up and are
        // realizable — exercised across value windows, not just the full range.
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..20 {
            let n = rng.gen_range(2..80);
            let perm = random_permutation(n, &mut rng);
            let half = n / 2;
            let build = |part: &[u32]| {
                let (relabelled, values) = relabel(part);
                let x: Vec<u32> = (0..part.len() as u32).collect();
                (values, SeaweedKernel::comb(&x, &relabelled))
            };
            let (lo_values, lo_kernel) = build(&perm[..half]);
            let (hi_values, hi_kernel) = build(&perm[half..]);
            for _ in 0..4 {
                let vlo = rng.gen_range(0..n);
                let vhi = rng.gen_range(vlo..=n);
                let filtered: Vec<u32> = perm
                    .iter()
                    .copied()
                    .filter(|&v| (vlo as u32..vhi as u32).contains(&v))
                    .collect();
                let t = lis_length_patience(&filtered);
                if t == 0 {
                    continue;
                }
                let (w, t_lo, t_hi) = split_window_lis(
                    (&lo_values, &lo_kernel),
                    (&hi_values, &hi_kernel),
                    vlo,
                    vhi,
                    t,
                );
                assert_eq!(t_lo + t_hi, t);
                assert!((vlo..=vhi).contains(&w), "threshold outside the window");
                let lo_filtered: Vec<u32> = perm[..half]
                    .iter()
                    .copied()
                    .filter(|&v| (vlo as u32..w as u32).contains(&v))
                    .collect();
                let hi_filtered: Vec<u32> = perm[half..]
                    .iter()
                    .copied()
                    .filter(|&v| (w as u32..vhi as u32).contains(&v))
                    .collect();
                assert_eq!(lis_length_patience(&lo_filtered), t_lo, "perm={perm:?}");
                assert_eq!(lis_length_patience(&hi_filtered), t_hi, "perm={perm:?}");
            }
        }
    }

    #[test]
    fn rank_ties_break_descending_by_position() {
        // Equal values must rank right-to-left so a strict LIS can never take
        // two of them; the inverted convention would rank [5, 5] as [0, 1] and
        // count both.
        assert_eq!(rank_sequence(&[5u32, 5]), vec![1, 0]);
        assert_eq!(rank_sequence(&[7u32, 7, 7]), vec![2, 1, 0]);
        assert_eq!(rank_sequence(&[2u32, 1, 2]), vec![2, 0, 1]);
        // The convention is what keeps constant sequences at LIS 1.
        assert_eq!(lis_length(&[9u32; 40]), 1);
    }

    #[test]
    fn lis_window_degenerate_windows() {
        let seq: Vec<u32> = vec![3, 1, 4, 1, 5];
        let index = SemiLocalLis::new(&seq);
        for l in 0..=seq.len() {
            assert_eq!(index.lis_window(l, l), 0, "empty window [{l}, {l})");
        }
        assert_eq!(index.lis_window(0, seq.len()), 3);

        // The empty sequence still builds and answers its only valid window.
        let empty = SemiLocalLis::new::<u32>(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.lis_window(0, 0), 0);
    }

    #[test]
    fn try_lis_window_reports_structured_errors() {
        let index = SemiLocalLis::new(&[3u32, 1, 4, 1, 5]);
        assert_eq!(index.try_lis_window(1, 4), Ok(2));
        assert_eq!(index.try_lis_window(2, 2), Ok(0));
        assert_eq!(
            index.try_lis_window(4, 2),
            Err(WindowError::Inverted { l: 4, r: 2, len: 5 })
        );
        assert_eq!(
            index.try_lis_window(1, 6),
            Err(WindowError::OutOfRange { l: 1, r: 6, len: 5 })
        );
        // The error message is exactly what the panicking path prints.
        assert_eq!(
            index.try_lis_window(4, 2).unwrap_err().to_string(),
            "LIS window [4, 2) is invalid for a sequence of length 5"
        );
        assert_eq!(
            WindowError::IndexOverflow { r: 1 << 33 }.to_string(),
            format!(
                "LIS window end {} exceeds the u32 index range",
                1usize << 33
            )
        );
    }

    #[test]
    #[should_panic(expected = "LIS window [4, 2) is invalid")]
    fn lis_window_rejects_inverted_window() {
        SemiLocalLis::new(&[1u32, 2, 3, 4, 5]).lis_window(4, 2);
    }

    #[test]
    #[should_panic(expected = "invalid for a sequence of length 5")]
    fn lis_window_rejects_out_of_range_end() {
        SemiLocalLis::new(&[1u32, 2, 3, 4, 5]).lis_window(1, 6);
    }

    #[test]
    #[should_panic(expected = "invalid for a sequence of length 0")]
    fn lis_window_rejects_out_of_range_on_empty() {
        SemiLocalLis::new::<u32>(&[]).lis_window(0, 1);
    }

    #[test]
    fn lis_witness_in_rank_range_respects_bounds() {
        let items: Vec<(u32, u32)> = vec![(0, 4), (1, 0), (2, 5), (3, 2), (4, 3), (5, 1)];
        let full = lis_witness_in_rank_range(&items, 0, 6);
        assert_eq!(full.iter().map(|&(_, r)| r).collect::<Vec<_>>(), [0, 2, 3]);
        let windowed = lis_witness_in_rank_range(&items, 2, 6);
        assert_eq!(windowed.iter().map(|&(_, r)| r).collect::<Vec<_>>(), [2, 3]);
        assert!(lis_witness_in_rank_range(&items, 6, 6).is_empty());
    }

    #[test]
    fn monotone_sequences() {
        let inc: Vec<u32> = (0..100).collect();
        let dec: Vec<u32> = (0..100).rev().collect();
        assert_eq!(lis_length(&inc), 100);
        assert_eq!(lis_length(&dec), 1);
        let s = SemiLocalLis::new(&dec);
        assert_eq!(s.lis_window(10, 60), 1);
        assert_eq!(s.lis_window(42, 42), 0);
    }
}
