//! The analytics service end-to-end: start a server, ingest a measurement
//! series, and serve window-LIS and witness queries off the hot kernel — then
//! extend the series with a fresh block of samples and watch the append touch
//! only the merge-tree spine.
//!
//! The motivating workload: a dashboard asking trend questions ("how long is
//! the longest increasing run in this window?", "*which* samples form it?")
//! against a series that keeps growing. Building the seaweed kernel costs
//! `O(n log² n)`; every question after that is cheap — as long as the kernel
//! stays hot and appends don't trigger rebuilds.
//!
//! Run with: `cargo run --release --example analytics_service`

use monge_mpc_suite::lis_service::{Client, Server, ServiceConfig, Value};
use rand::prelude::*;
use std::time::Instant;

fn request(client: &mut Client, what: &str, line: &str) -> Value {
    let start = Instant::now();
    let response = client.request(line).expect("request");
    let elapsed = start.elapsed();
    assert_eq!(
        response.get("ok").and_then(Value::as_bool),
        Some(true),
        "{what}: {response}"
    );
    println!("{what:<28} {elapsed:>10.2?}");
    response
}

fn main() {
    let n = 60_000;
    let mut rng = StdRng::seed_from_u64(11);
    let series: Vec<u32> = (0..n)
        .map(|i| (i as f64 * 0.6) as u32 + rng.gen_range(0u32..8_000))
        .collect();

    let server = Server::start(ServiceConfig::default()).expect("bind loopback");
    println!("analytics service listening on {}\n", server.addr());
    let mut client = Client::connect(server.addr()).expect("connect");

    // Ingest builds the kernel once; the id is the sequence's content hash.
    let rendered: Vec<String> = series.iter().map(|v| v.to_string()).collect();
    let built = request(
        &mut client,
        "ingest (cold build)",
        &format!(r#"{{"op":"ingest","seq":[{}]}}"#, rendered.join(",")),
    );
    let id = built.get("id").and_then(Value::as_str).unwrap().to_string();
    println!(
        "  kernel {id}: n = {}, LIS = {}\n",
        built.get("n").and_then(Value::as_int).unwrap(),
        built.get("lis").and_then(Value::as_int).unwrap(),
    );

    // Re-submitting the identical series dedupes to a cache hit.
    let again = request(
        &mut client,
        "ingest (dedupe hit)",
        &format!(r#"{{"op":"ingest","seq":[{}]}}"#, rendered.join(",")),
    );
    assert_eq!(again.get("cached").and_then(Value::as_bool), Some(true));

    // Window-LIS queries answer off the hot kernel in O(log² n) each.
    let windows = request(
        &mut client,
        "window x3 (hot kernel)",
        &format!(r#"{{"op":"window","id":"{id}","windows":[[0,{n}],[1000,21000],[40000,{n}]]}}"#),
    );
    println!("  window answers: {}\n", windows.get("lis").unwrap());

    // A multi-range witness request: every range rides ONE traceback descent.
    let witness = request(
        &mut client,
        "witness x3 (one descent)",
        &format!(
            r#"{{"op":"witness","id":"{id}","ranges":[[0,50000],[8000,30000],[20000,20500]]}}"#
        ),
    );
    let batch = witness.get("batch").and_then(Value::as_int).unwrap();
    for (i, w) in witness
        .get("witnesses")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .enumerate()
    {
        let positions = w.get("positions").and_then(Value::as_arr).unwrap();
        println!(
            "  range {i}: {} positions realized (batch of {batch})",
            positions.len()
        );
    }
    println!();

    // Append a fresh block: only the O(log n) merge-tree spine recombs, and
    // the ledger proves it — `recombed items` is everything that moved.
    let block: Vec<u32> = (0..4_000)
        .map(|i| ((n + i) as f64 * 0.6) as u32 + rng.gen_range(0u32..8_000))
        .collect();
    let rendered: Vec<String> = block.iter().map(|v| v.to_string()).collect();
    let appended = request(
        &mut client,
        "append 4000 (spine only)",
        &format!(
            r#"{{"op":"append","id":"{id}","block":[{}]}}"#,
            rendered.join(",")
        ),
    );
    let stats = appended.get("stats").unwrap();
    println!(
        "  new id {}: n = {}, spine len {}, {} spine merges, {} items recombed\n",
        appended.get("id").and_then(Value::as_str).unwrap(),
        appended.get("n").and_then(Value::as_int).unwrap(),
        stats.get("spine_len").and_then(Value::as_int).unwrap(),
        stats.get("spine_merges").and_then(Value::as_int).unwrap(),
        stats.get("recombed_items").and_then(Value::as_int).unwrap(),
    );

    let stats = request(&mut client, "stats", r#"{"op":"stats"}"#);
    let counters = stats.get("cache").unwrap();
    println!(
        "  cache: {} entries, {} bytes resident, {} hits / {} misses / {} evictions, {} violations",
        stats.get("entries").and_then(Value::as_int).unwrap(),
        stats.get("bytes").and_then(Value::as_int).unwrap(),
        counters.get("hits").and_then(Value::as_int).unwrap(),
        counters.get("misses").and_then(Value::as_int).unwrap(),
        counters.get("evictions").and_then(Value::as_int).unwrap(),
        stats.get("violations").and_then(Value::as_int).unwrap(),
    );

    request(&mut client, "shutdown", r#"{"op":"shutdown"}"#);
    server.join();
}
