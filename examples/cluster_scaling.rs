//! Fully-scalable behaviour of the MPC algorithms: sweep the scalability parameter δ
//! and watch how machine count, per-machine space, rounds, communication and peak
//! load react. The round count of the unit-Monge multiplication stays flat in n for
//! a fixed recursion depth (Theorem 1.1), and the LIS round count grows only
//! logarithmically (Theorem 1.3).
//!
//! Run with: `cargo run --release --example cluster_scaling`

use monge_mpc_suite::lis_mpc::lis_kernel_mpc;
use monge_mpc_suite::monge::PermutationMatrix;
use monge_mpc_suite::monge_mpc::{self, MulParams};
use monge_mpc_suite::mpc_runtime::{Cluster, MpcConfig};
use rand::prelude::*;

fn random_permutation(n: usize, rng: &mut StdRng) -> PermutationMatrix {
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(rng);
    PermutationMatrix::from_rows(v)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    println!("== implicit unit-Monge multiplication (Theorem 1.1) ==");
    println!(
        "{:>8} {:>6} {:>9} {:>9} {:>7} {:>12} {:>10}",
        "n", "δ", "machines", "space", "rounds", "comm", "peak load"
    );
    for &n in &[1usize << 14, 1 << 16] {
        let a = random_permutation(n, &mut rng);
        let b = random_permutation(n, &mut rng);
        for &delta in &[0.25, 0.5, 0.75] {
            let mut cluster = Cluster::new(MpcConfig::new(n, delta));
            let _ = monge_mpc::mul(&mut cluster, &a, &b, &MulParams::default());
            let l = cluster.ledger();
            println!(
                "{n:>8} {delta:>6} {:>9} {:>9} {:>7} {:>12} {:>10}",
                cluster.config().machines,
                cluster.config().space,
                l.rounds,
                l.communication,
                l.max_machine_load
            );
        }
    }

    println!();
    println!("== exact LIS (Theorem 1.3) ==");
    println!(
        "{:>8} {:>6} {:>7} {:>7} {:>12}",
        "n", "δ", "levels", "rounds", "rounds/level"
    );
    for &n in &[1usize << 12, 1 << 14, 1 << 16] {
        let mut seq: Vec<u32> = (0..n as u32).collect();
        seq.shuffle(&mut rng);
        for &delta in &[0.4, 0.6] {
            // Strict budget: the space-conformant LIS pipeline must not
            // overshoot (a violation panics).
            let mut cluster = Cluster::new(MpcConfig::new(n, delta));
            let outcome = lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
            let rounds = cluster.rounds();
            println!(
                "{n:>8} {delta:>6} {:>7} {:>7} {:>12.1}",
                outcome.levels,
                rounds,
                rounds as f64 / outcome.levels.max(1) as f64
            );
        }
    }
}
