//! LCS via the Hunt–Szymanski reduction (Corollary 1.3.1): compute the longest
//! common subsequence of two token streams on the MPC simulator and compare against
//! the classical dynamic program.
//!
//! The workload mimics a diff between two revisions of a line-based document: the
//! LCS length is the number of unchanged lines.
//!
//! Run with: `cargo run --release --example lcs_diff`

use monge_mpc_suite::lis_mpc::lcs::lcs_witness_mpc;
use monge_mpc_suite::monge_mpc::MulParams;
use monge_mpc_suite::mpc_runtime::{Cluster, MpcConfig};
use monge_mpc_suite::seaweed_lis::baselines::lcs_length_dp;
use monge_mpc_suite::seaweed_lis::lcs::lcs_via_lis;
use rand::prelude::*;

/// Generates a "document" of `lines` hashed lines over a vocabulary, then an edited
/// revision with the given mutation rate (insertions, deletions, replacements).
fn document_pair(
    lines: usize,
    vocab: u32,
    mutation: f64,
    rng: &mut StdRng,
) -> (Vec<u32>, Vec<u32>) {
    let original: Vec<u32> = (0..lines).map(|_| rng.gen_range(0..vocab)).collect();
    let mut revised = Vec::with_capacity(lines);
    for &line in &original {
        let roll: f64 = rng.gen();
        if roll < mutation / 3.0 {
            // deletion: skip the line
        } else if roll < 2.0 * mutation / 3.0 {
            // replacement
            revised.push(rng.gen_range(0..vocab));
        } else if roll < mutation {
            // insertion before the line
            revised.push(rng.gen_range(0..vocab));
            revised.push(line);
        } else {
            revised.push(line);
        }
    }
    (original, revised)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    for &(lines, mutation) in &[(2_000usize, 0.05), (2_000, 0.3), (4_000, 0.1)] {
        let (a, b) = document_pair(lines, 5_000, mutation, &mut rng);

        // Sequential answers.
        let dp = lcs_length_dp(&a, &b);
        let hs = lcs_via_lis(&a, &b);
        assert_eq!(dp, hs);

        // MPC answer — length *and* an actual common subsequence — on a strict
        // cluster sized for the corollary's Õ(n²) total-space regime; with a
        // small vocabulary collision rate the actual pair count (and hence
        // every load) stays near-linear.
        let mut cluster = Cluster::new(MpcConfig::new(a.len() * b.len(), 0.5));
        let outcome = lcs_witness_mpc(&mut cluster, &a, &b, &MulParams::default());
        assert_eq!(outcome.length, dp);
        // The witness really is a diff skeleton: matched (i, j) line pairs,
        // ascending in both revisions, with equal content.
        assert!(outcome.witness.iter().all(|&(i, j)| a[i] == b[j]));
        assert!(outcome
            .witness
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));

        let unchanged = 100.0 * dp as f64 / a.len() as f64;
        println!(
            "diff: {:>5} vs {:>5} lines, mutation {:>4.0}% → LCS = {:>5} ({unchanged:>5.1}% unchanged), \
             match pairs = {:>6}, MPC rounds = {}",
            a.len(),
            b.len(),
            mutation * 100.0,
            dp,
            outcome.pairs,
            cluster.rounds(),
        );
        let sample: Vec<String> = outcome
            .witness
            .iter()
            .take(3)
            .map(|&(i, j)| format!("a[{i}] == b[{j}] (line {:x})", a[i]))
            .collect();
        println!("      unchanged-line witness starts: {}", sample.join(", "));
    }
}
