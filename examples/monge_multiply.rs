//! Direct use of the implicit (sub)unit-Monge multiplication API: the dense
//! reference, the sequential steady ant, the sequential H-way combine and the MPC
//! algorithm all compute the same product; the MPC run reports its round/space
//! profile and the result is certified against the defining (min,+) identity.
//!
//! Run with: `cargo run --release --example monge_multiply`

use monge_mpc_suite::monge::multiway::mul_multiway;
use monge_mpc_suite::monge::verify::verify_product;
use monge_mpc_suite::monge::{mul_dense, mul_steady_ant, PermutationMatrix};
use monge_mpc_suite::monge_mpc::{self, MulParams};
use monge_mpc_suite::mpc_runtime::{Cluster, MpcConfig};
use rand::prelude::*;
use std::time::Instant;

fn random_permutation(n: usize, rng: &mut StdRng) -> PermutationMatrix {
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(rng);
    PermutationMatrix::from_rows(v)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1);

    // Small instance: every implementation, including the O(n³) reference.
    let n_small = 600;
    let a = random_permutation(n_small, &mut rng);
    let b = random_permutation(n_small, &mut rng);

    let start = Instant::now();
    let dense = mul_dense(&a, &b);
    println!(
        "dense (min,+) reference   n={n_small}: {:?}",
        start.elapsed()
    );

    let start = Instant::now();
    let ant = mul_steady_ant(&a, &b);
    println!(
        "steady ant  O(n log n)    n={n_small}: {:?}",
        start.elapsed()
    );

    let start = Instant::now();
    let multi = mul_multiway(&a, &b, 8, 64);
    println!(
        "sequential H-way combine  n={n_small}: {:?}",
        start.elapsed()
    );

    assert_eq!(dense, ant);
    assert_eq!(dense, multi);
    assert!(
        verify_product(&a, &b, &ant),
        "product certified against the (min,+) identity"
    );

    // Larger instance on the simulated cluster.
    let n = 100_000;
    let a = random_permutation(n, &mut rng);
    let b = random_permutation(n, &mut rng);
    let expected = mul_steady_ant(&a, &b);

    for delta in [0.25, 0.5, 0.75] {
        let mut cluster = Cluster::new(MpcConfig::new(n, delta));
        let start = Instant::now();
        let got = monge_mpc::mul(&mut cluster, &a, &b, &MulParams::default());
        let elapsed = start.elapsed();
        assert_eq!(got, expected);
        let ledger = cluster.ledger();
        println!(
            "MPC ⊡  n={n} δ={delta:>4}: machines={:>5} space={:>7} rounds={:>4} \
             comm={:>9} peak_load={:>8}  ({elapsed:?})",
            cluster.config().machines,
            cluster.config().space,
            ledger.rounds,
            ledger.communication,
            ledger.max_machine_load,
        );
    }
    println!("all implementations agree");
}
