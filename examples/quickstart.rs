//! Quickstart: compute the length of the longest increasing subsequence three ways —
//! classical patience sorting, the sequential seaweed kernel, and the paper's
//! massively-parallel algorithm on the simulated MPC cluster.
//!
//! Run with: `cargo run --release --example quickstart`

use monge_mpc_suite::lis_mpc::lis_kernel_mpc;
use monge_mpc_suite::monge_mpc::MulParams;
use monge_mpc_suite::mpc_runtime::{Cluster, MpcConfig};
use monge_mpc_suite::seaweed_lis::baselines::lis_length_patience;
use monge_mpc_suite::seaweed_lis::lis::{lis_length, SemiLocalLis};
use rand::prelude::*;

fn main() {
    let n = 50_000;
    let delta = 0.5;
    let mut rng = StdRng::seed_from_u64(42);

    // A noisy upward-trending series: the kind of input whose LIS length measures
    // "how sorted" the data already is.
    let series: Vec<u32> = (0..n)
        .map(|i| (i as f64 * 0.6 + rng.gen_range(0.0..5_000.0)) as u32)
        .collect();

    // 1. Classical sequential baseline (Fredman 1975).
    let start = std::time::Instant::now();
    let baseline = lis_length_patience(&series);
    println!(
        "patience sorting      : LIS = {baseline:6}   ({:?})",
        start.elapsed()
    );

    // 2. Sequential seaweed kernel (the object Theorem 1.3 parallelizes).
    let start = std::time::Instant::now();
    let seaweed = lis_length(&series);
    println!(
        "sequential seaweed ⊡  : LIS = {seaweed:6}   ({:?})",
        start.elapsed()
    );

    // 3. The paper's MPC algorithm on a simulated fully-scalable cluster.
    let start = std::time::Instant::now();
    let mut cluster = Cluster::new(MpcConfig::new(n, delta));
    let outcome = lis_kernel_mpc(&mut cluster, &series, &MulParams::default());
    println!(
        "MPC (δ = {delta})         : LIS = {:6}   ({:?})",
        outcome.length,
        start.elapsed()
    );
    assert_eq!(baseline, seaweed);
    assert_eq!(baseline, outcome.length);

    let ledger = cluster.ledger();
    println!();
    println!("MPC execution profile (n = {n}, δ = {delta}):");
    println!("  machines              {:>12}", cluster.config().machines);
    println!("  space budget s        {:>12}", cluster.config().space);
    println!("  rounds                {:>12}", ledger.rounds);
    println!("  merge levels          {:>12}", outcome.levels);
    println!("  communication (items) {:>12}", ledger.communication);
    println!("  peak machine load     {:>12}", ledger.max_machine_load);
    println!();
    println!("rounds by phase:");
    for (phase, rounds) in &ledger.rounds_by_phase {
        println!("  {phase:<16} {rounds:>6}");
    }

    // The kernel computed by the MPC run also answers *semi-local* queries: the LIS
    // of any contiguous window, in polylogarithmic time per query.
    let semi_local = SemiLocalLis::from_kernel(&outcome.kernel);
    println!();
    println!("window LIS queries from the same kernel:");
    for (l, r) in [(0, n / 4), (n / 4, n / 2), (n / 2, n), (0, n)] {
        println!(
            "  LIS(series[{l:>6}..{r:>6}]) = {}",
            semi_local.lis_window(l, r)
        );
    }
}
