//! Semi-local LIS (Corollary 1.3.2): preprocess a series once, then answer
//! longest-increasing-subsequence queries for arbitrary windows in `O(log² n)` each.
//!
//! The motivating workload: sliding-window trend analysis over a long measurement
//! series, where "how long is the longest increasing run of samples inside this
//! window" is asked for thousands of different windows.
//!
//! Run with: `cargo run --release --example range_lis`

use monge_mpc_suite::seaweed_lis::baselines::lis_length_patience;
use monge_mpc_suite::seaweed_lis::lis::{SemiLocalLis, TracedLisKernel};
use rand::prelude::*;
use std::time::Instant;

fn main() {
    let n = 100_000;
    let queries = 2_000;
    let mut rng = StdRng::seed_from_u64(7);

    // A series with three regimes: rising, falling, and noisy-rising.
    let series: Vec<u32> = (0..n)
        .map(|i| {
            let base = match i * 3 / n {
                0 => i as f64,
                1 => (2 * n / 3 - i) as f64 * 1.5,
                _ => i as f64 * 0.8,
            };
            (base + rng.gen_range(0.0..2_000.0)) as u32
        })
        .collect();

    // One-time preprocessing: builds the seaweed kernel through O(n log² n) implicit
    // unit-Monge multiplications.
    let start = Instant::now();
    let index = SemiLocalLis::new(&series);
    let build = start.elapsed();
    println!("built semi-local LIS index for n = {n} in {build:?}");

    // Random windows, answered from the kernel.
    let windows: Vec<(usize, usize)> = (0..queries)
        .map(|_| {
            let l = rng.gen_range(0..n);
            let r = rng.gen_range(l..=n);
            (l, r)
        })
        .collect();

    let start = Instant::now();
    let answers: Vec<usize> = windows
        .iter()
        .map(|&(l, r)| index.lis_window(l, r))
        .collect();
    let query_time = start.elapsed();
    println!(
        "answered {queries} window queries in {query_time:?} ({:.1} µs/query)",
        query_time.as_micros() as f64 / queries as f64
    );

    // Spot-check a few answers against recomputation from scratch.
    let start = Instant::now();
    for (i, &(l, r)) in windows.iter().take(20).enumerate() {
        assert_eq!(
            answers[i],
            lis_length_patience(&series[l..r]),
            "window [{l}, {r})"
        );
    }
    println!(
        "verified 20 random windows against patience sorting in {:?}",
        start.elapsed()
    );

    // A few interpretable windows.
    println!();
    for (label, l, r) in [
        ("rising regime   ", 0, n / 3),
        ("falling regime  ", n / 3, 2 * n / 3),
        ("noisy regime    ", 2 * n / 3, n),
        ("whole series    ", 0, n),
    ] {
        println!(
            "LIS over {label} [{l:>6}, {r:>6}) = {}",
            index.lis_window(l, r)
        );
    }

    // Not just the length: recover one actual longest increasing run through
    // the traced kernel (the traceback path the MPC witness parallelizes).
    let start = Instant::now();
    let traced = TracedLisKernel::new(&series);
    let witness = traced.witness();
    println!(
        "\nrecovered an actual LIS witness ({} samples) in {:?}:",
        witness.len(),
        start.elapsed()
    );
    assert_eq!(witness.len(), index.lis_window(0, n));
    assert!(witness.windows(2).all(|w| series[w[0]] < series[w[1]]));
    let shown: Vec<String> = witness
        .iter()
        .take(4)
        .map(|&p| format!("series[{p}]={}", series[p]))
        .collect();
    let tail: Vec<String> = witness
        .iter()
        .rev()
        .take(2)
        .rev()
        .map(|&p| format!("series[{p}]={}", series[p]))
        .collect();
    println!("  {} … {}", shown.join(" < "), tail.join(" < "));
}
