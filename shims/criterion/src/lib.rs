//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no registry access, so this shim provides the
//! benchmark API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`]
//! and [`criterion_main!`] — backed by a simple wall-clock harness: each
//! benchmark runs one warm-up iteration, then `sample_size` timed iterations,
//! and prints min/mean/max per iteration to stdout.
//!
//! Set the `CRITERION_JSON` environment variable (to anything but `0`) to emit
//! one machine-readable JSON line per benchmark instead of the plain-text row:
//! `{"benchmark": ..., "samples": N, "min_ns": ..., "mean_ns": ..., "max_ns": ...}`
//! — this is what perf PRs diff.
//!
//! No statistical analysis, outlier rejection, or HTML reports; swap in the
//! real criterion (one line in the workspace manifest) for publication-quality
//! numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for benchmark `name` at parameter value `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            name,
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{}", self.name, p),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Measures a routine: repeatedly calls it and accumulates per-iteration times.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (after one
    /// warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// The benchmark harness entry point (a trimmed-down `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", sample_size, id.into(), f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs benchmark `id` in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, self.sample_size, id.into(), f);
        self
    }

    /// Runs benchmark `id` with an explicit input value passed to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, self.sample_size, id, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in this shim; reports print as benches run).
    pub fn finish(self) {}
}

/// Whether benchmark results should be emitted as JSON lines
/// (`CRITERION_JSON` set to anything but `0` or the empty string).
fn json_mode() -> bool {
    std::env::var("CRITERION_JSON")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn run_one<F: FnOnce(&mut Bencher)>(group: &str, sample_size: usize, id: BenchmarkId, f: F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.samples.is_empty() {
        if json_mode() {
            println!(
                "{{\"benchmark\":\"{}\",\"samples\":0}}",
                json_escape(&label)
            );
        } else {
            println!("{label:<48} (no samples)");
        }
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("nonempty");
    let max = bencher.samples.iter().max().expect("nonempty");
    if json_mode() {
        println!(
            "{{\"benchmark\":\"{}\",\"samples\":{},\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{}}}",
            json_escape(&label),
            bencher.samples.len(),
            min.as_nanos(),
            mean.as_nanos(),
            max.as_nanos()
        );
    } else {
        println!(
            "{label:<48} [{min:>12?} {mean:>12?} {max:>12?}]  ({} samples)",
            bencher.samples.len()
        );
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary from [`criterion_group!`] outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
