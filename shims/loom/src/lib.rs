//! # loom-mini — exhaustive schedule exploration for small concurrent models
//!
//! An offline, dependency-free take on the `loom` model checker: write a
//! small concurrent program against [`thread`], [`sync::Mutex`],
//! [`sync::Condvar`], and [`sync::atomic`], hand it to [`model`], and every
//! interleaving (within a preemption bound) is executed. Assertion failures,
//! panics, deadlocks (which is what a *lost wakeup* looks like under a
//! spurious-wakeup-free condvar), and leaked threads all fail the check with
//! the offending schedule attached.
//!
//! ```
//! use loom::sync::{Arc, Mutex};
//!
//! loom::model(|| {
//!     let m = Arc::new(Mutex::new(0));
//!     let m2 = Arc::clone(&m);
//!     let t = loom::thread::spawn(move || *m2.lock().unwrap() += 1);
//!     *m.lock().unwrap() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*m.lock().unwrap(), 2);
//! });
//! ```
//!
//! The memory model is sequential consistency (one thread runs at a time and
//! every sync op is a scheduling point) — sound for `Mutex`/`Condvar`/SeqCst
//! protocols like the rayon-shim worker pool this repo model-checks.

mod scheduler;
pub mod sync;
pub mod thread;

pub use scheduler::{explore, Config, Report};

/// Explores `f` under every schedule within [`Config::default`]'s bounds
/// (preemption bound 2). Panics on the first failing schedule.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    explore(Config::default(), f)
}

/// [`model`] with explicit bounds.
pub fn model_with<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    explore(config, f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::AtomicUsize;
    use super::sync::{Arc, Condvar, Mutex};
    use super::*;
    use std::sync::atomic::Ordering::SeqCst;

    #[test]
    fn sequential_model_runs_once() {
        let report = model(|| {
            assert_eq!(1 + 1, 2);
        });
        assert_eq!(report.iterations, 1);
        assert!(report.exhaustive);
    }

    #[test]
    fn mutex_counter_is_correct_under_all_schedules() {
        let report = model(|| {
            let m = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        });
        assert!(report.iterations > 1, "expected multiple schedules");
        assert!(report.exhaustive);
    }

    /// The point of the tool: a load/store race that a plain test would pass
    /// with overwhelming probability is found deterministically.
    #[test]
    fn racy_read_modify_write_is_caught() {
        let caught = std::panic::catch_unwind(|| {
            model(|| {
                let c = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        thread::spawn(move || {
                            // Non-atomic increment: load, then store.
                            let v = c.load(SeqCst);
                            c.store(v + 1, SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(c.load(SeqCst), 2, "lost update");
            });
        });
        let payload = caught.expect_err("the interleaved schedule must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("lost update"), "unexpected failure: {msg}");
    }

    #[test]
    fn fetch_add_fixes_the_race() {
        model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        c.fetch_add(1, SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.load(SeqCst), 2);
        });
    }

    #[test]
    fn condvar_handoff_has_no_lost_wakeup() {
        // Correct wait loop: flag checked under the mutex. If the condvar
        // protocol could lose the wakeup, the explorer would report deadlock.
        model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut ready = m.lock().unwrap();
                *ready = true;
                cv.notify_one();
                drop(ready);
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            t.join().unwrap();
        });
    }

    #[test]
    fn lost_wakeup_is_detected_as_deadlock() {
        // Broken protocol: the readiness flag is checked *outside* the mutex
        // that guards the condvar, so the notify can fire in the window
        // between the check and the park — a classic lost wakeup. The
        // explorer must find the schedule where the waiter parks forever.
        let caught = std::panic::catch_unwind(|| {
            model(|| {
                let flag = Arc::new(AtomicUsize::new(0));
                let pair = Arc::new((Mutex::new(()), Condvar::new()));
                let f2 = Arc::clone(&flag);
                let p2 = Arc::clone(&pair);
                let t = thread::spawn(move || {
                    f2.store(1, SeqCst);
                    p2.1.notify_one();
                });
                if flag.load(SeqCst) == 0 {
                    // BUG: the store+notify can land right here, while we
                    // are not yet parked; nobody will ever wake us.
                    let (m, cv) = &*pair;
                    let g = m.lock().unwrap();
                    let _g = cv.wait(g).unwrap();
                }
                t.join().unwrap();
            });
        });
        let payload = caught.expect_err("the lost-wakeup schedule must deadlock");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn leaked_thread_is_an_error() {
        let caught = std::panic::catch_unwind(|| {
            model(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let p2 = Arc::clone(&pair);
                // Never joined, parks forever: the model leaks it.
                thread::spawn(move || {
                    let (m, cv) = &*p2;
                    let mut g = m.lock().unwrap();
                    while !*g {
                        g = cv.wait(g).unwrap();
                    }
                });
            });
        });
        assert!(caught.is_err(), "leaking a thread must fail the model");
    }

    #[test]
    fn panic_payload_is_delivered_through_join() {
        model(|| {
            let t = thread::spawn(|| panic!("boom"));
            let err = t.join().expect_err("thread panicked");
            let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(msg, "boom");
        });
    }

    #[test]
    fn preemption_bound_caps_the_tree() {
        let bounded = model_with(
            Config {
                preemption_bound: Some(0),
                ..Config::default()
            },
            || {
                let c = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        thread::spawn(move || {
                            c.fetch_add(1, SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            },
        );
        let unbounded = model_with(
            Config {
                preemption_bound: None,
                ..Config::default()
            },
            || {
                let c = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        thread::spawn(move || {
                            c.fetch_add(1, SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            },
        );
        assert!(bounded.iterations <= unbounded.iterations);
        assert!(unbounded.exhaustive);
    }
}
