//! The cooperative scheduler and the exhaustive schedule explorer.
//!
//! One *execution* runs the model program with real OS threads, but only one
//! model thread is ever runnable at a time: every synchronization operation
//! ([`Scheduler::switch`]) is a *decision point* where the scheduler picks
//! which thread runs next. The choice sequence is the **schedule**; a run
//! records, at each decision, how many choices existed and which was taken.
//!
//! Exploration is a depth-first walk of the schedule tree: after each run the
//! deepest decision with an untried alternative is advanced and everything
//! after it is discarded ([`Explorer::next_schedule`]). With a preemption
//! bound `p`, a decision may switch away from a still-runnable thread only
//! while fewer than `p` such preemptions happened earlier in the run — the
//! classic CHESS-style bound that keeps the tree tractable while catching
//! virtually all real interleaving bugs at `p = 2`.
//!
//! Because exactly one thread runs at a time and every shared access sits
//! behind a decision point, the explored memory model is sequential
//! consistency. That is sound for protocols built on `Mutex`/`Condvar` plus
//! `SeqCst` atomics — which is exactly what the rayon-shim pool uses.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Thrown (via `panic_any`) into model threads when the execution is being
/// torn down early (another thread failed); the thread wrapper catches it.
pub(crate) struct AbortExecution;

/// Why a thread cannot run right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Blocked {
    /// Waiting to acquire the model mutex with this id.
    Mutex(usize),
    /// Parked in `Condvar::wait` on the condvar with this id.
    Condvar(usize),
    /// Waiting for thread `tid` to finish.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ThreadState {
    Runnable,
    Blocked(Blocked),
    Finished,
}

/// One recorded decision: `chosen` out of `choices` allowed successors.
#[derive(Clone, Copy, Debug)]
struct Decision {
    chosen: usize,
    choices: usize,
}

pub(crate) struct SchedInner {
    pub(crate) threads: Vec<ThreadState>,
    /// The thread currently allowed to run.
    active: usize,
    /// Schedule prefix to replay (choice index at each decision).
    replay: Vec<usize>,
    cursor: usize,
    trace: Vec<Decision>,
    preemptions: usize,
    preemption_bound: Option<usize>,
    max_decisions: usize,
    /// Set when any thread fails an assertion: the execution tears down.
    pub(crate) failed: Option<String>,
    aborting: bool,
    /// Mutex states: `Some(tid)` = held.
    pub(crate) mutexes: Vec<Option<usize>>,
    /// Condvar wait queues (tids parked on each condvar).
    pub(crate) cv_waiters: Vec<VecDeque<usize>>,
}

/// The per-execution scheduler. All blocking goes through `self.cv`, so an
/// abort is one `notify_all` away from releasing every thread.
pub struct Scheduler {
    pub(crate) inner: Mutex<SchedInner>,
    pub(crate) cv: Condvar,
}

fn lock_inner(s: &Scheduler) -> MutexGuard<'_, SchedInner> {
    // A model thread that panics never holds this lock (all model-state
    // operations are short and panic-free), but the wrapper's bookkeeping
    // could race a poisoned flag; recover the guard either way.
    s.inner.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    pub(crate) fn new(preemption_bound: Option<usize>, max_decisions: usize) -> Arc<Scheduler> {
        Arc::new(Scheduler {
            inner: Mutex::new(SchedInner {
                threads: Vec::new(),
                active: 0,
                replay: Vec::new(),
                cursor: 0,
                trace: Vec::new(),
                preemptions: 0,
                preemption_bound,
                max_decisions,
                failed: None,
                aborting: false,
                mutexes: Vec::new(),
                cv_waiters: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn set_replay(&self, replay: Vec<usize>) {
        let mut inner = lock_inner(self);
        inner.replay = replay;
        inner.cursor = 0;
    }

    /// Registers a new model thread; returns its tid. Deterministic because
    /// only one thread runs at a time.
    pub(crate) fn register_thread(&self) -> usize {
        let mut inner = lock_inner(self);
        inner.threads.push(ThreadState::Runnable);
        inner.threads.len() - 1
    }

    /// Registers a fresh mutex or condvar slot.
    pub(crate) fn register_mutex(&self) -> usize {
        let mut inner = lock_inner(self);
        let id = inner.mutexes.len();
        inner.mutexes.push(None);
        id
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut inner = lock_inner(self);
        let id = inner.cv_waiters.len();
        inner.cv_waiters.push(VecDeque::new());
        id
    }

    /// Blocks the calling real thread until the model makes `me` active.
    pub(crate) fn wait_until_active(&self, me: usize) {
        let mut inner = lock_inner(self);
        while inner.active != me || inner.threads[me] != ThreadState::Runnable {
            if inner.aborting {
                drop(inner);
                std::panic::panic_any(AbortExecution);
            }
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The decision point: optionally updates `me`'s state, then picks and
    /// wakes the next thread. If `me` stays runnable it may keep running
    /// (no preemption) or be preempted, budget permitting.
    pub(crate) fn switch(&self, me: usize, new_state: Option<ThreadState>) {
        let mut inner = lock_inner(self);
        if inner.aborting {
            drop(inner);
            std::panic::panic_any(AbortExecution);
        }
        if let Some(s) = new_state {
            inner.threads[me] = s;
        }
        let runnable: Vec<usize> = (0..inner.threads.len())
            .filter(|&t| inner.threads[t] == ThreadState::Runnable)
            .collect();
        if runnable.is_empty() {
            let all_done = inner.threads.iter().all(|s| *s == ThreadState::Finished);
            if !all_done {
                let states: Vec<String> = inner
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(t, s)| format!("t{t}:{s:?}"))
                    .collect();
                inner.failed.get_or_insert(format!(
                    "deadlock: no runnable thread (lost wakeup?) — {}",
                    states.join(", ")
                ));
                inner.aborting = true;
                self.cv.notify_all();
                drop(inner);
                std::panic::panic_any(AbortExecution);
            }
            return; // last thread finishing; nothing to schedule
        }

        // The choice set: under an exhausted preemption budget a still-
        // runnable current thread must continue.
        let me_runnable = inner.threads[me] == ThreadState::Runnable;
        let budget_left = inner.preemption_bound.is_none_or(|b| inner.preemptions < b);
        let choices: Vec<usize> = if me_runnable && !budget_left {
            vec![me]
        } else {
            runnable.clone()
        };

        if inner.trace.len() >= inner.max_decisions {
            let cap = inner.max_decisions;
            inner.failed.get_or_insert(format!(
                "schedule exceeded {cap} decisions (runaway model?)"
            ));
            inner.aborting = true;
            self.cv.notify_all();
            drop(inner);
            std::panic::panic_any(AbortExecution);
        }

        let pick = if inner.cursor < inner.replay.len() {
            let p = inner.replay[inner.cursor].min(choices.len() - 1);
            inner.cursor += 1;
            p
        } else {
            // Default: keep the current thread when possible (depth-first
            // explores the no-preemption schedule first).
            inner.cursor += 1;
            choices.iter().position(|&t| t == me).unwrap_or(0)
        };
        let next = choices[pick];
        let preemptive = me_runnable && next != me;
        if preemptive {
            inner.preemptions += 1;
        }
        // Alternatives at this decision are the other choices, but only those
        // reachable within the preemption budget.
        let alternatives = if me_runnable
            && inner
                .preemption_bound
                .is_some_and(|b| inner.preemptions >= b && next == me)
        {
            // Already at the bound and continuing: switching away would
            // exceed it, so this decision has one real choice.
            1
        } else {
            choices.len()
        };
        inner.trace.push(Decision {
            chosen: pick,
            choices: alternatives,
        });
        inner.active = next;
        let me_finished = inner.threads[me] == ThreadState::Finished;
        self.cv.notify_all();
        drop(inner);
        // A finished thread hands off and returns — it can never become
        // active again, so waiting would park its OS thread forever.
        if next != me && !me_finished {
            self.wait_until_active(me);
        }
    }

    /// Marks `me` finished, wakes joiners, schedules a successor.
    pub(crate) fn finish_thread(&self, me: usize) {
        {
            let mut inner = lock_inner(self);
            inner.threads[me] = ThreadState::Finished;
            for t in 0..inner.threads.len() {
                if inner.threads[t] == ThreadState::Blocked(Blocked::Join(me)) {
                    inner.threads[t] = ThreadState::Runnable;
                }
            }
        }
        self.switch(me, None);
    }

    /// After the root closure returns: verifies every spawned thread was
    /// joined (a model must have a shutdown story) and reports any failure.
    fn finish_execution(&self) -> Result<Vec<Decision>, String> {
        let mut inner = lock_inner(self);
        if let Some(why) = inner.failed.take() {
            inner.aborting = true;
            self.cv.notify_all();
            return Err(why);
        }
        let leaked: Vec<usize> = (0..inner.threads.len())
            .filter(|&t| inner.threads[t] != ThreadState::Finished)
            .collect();
        if !leaked.is_empty() {
            inner.aborting = true;
            self.cv.notify_all();
            return Err(format!(
                "model leaked threads {leaked:?}: every spawned thread must be joined \
                 (model an explicit shutdown path)"
            ));
        }
        Ok(inner.trace.clone())
    }
}

thread_local! {
    /// The (scheduler, tid) of the current model thread, if any.
    pub(crate) static CURRENT: std::cell::RefCell<Option<(Arc<Scheduler>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The current model context; panics outside `loom::model`.
pub(crate) fn current() -> (Arc<Scheduler>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitives may only be used inside loom::model")
    })
}

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Max schedules to explore before giving up (a completed DFS below this
    /// bound is an exhaustive proof within the preemption bound).
    pub max_iterations: usize,
    /// CHESS-style preemption bound; `None` explores every interleaving.
    pub preemption_bound: Option<usize>,
    /// Per-run decision cap (guards against non-terminating models).
    pub max_decisions: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_iterations: 100_000,
            preemption_bound: Some(2),
            max_decisions: 10_000,
        }
    }
}

/// What an exploration did.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Schedules executed.
    pub iterations: usize,
    /// True when the schedule tree was fully explored (within the bounds).
    pub exhaustive: bool,
}

/// Runs `f` under every schedule (within `config`'s bounds). Panics on the
/// first failing schedule, with the decision trace in the message.
pub fn explore<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut replay: Vec<usize> = Vec::new();
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        let sched = Scheduler::new(config.preemption_bound, config.max_decisions);
        sched.set_replay(replay.clone());

        // The root model thread (tid 0).
        let root_tid = sched.register_thread();
        debug_assert_eq!(root_tid, 0);
        let sched_root = Arc::clone(&sched);
        let f_run = Arc::clone(&f);
        let root = std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched_root), 0)));
            let out = catch_unwind(AssertUnwindSafe(|| f_run()));
            CURRENT.with(|c| *c.borrow_mut() = None);
            match out {
                Ok(()) => {
                    // finish_thread can raise AbortExecution when it detects
                    // a deadlock among the remaining threads; absorb it so
                    // the explorer sees the recorded failure, not a panic.
                    let _ = catch_unwind(AssertUnwindSafe(|| sched_root.finish_thread(0)));
                }
                Err(payload) => {
                    if !payload.is::<AbortExecution>() {
                        let why = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "model thread panicked".to_string());
                        let mut inner = sched_root
                            .inner
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        inner.failed.get_or_insert(why);
                        inner.aborting = true;
                        sched_root.cv.notify_all();
                        drop(inner);
                    }
                    // Mark finished so the run can wind down.
                    let mut inner = sched_root
                        .inner
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    inner.threads[0] = ThreadState::Finished;
                    sched_root.cv.notify_all();
                }
            }
        });
        root.join().expect("root wrapper never unwinds");

        let outcome = sched.finish_execution();
        let trace = match outcome {
            Ok(trace) => trace,
            Err(why) => {
                panic!(
                    "loom: schedule {iterations} failed: {why}\n  schedule: {:?}",
                    replay
                );
            }
        };

        // Depth-first backtrack: advance the deepest decision with an
        // untried alternative.
        let mut next: Option<Vec<usize>> = None;
        for d in (0..trace.len()).rev() {
            if trace[d].chosen + 1 < trace[d].choices {
                let mut r: Vec<usize> = trace[..d].iter().map(|x| x.chosen).collect();
                r.push(trace[d].chosen + 1);
                next = Some(r);
                break;
            }
        }
        match next {
            Some(r) if iterations < config.max_iterations => replay = r,
            Some(_) => {
                return Report {
                    iterations,
                    exhaustive: false,
                }
            }
            None => {
                return Report {
                    iterations,
                    exhaustive: true,
                }
            }
        }
    }
}
