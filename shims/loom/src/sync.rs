//! Model `Mutex`, `Condvar`, and `SeqCst` atomics.
//!
//! Because the scheduler serializes model threads, the *data* can live in
//! ordinary `std` containers — contention never happens at the OS level, only
//! in the model's bookkeeping. What the explorer varies is *when* each
//! acquire/wait/notify/load/store happens relative to other threads.

pub use std::sync::Arc;

use crate::scheduler::{current, Blocked, ThreadState};
use std::cell::UnsafeCell;
use std::sync::{Mutex as StdMutex, PoisonError};

/// Model mutex. Lock acquisition order is explored by the scheduler; the
/// guarded data sits in a std mutex that is always uncontended.
pub struct Mutex<T> {
    id: StdMutex<Option<usize>>,
    data: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases (and schedules) on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            id: StdMutex::new(None),
            data: StdMutex::new(value),
        }
    }

    fn id(&self) -> usize {
        let mut slot = self.id.lock().unwrap_or_else(PoisonError::into_inner);
        match *slot {
            Some(id) => id,
            None => {
                let (sched, _) = current();
                let id = sched.register_mutex();
                *slot = Some(id);
                id
            }
        }
    }

    /// Acquires the model lock, blocking (in model time) while held.
    /// Returns `Ok` always; the signature mirrors `std` for drop-in use.
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::convert::Infallible> {
        let id = self.id();
        let (sched, me) = current();
        loop {
            {
                let mut inner = sched.inner.lock().unwrap_or_else(PoisonError::into_inner);
                if inner.mutexes[id].is_none() {
                    inner.mutexes[id] = Some(me);
                    drop(inner);
                    // Acquisition is a visible event: decision point.
                    sched.switch(me, None);
                    let guard = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                    return Ok(MutexGuard {
                        mutex: self,
                        inner: Some(guard),
                    });
                }
            }
            sched.switch(me, Some(ThreadState::Blocked(Blocked::Mutex(id))));
        }
    }
}

impl<T> MutexGuard<'_, T> {
    fn release(&mut self) {
        self.inner = None;
        let id = self.mutex.id();
        let (sched, me) = current();
        {
            let mut inner = sched.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.mutexes[id] = None;
            // Wake every acquirer; they re-contend under the explorer.
            for t in 0..inner.threads.len() {
                if inner.threads[t] == ThreadState::Blocked(Blocked::Mutex(id)) {
                    inner.threads[t] = ThreadState::Runnable;
                }
            }
        }
        sched.switch(me, None);
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            self.release();
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard released")
    }
}

/// Model condvar with the std contract: `wait` atomically releases the mutex
/// and parks; wakeups require a `notify_*` (spurious wakeups are *not*
/// modeled, so a lost wakeup manifests as a detected deadlock).
pub struct Condvar {
    id: StdMutex<Option<usize>>,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            id: StdMutex::new(None),
        }
    }

    fn id(&self) -> usize {
        let mut slot = self.id.lock().unwrap_or_else(PoisonError::into_inner);
        match *slot {
            Some(id) => id,
            None => {
                let (sched, _) = current();
                let id = sched.register_condvar();
                *slot = Some(id);
                id
            }
        }
    }

    /// Parks the current thread, releasing `guard`'s mutex atomically (in
    /// model time: no decision point separates release from parking).
    pub fn wait<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
    ) -> Result<MutexGuard<'a, T>, std::convert::Infallible> {
        let cv_id = self.id();
        let mutex = guard.mutex;
        let mutex_id = mutex.id();
        let (sched, me) = current();
        // Atomically: drop the data guard, mark the mutex free, enqueue on
        // the condvar — all under one scheduler lock, then block.
        guard.inner = None;
        std::mem::forget(guard);
        {
            let mut inner = sched.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.mutexes[mutex_id] = None;
            for t in 0..inner.threads.len() {
                if inner.threads[t] == ThreadState::Blocked(Blocked::Mutex(mutex_id)) {
                    inner.threads[t] = ThreadState::Runnable;
                }
            }
            inner.cv_waiters[cv_id].push_back(me);
        }
        sched.switch(me, Some(ThreadState::Blocked(Blocked::Condvar(cv_id))));
        // Woken: reacquire the mutex (contending like any other thread).
        mutex.lock()
    }

    /// Wakes one waiter (the longest-parked, FIFO like parking-lot queues).
    pub fn notify_one(&self) {
        let cv_id = self.id();
        let (sched, me) = current();
        {
            let mut inner = sched.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(t) = inner.cv_waiters[cv_id].pop_front() {
                inner.threads[t] = ThreadState::Runnable;
            }
        }
        sched.switch(me, None);
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        let cv_id = self.id();
        let (sched, me) = current();
        {
            let mut inner = sched.inner.lock().unwrap_or_else(PoisonError::into_inner);
            while let Some(t) = inner.cv_waiters[cv_id].pop_front() {
                inner.threads[t] = ThreadState::Runnable;
            }
        }
        sched.switch(me, None);
    }
}

pub mod atomic {
    //! `SeqCst` atomics: every load/store/rmw is a scheduler decision point,
    //! which under serialization is exactly sequential consistency.

    use super::UnsafeCell;
    use crate::scheduler::current;
    use std::sync::atomic::Ordering;

    /// Model `AtomicUsize`. Orderings are accepted for signature parity but
    /// all operations behave as `SeqCst` (the strongest, so any bug found is
    /// real; bugs that *require* weaker orderings are out of scope).
    pub struct AtomicUsize {
        v: UnsafeCell<usize>,
    }

    // SAFETY: every access to `v` happens on the single scheduler-active
    // thread, bracketed by decision points; no two model threads touch it
    // concurrently, which is the data-race freedom Sync requires here.
    unsafe impl Sync for AtomicUsize {}
    // SAFETY: usize is Send; the cell adds no thread affinity.
    unsafe impl Send for AtomicUsize {}

    impl AtomicUsize {
        pub fn new(v: usize) -> Self {
            AtomicUsize {
                v: UnsafeCell::new(v),
            }
        }

        fn with<R>(&self, f: impl FnOnce(&mut usize) -> R) -> R {
            let (sched, me) = current();
            // Decision point *before* the access: the explorer may interleave
            // another thread between intent and effect of neighboring ops.
            sched.switch(me, None);
            // SAFETY: single active thread (see Sync impl above).
            f(unsafe { &mut *self.v.get() })
        }

        pub fn load(&self, _order: Ordering) -> usize {
            self.with(|v| *v)
        }

        pub fn store(&self, val: usize, _order: Ordering) {
            self.with(|v| *v = val);
        }

        pub fn fetch_add(&self, val: usize, _order: Ordering) -> usize {
            self.with(|v| {
                let old = *v;
                *v = old.wrapping_add(val);
                old
            })
        }

        pub fn fetch_sub(&self, val: usize, _order: Ordering) -> usize {
            self.with(|v| {
                let old = *v;
                *v = old.wrapping_sub(val);
                old
            })
        }

        pub fn compare_exchange(
            &self,
            expect: usize,
            new: usize,
            _ok: Ordering,
            _err: Ordering,
        ) -> Result<usize, usize> {
            self.with(|v| {
                if *v == expect {
                    *v = new;
                    Ok(expect)
                } else {
                    Err(*v)
                }
            })
        }
    }

    /// Model `AtomicBool`, built on the same single-active-thread argument.
    pub struct AtomicBool {
        v: super::Mutex<bool>,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            AtomicBool {
                v: super::Mutex::new(v),
            }
        }

        pub fn load(&self, _order: Ordering) -> bool {
            *self.v.lock().unwrap_or_else(|e| match e {})
        }

        pub fn store(&self, val: bool, _order: Ordering) {
            *self.v.lock().unwrap_or_else(|e| match e {}) = val;
        }

        pub fn swap(&self, val: bool, _order: Ordering) -> bool {
            let mut g = self.v.lock().unwrap_or_else(|e| match e {});
            std::mem::replace(&mut *g, val)
        }
    }
}
