//! Model threads: real OS threads driven cooperatively by the scheduler.

use crate::scheduler::{current, AbortExecution, Blocked, Scheduler, ThreadState, CURRENT};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

type Payload = Box<dyn std::any::Any + Send + 'static>;

struct JoinShared<T> {
    result: Mutex<Option<Result<T, Payload>>>,
}

/// Handle to a spawned model thread. Every spawned thread **must** be joined
/// before the model closure returns — a leaked thread fails the execution
/// (models are required to have an explicit shutdown path).
pub struct JoinHandle<T> {
    tid: usize,
    shared: Arc<JoinShared<T>>,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the thread finishes; returns its result
    /// or the panic payload, mirroring `std::thread::JoinHandle::join`.
    pub fn join(mut self) -> Result<T, Payload> {
        let (sched, me) = current();
        loop {
            let done = {
                let inner = sched.inner.lock().unwrap_or_else(PoisonError::into_inner);
                inner.threads[self.tid] == ThreadState::Finished
            };
            if done {
                break;
            }
            sched.switch(me, Some(ThreadState::Blocked(Blocked::Join(self.tid))));
        }
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        self.shared
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("joined thread left no result")
    }
}

/// Spawns a model thread. The closure runs under the schedule explorer; all
/// its synchronization must go through `loom` primitives.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, me) = current();
    let tid = sched.register_thread();
    let shared = Arc::new(JoinShared {
        result: Mutex::new(None),
    });
    let shared2 = Arc::clone(&shared);
    let sched2: Arc<Scheduler> = Arc::clone(&sched);
    let os = std::thread::spawn(move || {
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched2), tid)));
        // A freshly spawned thread waits for the scheduler to pick it; an
        // abort during teardown raises AbortExecution, which we absorb.
        let started = catch_unwind(AssertUnwindSafe(|| sched2.wait_until_active(tid)));
        let out = if started.is_ok() {
            Some(catch_unwind(AssertUnwindSafe(f)))
        } else {
            None
        };
        CURRENT.with(|c| *c.borrow_mut() = None);
        match out {
            Some(Ok(v)) => {
                *shared2
                    .result
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
                let _ = catch_unwind(AssertUnwindSafe(|| sched2.finish_thread(tid)));
            }
            Some(Err(payload)) if !payload.is::<AbortExecution>() => {
                // A model thread's panic is part of the modeled protocol
                // (the pool propagates payloads); deliver it via join.
                *shared2
                    .result
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(Err(payload));
                let _ = catch_unwind(AssertUnwindSafe(|| sched2.finish_thread(tid)));
            }
            _ => {
                // Teardown: record finished without scheduling further.
                let mut inner = sched2.inner.lock().unwrap_or_else(PoisonError::into_inner);
                inner.threads[tid] = ThreadState::Finished;
                sched2.cv.notify_all();
            }
        }
    });
    // Spawning is itself a visible event: give the explorer a decision point
    // so the child may run before the parent's next step.
    sched.switch(me, None);
    JoinHandle {
        tid,
        shared,
        os: Some(os),
    }
}

/// A pure scheduling point: lets the explorer preempt here.
pub fn yield_now() {
    let (sched, me) = current();
    sched.switch(me, None);
}
