//! Strategies for collections (currently just [`vec()`]).

use core::ops::{Range, RangeInclusive};
use rand::prelude::*;

use crate::strategy::Strategy;

/// An inclusive range of permitted collection lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty size range");
        Self { min, max }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
