//! Strategies for collections (currently just [`vec()`]).

use core::ops::{Range, RangeInclusive};
use rand::prelude::*;

use crate::strategy::Strategy;

/// An inclusive range of permitted collection lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty size range");
        Self { min, max }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // Greedy halving of the length (respecting the strategy's minimum):
        // drop the back half, drop the front half, then drop a single element.
        if len > self.size.min {
            let keep = (len / 2).max(self.size.min);
            out.push(value[..keep].to_vec());
            out.push(value[len - keep..].to_vec());
            if len - 1 > keep {
                out.push(value[..len - 1].to_vec());
            }
        }
        // Element-wise shrinking at every position (the runner re-shrinks
        // greedily, so the fan-out per round is harmless).
        for i in 0..len {
            for cand in self.element.shrink(&value[i]) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}
