//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no registry access, so this shim reimplements the
//! slice of proptest the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with [`strategy::Just`], integer-range
//!   strategies, tuples, `prop_map`, `prop_flat_map` and `prop_shuffle`;
//! * [`collection::vec`](fn@crate::collection::vec) for variable-length vectors;
//! * the [`proptest!`] macro plus [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_assume!`];
//! * [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! Semantics differences from the real crate, deliberately accepted for an
//! offline test environment: inputs are drawn from a **deterministic** RNG
//! seeded from the test's name (every run explores the same cases), and
//! shrinking is **greedy halving** rather than a full value tree — on failure
//! the runner repeatedly adopts the first simpler candidate (shorter vec /
//! smaller integer, see [`strategy::Strategy::shrink`]) that still fails,
//! prints the minimal counterexample, and replays it so the original assertion
//! message surfaces.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Runs one property-test case: clones the sampled values, feeds them to
/// `body`, and reports whether it passed (a panic is the failure signal).
///
/// Exists as a function (rather than macro-expanded inline) so that the value
/// tuple's type is anchored to the strategy — pattern-only inference inside a
/// closure would otherwise be ambiguous.
#[doc(hidden)]
pub fn check_case<S, F>(_strategy: &S, values: &S::Value, body: F) -> bool
where
    S: strategy::Strategy,
    S::Value: Clone,
    F: FnOnce(S::Value),
{
    let cloned = values.clone();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(cloned))).is_ok()
}

/// Greedily shrinks a failing case: keeps adopting the first candidate from
/// [`strategy::Strategy::shrink`] that still fails (`run` returns `false`)
/// until no candidate fails or the probe budget is exhausted. Panic output is
/// silenced while probing candidates; the caller replays the minimal case to
/// surface the real assertion.
#[doc(hidden)]
pub fn shrink_failing_case<S, F>(strategy: &S, mut failing: S::Value, run: &F) -> S::Value
where
    S: strategy::Strategy,
    F: Fn(&S::Value) -> bool,
{
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;
    struct QuietPanics {
        previous: Option<PanicHook>,
        _serialize: std::sync::MutexGuard<'static, ()>,
    }
    impl QuietPanics {
        fn new() -> Self {
            // The panic hook is process-global: serialize shrinkers so that
            // concurrent failing proptests cannot interleave their
            // take_hook/set_hook pairs and leave the silent hook installed.
            // (An unrelated test failing *during* a shrink window still loses
            // its message — an accepted cost of quiet candidate probing.)
            static SHRINK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
            let serialize = SHRINK_LOCK
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            Self {
                previous: Some(previous),
                _serialize: serialize,
            }
        }
    }
    impl Drop for QuietPanics {
        fn drop(&mut self) {
            if let Some(previous) = self.previous.take() {
                std::panic::set_hook(previous);
            }
        }
    }
    let _quiet = QuietPanics::new();

    let mut budget = 1024usize;
    loop {
        let mut improved = false;
        for candidate in strategy.shrink(&failing) {
            if budget == 0 {
                return failing;
            }
            budget -= 1;
            if !run(&candidate) {
                failing = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return failing;
        }
    }
}

/// The items most users need, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to strategy constructors (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares a block of property tests.
///
/// Supported grammar (the subset of real proptest this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     /// Doc comments and attributes pass through.
///     #[test]
///     fn my_property((a, b) in pair_strategy(), n in 1usize..10) {
///         prop_assert!(a + n > 0);
///     }
/// }
/// ```
///
/// Each test runs `config.cases` iterations with inputs drawn from a
/// deterministic per-test RNG. Failing cases are greedily shrunk (halving) and
/// the minimal counterexample is printed and replayed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            // The bound strategies form one tuple strategy, so component-wise
            // shrinking comes from the tuple implementation.
            let __strategy = ( $( $strat, )+ );
            // Runs one case against a value tuple; true = passed. A panic is
            // the failure signal; prop_assume! skips by returning early.
            let __run = |__vals: &_| {
                $crate::check_case(&__strategy, __vals, |__cloned| {
                    let ($($pat,)+) = __cloned;
                    $body
                })
            };
            for __case in 0..__config.cases {
                let __values = $crate::strategy::Strategy::sample(&__strategy, &mut __rng);
                if !__run(&__values) {
                    let __minimal =
                        $crate::shrink_failing_case(&__strategy, __values, &__run);
                    eprintln!(
                        "proptest: minimal failing input for `{}` after shrinking: {:?}",
                        stringify!($name),
                        __minimal
                    );
                    // Replay outside catch_unwind so the original assertion
                    // message fails the test.
                    let ($($pat,)+) = __minimal;
                    $body
                    panic!("case failed during shrinking but passed on replay");
                }
            }
        }
        $crate::__proptest_body!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a property test (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property test (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skips the current test case when the precondition does not hold.
///
/// Expands to an early `return` from the case closure, so the case is silently
/// discarded (it still counts toward the case budget, unlike real proptest).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;

    #[test]
    fn range_shrink_is_a_halving_ladder() {
        assert_eq!((0u32..100).shrink(&80), vec![0, 40, 79]);
        assert_eq!((5usize..=60).shrink(&5), Vec::<usize>::new());
        assert_eq!((3u32..10).shrink(&4), vec![3]);
    }

    #[test]
    fn range_shrink_survives_wide_signed_ranges() {
        // `value - start` would overflow i8/i64 here; the i128 midpoint must not.
        assert_eq!((-100i8..100).shrink(&99), vec![-100, -1, 98]);
        let full = (i64::MIN..i64::MAX).shrink(&(i64::MAX - 1));
        assert_eq!(full[0], i64::MIN);
        assert_eq!(full[1], -1);
        let minimal = crate::shrink_failing_case(&(-100i8..100), 99, &|&x| x < 17);
        assert_eq!(minimal, 17);
    }

    #[test]
    fn vec_shrink_halves_and_shrinks_elements() {
        let strat = crate::collection::vec(0u32..10, 0..=8);
        let candidates = strat.shrink(&vec![7, 8, 9, 6]);
        assert!(candidates.contains(&vec![7, 8]), "drops the back half");
        assert!(candidates.contains(&vec![9, 6]), "drops the front half");
        assert!(candidates.contains(&vec![7, 8, 9]), "drops one element");
        assert!(
            candidates.contains(&vec![0, 8, 9, 6]),
            "shrinks an element toward the range start"
        );
    }

    #[test]
    fn greedy_shrink_finds_minimal_integer() {
        // Fails iff x >= 17; the ladder must converge to exactly 17.
        let minimal = crate::shrink_failing_case(&(0u32..100), 80, &|&x| x < 17);
        assert_eq!(minimal, 17);
    }

    #[test]
    fn greedy_shrink_finds_minimal_vec() {
        // Fails iff some element >= 5; minimal counterexample is [5].
        let strat = crate::collection::vec(0u32..10, 0..=8);
        let minimal = crate::shrink_failing_case(&strat, vec![9, 9, 9, 9], &|v: &Vec<u32>| {
            v.iter().all(|&x| x < 5)
        });
        assert_eq!(minimal, vec![5]);
    }

    #[test]
    fn tuple_shrink_is_component_wise() {
        let strat = (0u32..100, 0usize..50);
        let candidates = strat.shrink(&(80, 40));
        assert!(candidates.contains(&(0, 40)));
        assert!(candidates.contains(&(40, 40)));
        assert!(candidates.contains(&(80, 0)));
        assert!(candidates.contains(&(80, 20)));
    }
}
