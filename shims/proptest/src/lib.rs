//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no registry access, so this shim reimplements the
//! slice of proptest the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with [`strategy::Just`], integer-range
//!   strategies, tuples, `prop_map`, `prop_flat_map` and `prop_shuffle`;
//! * [`collection::vec`](fn@crate::collection::vec) for variable-length vectors;
//! * the [`proptest!`] macro plus [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_assume!`];
//! * [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! Semantics differences from the real crate, deliberately accepted for an
//! offline test environment: inputs are drawn from a **deterministic** RNG seeded
//! from the test's name (every run explores the same cases), and failures are
//! **not shrunk** — the failing assertion simply panics with the offending
//! values via the standard assertion message.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The items most users need, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to strategy constructors (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares a block of property tests.
///
/// Supported grammar (the subset of real proptest this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     /// Doc comments and attributes pass through.
///     #[test]
///     fn my_property((a, b) in pair_strategy(), n in 1usize..10) {
///         prop_assert!(a + n > 0);
///     }
/// }
/// ```
///
/// Each test runs `config.cases` iterations with inputs drawn from a
/// deterministic per-test RNG. No shrinking is performed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            for __case in 0..__config.cases {
                let ($($pat,)+) = (
                    $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+
                );
                // prop_assume! skips a case by returning from this closure.
                let mut __run = || $body;
                __run();
            }
        }
        $crate::__proptest_body!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a property test (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property test (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skips the current test case when the precondition does not hold.
///
/// Expands to an early `return` from the case closure, so the case is silently
/// discarded (it still counts toward the case budget, unlike real proptest).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}
