//! The [`Strategy`] trait and its combinators.

use core::ops::{Range, RangeInclusive};
use rand::prelude::*;

/// A recipe for generating random values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy is
/// just a sampler.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent follow-up strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Randomly permutes generated `Vec`s (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { source: self }
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Clone, Debug)]
pub struct Shuffle<S> {
    source: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;

    fn sample(&self, rng: &mut StdRng) -> Vec<T> {
        let mut v = self.source.sample(rng);
        v.shuffle(rng);
        v
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ $(,)?)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
