//! The [`Strategy`] trait and its combinators.

use core::ops::{Range, RangeInclusive};
use rand::prelude::*;

/// A recipe for generating random values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree: a strategy is a sampler plus an
/// optional [`Strategy::shrink`] hook proposing simpler variants of a failing
/// value (greedy halving for integer ranges and `vec`s; combinators other than
/// tuples do not shrink).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes simpler candidates for a failing `value`, most aggressive
    /// first. The test runner greedily adopts the first candidate that still
    /// fails and re-shrinks from there, so each call only needs a coarse
    /// halving ladder — not an exhaustive enumeration.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent follow-up strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Randomly permutes generated `Vec`s (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { source: self }
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Clone, Debug)]
pub struct Shuffle<S> {
    source: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;

    fn sample(&self, rng: &mut StdRng) -> Vec<T> {
        let mut v = self.source.sample(rng);
        v.shuffle(rng);
        v
    }
}

/// Greedy halving ladder toward `start`: the minimum itself, then the
/// midpoint, then the predecessor — the runner re-shrinks from whichever still
/// fails. Implemented per integer type (the midpoint is computed in `i128`) so
/// wide signed ranges (e.g. `i64::MIN..i64::MAX`) cannot overflow.
trait ShrinkLadder: Sized {
    fn ladder(start: Self, value: Self) -> Vec<Self>;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl ShrinkLadder for $t {
            fn ladder(start: $t, value: $t) -> Vec<$t> {
                let mut out = Vec::new();
                if value > start {
                    out.push(start);
                    let mid = ((start as i128 + value as i128).div_euclid(2)) as $t;
                    if mid > start && mid < value {
                        out.push(mid);
                    }
                    let pred = value - 1;
                    if pred > start && pred != mid {
                        out.push(pred);
                    }
                }
                out
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                ShrinkLadder::ladder(self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                ShrinkLadder::ladder(*self.start(), *value)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ $(,)?)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Component-wise: shrink one coordinate, keep the others.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
