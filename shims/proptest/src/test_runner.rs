//! Test-runner configuration and the deterministic per-test RNG.

use rand::prelude::*;

/// Configuration accepted by `#![proptest_config(...)]`.
///
/// Only `cases` is honoured by this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic RNG for a property test, seeded from the test's name
/// (FNV-1a), so every run of the suite explores the same inputs.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}
