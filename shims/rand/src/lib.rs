//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access to a crates
//! registry, so the workspace vendors the *small* slice of the `rand` 0.8 API it
//! actually uses as a local path dependency (see `shims/` in the repository root).
//! The public names mirror `rand` 0.8 exactly — `use rand::prelude::*;`,
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`Rng::gen`] and [`SliceRandom::shuffle`] — so swapping in
//! the real crate is a one-line change in the workspace manifest.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64: deterministic, fast, and statistically more than adequate for the
//! test/benchmark workloads here. It is **not** cryptographically secure, which
//! matches how the workspace uses it (reproducible workload generation only).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

pub mod rngs;

/// The traits and types most users need, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

/// Minimal core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a deterministic RNG from `state`. Equal seeds yield equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values that [`Rng::gen`] can produce from raw random bits (the analogue of
/// sampling `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] can sample a `T` from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range, like `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`low..high` or `low..=high`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Draws a value of type `T` from its full/unit distribution
    /// (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random operations on slices (the subset of `rand::seq::SliceRandom` used here).
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u32 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
