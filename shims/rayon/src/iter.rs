//! Parallel iterators: splittable pipelines executed by the chunking executor.
//!
//! A [`ParallelIterator`] here is an *indexed, splittable* description of a
//! computation: it knows its length, can be split at any position into two
//! independent halves (adapters split their base and share their closure via
//! [`Arc`]), and can drive one contiguous piece sequentially into a sink. The
//! executor splits a pipeline into a few chunks per thread, runs the chunks on
//! scoped threads, and reassembles the results **in chunk order** — so every
//! consumer (`collect`, `sum`, `for_each`) observes exactly the sequential
//! result regardless of the thread count.

use std::sync::Arc;

use crate::pool;

/// A splittable, indexed parallel computation (the shim's merged stand-in for
/// rayon's `ParallelIterator`/`IndexedParallelIterator` pair).
pub trait ParallelIterator: Sized + Send {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Exact number of items this iterator will produce.
    fn len(&self) -> usize;

    /// Whether the iterator produces no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into the first `mid` items and the rest.
    fn split_at(self, mid: usize) -> (Self, Self);

    /// Runs this piece sequentially, feeding every item to `sink` in order.
    fn drive(self, sink: &mut dyn FnMut(Self::Item));

    /// Maps every item through `f`.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Pairs every item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Iterates two parallel iterators in lockstep (truncating to the shorter).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Copies referenced items (for `par_iter().copied()` pipelines).
    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        Copied { base: self }
    }

    /// Clones referenced items.
    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Clone + Send + Sync + 'a,
    {
        Cloned { base: self }
    }

    /// Executes the pipeline and collects the items (in sequential order).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Executes the pipeline and sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        run_to_vec(self).into_iter().sum()
    }

    /// Executes the pipeline for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let target = pool::target_pieces(self.len());
        let pieces = split_into_pieces(self, target);
        pool::run_pieces(pieces, |piece| piece.drive(&mut |item| f(item)));
    }
}

/// Splits `it` into at most `target` nonempty, contiguous, near-even pieces.
fn split_into_pieces<I: ParallelIterator>(it: I, target: usize) -> Vec<I> {
    fn rec<I: ParallelIterator>(it: I, target: usize, out: &mut Vec<I>) {
        let len = it.len();
        if target <= 1 || len <= 1 {
            out.push(it);
            return;
        }
        let left_target = target / 2;
        let right_target = target - left_target;
        // Split the items proportionally to the piece budget of each side.
        let mid = (len * left_target) / target;
        let (a, b) = it.split_at(mid.clamp(1, len - 1));
        rec(a, left_target, out);
        rec(b, right_target, out);
    }
    let mut out = Vec::new();
    rec(it, target.max(1), &mut out);
    out
}

/// Executes a pipeline, returning all items in sequential order.
pub(crate) fn run_to_vec<I: ParallelIterator>(it: I) -> Vec<I::Item> {
    let len = it.len();
    let target = pool::target_pieces(len);
    if target <= 1 {
        let mut out = Vec::with_capacity(len);
        it.drive(&mut |item| out.push(item));
        return out;
    }
    let pieces = split_into_pieces(it, target);
    let chunks = pool::run_pieces(pieces, |piece| {
        let mut out = Vec::with_capacity(piece.len());
        piece.drive(&mut |item| out.push(item));
        out
    });
    let mut out = Vec::with_capacity(len);
    for mut chunk in chunks {
        out.append(&mut chunk);
    }
    out
}

/// Conversion from a parallel iterator (the shim only targets `Vec`).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from the items of `it`, preserving sequential order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self {
        run_to_vec(it)
    }
}

// ---------------------------------------------------------------------------
// Base sources
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]` (see `ParallelSliceExt::par_iter`).
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T> SliceParIter<'a, T> {
    pub(crate) fn new(slice: &'a [T]) -> Self {
        Self { slice }
    }
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(mid);
        (Self { slice: a }, Self { slice: b })
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice {
            sink(item);
        }
    }
}

/// Parallel iterator over `&mut [T]` (see `ParallelSliceExt::par_iter_mut`).
pub struct SliceParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T> SliceParIterMut<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        Self { slice }
    }
}

impl<'a, T: Send> ParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(mid);
        (Self { slice: a }, Self { slice: b })
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice {
            sink(item);
        }
    }
}

/// Parallel iterator over an owned collection (see [`IntoParallelIterator`]).
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let back = self.items.split_off(mid);
        (self, Self { items: back })
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.items {
            sink(item);
        }
    }
}

/// `into_par_iter()` for owned collections.
///
/// The blanket implementation accepts any [`IntoIterator`] (vectors, ranges,
/// …) by materialising it into a `Vec` first — an extra O(n) move that keeps
/// the shim small; the real rayon splits lazily.
pub trait IntoParallelIterator: IntoIterator + Sized
where
    Self::Item: Send,
{
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> VecParIter<Self::Item> {
        VecParIter {
            items: self.into_iter().collect(),
        }
    }
}

impl<C: IntoIterator> IntoParallelIterator for C where C::Item: Send {}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Send + Sync,
{
    type Item = U;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            Self {
                base: a,
                f: Arc::clone(&self.f),
            },
            Self { base: b, f: self.f },
        )
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let f = self.f;
        self.base.drive(&mut |item| sink(f(item)));
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            Self {
                base: a,
                offset: self.offset,
            },
            Self {
                base: b,
                offset: self.offset + mid,
            },
        )
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let mut index = self.offset;
        self.base.drive(&mut |item| {
            sink((index, item));
            index += 1;
        });
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        // Trim both sides to the common length first so the halves stay aligned.
        let common = self.a.len().min(self.b.len());
        let (a, _) = self.a.split_at(common);
        let (b, _) = self.b.split_at(common);
        let (a1, a2) = a.split_at(mid);
        let (b1, b2) = b.split_at(mid);
        (Self { a: a1, b: b1 }, Self { a: a2, b: b2 })
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        // Lockstep iteration needs both sides materialised; pieces are small.
        let common = self.a.len().min(self.b.len());
        let (a, _) = self.a.split_at(common);
        let (b, _) = self.b.split_at(common);
        let mut left = Vec::with_capacity(common);
        a.drive(&mut |item| left.push(item));
        let mut left = left.into_iter();
        b.drive(&mut |item| {
            if let Some(l) = left.next() {
                sink((l, item));
            }
        });
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<I> {
    base: I,
}

impl<'a, T, I> ParallelIterator for Copied<I>
where
    T: Copy + Send + Sync + 'a,
    I: ParallelIterator<Item = &'a T>,
{
    type Item = T;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (Self { base: a }, Self { base: b })
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        self.base.drive(&mut |item| sink(*item));
    }
}

/// See [`ParallelIterator::cloned`].
pub struct Cloned<I> {
    base: I,
}

impl<'a, T, I> ParallelIterator for Cloned<I>
where
    T: Clone + Send + Sync + 'a,
    I: ParallelIterator<Item = &'a T>,
{
    type Item = T;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (Self { base: a }, Self { base: b })
    }

    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        self.base.drive(&mut |item| sink(item.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::with_installed_num_threads;

    fn at<R>(threads: usize, f: impl FnOnce() -> R) -> R {
        with_installed_num_threads(threads, f)
    }

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let got: Vec<u64> = at(threads, || {
                SliceParIter::new(&input).map(|x| x * 3 + 1).collect()
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn enumerate_indexes_are_global() {
        let input = vec!["a"; 1000];
        let got: Vec<(usize, &&str)> = at(4, || SliceParIter::new(&input).enumerate().collect());
        for (i, (idx, _)) in got.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn zip_stays_aligned_across_splits() {
        let left: Vec<u32> = (0..777).collect();
        let right: Vec<u32> = (0..777).map(|x| x * 2).collect();
        let got: Vec<u32> = at(4, || {
            left.clone()
                .into_par_iter()
                .zip(SliceParIter::new(&right).copied())
                .map(|(a, b)| a + b)
                .collect()
        });
        let expected: Vec<u32> = (0..777).map(|x| x * 3).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let long: Vec<u32> = (0..100).collect();
        let short: Vec<u32> = (0..37).collect();
        let got: Vec<(u32, u32)> = at(4, || {
            long.into_par_iter().zip(short.into_par_iter()).collect()
        });
        assert_eq!(got.len(), 37);
        assert!(got.iter().all(|&(a, b)| a == b));
    }

    #[test]
    fn par_iter_mut_reaches_every_item() {
        let mut items: Vec<u32> = (0..4096).collect();
        at(4, || {
            SliceParIterMut::new(&mut items).for_each(|x| *x += 1);
        });
        assert!(items.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn sum_matches_sequential() {
        let input: Vec<u64> = (0..100_000).collect();
        let expected: u64 = input.iter().sum();
        for threads in [1, 3, 8] {
            let got: u64 = at(threads, || SliceParIter::new(&input).copied().sum());
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn ranges_have_into_par_iter() {
        let got: Vec<u32> = at(4, || (0u32..100).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(got, (1..=100).collect::<Vec<u32>>());
    }
}
