//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate —
//! with a **real thread pool**.
//!
//! The build environment has no registry access, so this shim provides the
//! method surface the workspace calls — `par_iter`, `par_iter_mut`,
//! `into_par_iter`, the `par_sort*` family, [`join`] and a minimal
//! [`ThreadPoolBuilder`]/[`ThreadPool`] — and, unlike the original sequential
//! stand-in, actually executes it in parallel:
//!
//! * parallel calls are served by a **persistent pool of parked workers**
//!   (spawned on demand, reused across calls — fine-grained supersteps pay a
//!   condvar notify instead of a thread spawn); each call splits the work into
//!   a few contiguous chunks per thread and lets the participating workers
//!   claim chunks from an atomic counter (dynamic load balancing). Lending the
//!   per-call borrowed closure to the long-lived workers uses one confined
//!   `unsafe` lifetime erasure in `pool.rs`, made sound by the submit/reclaim/
//!   wait protocol documented there;
//! * the thread count honours `RAYON_NUM_THREADS`, a process-wide
//!   [`ThreadPoolBuilder::build_global`] override, and a scope-local
//!   [`ThreadPool::install`] override (checked in reverse order); with a count
//!   of 1 every entry point degrades to plain sequential execution;
//! * [`join`] really forks: the second closure runs on a scoped thread while
//!   the first runs on the caller.
//!
//! **Determinism guarantee.** Chunk results are reassembled in chunk order and
//! panics are re-raised with the earliest chunk's payload, so every consumer
//! (`collect`, `sum`, `par_sort*`, `join`) observes *bit-identical results at
//! every thread count*. The MPC simulator builds on this: its ledger totals and
//! algorithm outputs do not depend on `RAYON_NUM_THREADS` (asserted by
//! `tests/determinism.rs` and the CI thread matrix).
//!
//! Swapping in the real rayon remains a one-line change in the workspace
//! manifest; no caller source changes are needed.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use core::cmp::Ordering;

pub mod iter;
mod pool;

pub use iter::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
pub use pool::current_num_threads;

/// The traits users import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
    pub use crate::{ParallelSliceExt, ParallelSliceMutExt};
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// With more than one thread available, `b` is forked onto a scoped thread
/// while `a` runs on the calling thread, and each side receives *half* the
/// caller's thread budget — so recursive join trees (e.g. the LIS kernel
/// divide and conquer) self-limit at ~budget live threads and go sequential
/// below it, instead of spawning one thread per recursion node. A panic in
/// either closure is re-raised here with its original payload.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let threads = pool::current_num_threads();
    if threads <= 1 {
        return (a(), b());
    }
    let b_share = threads / 2;
    let a_share = threads - b_share;
    std::thread::scope(|scope| {
        let handle = scope.spawn(move || pool::with_installed_num_threads(b_share.max(1), b));
        let ra = pool::with_installed_num_threads(a_share, a);
        match handle.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

// ---------------------------------------------------------------------------
// Thread-pool configuration
// ---------------------------------------------------------------------------

/// Error returned by [`ThreadPoolBuilder::build`] (never produced by this shim;
/// it exists for API parity with the real rayon).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures a [`ThreadPool`] (only `num_threads` is honoured by this shim).
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count (0 keeps the `RAYON_NUM_THREADS`/hardware default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle whose [`ThreadPool::install`] scopes the thread
    /// count to a closure.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }

    /// Sets the process-wide thread count used by all parallel calls that are
    /// not under a [`ThreadPool::install`] override.
    ///
    /// Unlike the real rayon this may be called repeatedly; the latest call
    /// wins (the shim has no worker threads to re-spawn).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        pool::set_global_num_threads(self.num_threads);
        Ok(())
    }
}

/// A handle fixing the thread count for closures run under [`ThreadPool::install`].
///
/// The shim spawns scoped threads per parallel call, so the "pool" owns no
/// threads — it is purely a scoped configuration override.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count; parallel calls inside `f`
    /// (including on worker threads they spawn) use it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        pool::with_installed_num_threads(self.num_threads, f)
    }

    /// The thread count this pool installs (0 = the env/hardware default).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            pool::current_num_threads()
        }
    }
}

// ---------------------------------------------------------------------------
// Slice extension traits
// ---------------------------------------------------------------------------

/// `par_iter()` / `par_iter_mut()` on slices (and, via deref, `Vec`s).
pub trait ParallelSliceExt<T> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> iter::SliceParIter<'_, T>;

    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> iter::SliceParIterMut<'_, T>;
}

impl<T> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> iter::SliceParIter<'_, T> {
        iter::SliceParIter::new(self)
    }

    fn par_iter_mut(&mut self) -> iter::SliceParIterMut<'_, T> {
        iter::SliceParIterMut::new(self)
    }
}

/// Below this length sorting stays sequential: the scoped-thread setup would
/// cost more than the sort itself.
const MIN_PAR_SORT_LEN: usize = 2048;

/// Sorts `items` by first sorting contiguous chunks in parallel, then merging
/// the sorted runs with one pass of the standard library's (run-adaptive)
/// stable sort. The result is identical to a sequential stable sort.
fn par_sort_impl<T, F>(items: &mut [T], compare: &F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let threads = pool::current_num_threads();
    if threads <= 1 || items.len() < MIN_PAR_SORT_LEN {
        items.sort_by(|a, b| compare(a, b));
        return;
    }
    let chunk_len = items.len().div_ceil(threads);
    let chunks: Vec<&mut [T]> = items.chunks_mut(chunk_len).collect();
    pool::run_pieces(chunks, |chunk| chunk.sort_by(|a, b| compare(a, b)));
    // The std stable sort detects the pre-sorted runs and only merges them.
    items.sort_by(|a, b| compare(a, b));
}

/// `par_sort*` on slices (and, via deref, `Vec`s).
pub trait ParallelSliceMutExt<T: Send> {
    /// Stable parallel sort.
    fn par_sort(&mut self)
    where
        T: Ord;

    /// Stable parallel sort by comparator.
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;

    /// Stable parallel sort by key.
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;

    /// Unstable parallel sort (same chunk-and-merge implementation; the
    /// distinction only matters for the real rayon).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Unstable parallel sort by comparator.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
}

impl<T: Send> ParallelSliceMutExt<T> for [T] {
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        par_sort_impl(self, &T::cmp);
    }

    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_sort_impl(self, &compare);
    }

    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_sort_impl(self, &|a: &T, b: &T| key(a).cmp(&key(b)));
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_impl(self, &T::cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_sort_impl(self, &compare);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_surface_behaves_like_std() {
        let v = vec![3u32, 1, 2];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);

        let mut s = v.clone();
        s.par_sort();
        assert_eq!(s, vec![1, 2, 3]);

        let sum: u32 = v.into_par_iter().sum();
        assert_eq!(sum, 6);

        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn join_really_runs_both_closures_on_many_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let (a, b) = pool.install(|| join(|| (0..1000).sum::<u64>(), || "right"));
        assert_eq!(a, 499_500);
        assert_eq!(b, "right");
    }

    #[test]
    fn par_sort_matches_sequential_stable_sort() {
        // Pairs with many duplicate keys expose stability violations.
        let items: Vec<(u32, u32)> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) % 64, i))
            .collect();
        let mut expected = items.clone();
        expected.sort_by_key(|item| item.0);
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut got = items.clone();
            pool.install(|| got.par_sort_by(|a, b| a.0.cmp(&b.0)));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn nested_parallelism_divides_the_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        // join halves the budget, so recursive join trees self-limit instead
        // of spawning one thread per node.
        let counts = pool.install(|| join(current_num_threads, current_num_threads));
        assert_eq!(counts, (4, 4));
        let deep = pool.install(|| join(|| join(current_num_threads, || ()), || ()));
        assert_eq!(deep.0 .0, 2);
        // Data-parallel workers split the budget too: 8 threads over 4 pieces
        // leaves each piece a share of 2 for its own nested parallelism.
        let shares: Vec<usize> = pool.install(|| {
            vec![(); 4]
                .into_par_iter()
                .map(|()| current_num_threads())
                .collect()
        });
        assert_eq!(shares, vec![2, 2, 2, 2]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let input: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let reference: Vec<u64> = {
            let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            pool.install(|| input.par_iter().map(|x| x % 1013).collect())
        };
        for threads in [2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<u64> = pool.install(|| input.par_iter().map(|x| x % 1013).collect());
            assert_eq!(got, reference, "threads={threads}");
        }
    }
}
