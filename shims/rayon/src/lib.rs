//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no registry access, so this shim provides the exact
//! method surface `mpc-runtime` calls — `par_iter`, `par_iter_mut`,
//! `into_par_iter`, `par_sort`, `par_sort_by`, `par_sort_unstable` and [`join`] —
//! but executes everything **sequentially** on the calling thread: the "parallel"
//! iterators are the corresponding [`std`] iterators, so every adapter
//! (`map`, `zip`, `enumerate`, `collect`, …) keeps working unchanged.
//!
//! This preserves determinism and correctness of the MPC simulator; it gives up
//! wall-clock speedups only. Swapping in the real rayon is a one-line change in
//! the workspace manifest and is tracked as an open item in ROADMAP.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use core::cmp::Ordering;

/// The traits users import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceExt, ParallelSliceMutExt};
}

/// Runs both closures (sequentially, despite the name) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// `into_par_iter()` for any owned collection: yields the ordinary
/// [`IntoIterator`] iterator.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Converts `self` into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {}

/// `par_iter()` / `par_iter_mut()` on slices (and, via deref, `Vec`s).
pub trait ParallelSliceExt<T> {
    /// Sequential stand-in for `rayon`'s `par_iter`.
    fn par_iter(&self) -> core::slice::Iter<'_, T>;

    /// Sequential stand-in for `rayon`'s `par_iter_mut`.
    fn par_iter_mut(&mut self) -> core::slice::IterMut<'_, T>;
}

impl<T> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> core::slice::Iter<'_, T> {
        self.iter()
    }

    fn par_iter_mut(&mut self) -> core::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// `par_sort*` on slices (and, via deref, `Vec`s).
pub trait ParallelSliceMutExt<T> {
    /// Stable sort (sequential stand-in for `par_sort`).
    fn par_sort(&mut self)
    where
        T: Ord;

    /// Stable sort by comparator (sequential stand-in for `par_sort_by`).
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> Ordering;

    /// Stable sort by key (sequential stand-in for `par_sort_by_key`).
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K;

    /// Unstable sort (sequential stand-in for `par_sort_unstable`).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Unstable sort by comparator (sequential stand-in for
    /// `par_sort_unstable_by`).
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> Ordering;
}

impl<T> ParallelSliceMutExt<T> for [T] {
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }

    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> Ordering,
    {
        self.sort_by(compare);
    }

    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.sort_by_key(key);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> Ordering,
    {
        self.sort_unstable_by(compare);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_surface_behaves_like_std() {
        let v = vec![3u32, 1, 2];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);

        let mut s = v.clone();
        s.par_sort();
        assert_eq!(s, vec![1, 2, 3]);

        let sum: u32 = v.into_par_iter().sum();
        assert_eq!(sum, 6);

        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
