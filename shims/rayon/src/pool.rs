//! Thread-count resolution and the persistent work-chunking executor.
//!
//! Parallel calls are served by a **long-lived pool of parked workers**: the
//! first call that needs helpers spawns them (up to the requested count; the
//! pool grows on demand and threads persist, parked on a condvar, between
//! calls), so fine-grained supersteps pay a notify instead of a
//! `std::thread::scope` spawn. Each call publishes one *job* — a borrowed
//! closure in which workers claim contiguous work chunks from a shared atomic
//! counter (dynamic load balancing: a worker that drew a cheap chunk simply
//! claims the next one). The calling thread participates too, then reclaims
//! any helper tickets that no worker picked up and blocks until every started
//! helper has finished — which is what makes lending the borrowed closure to
//! the persistent threads sound (see [`JobHandle`]).
//!
//! The effective thread count is resolved, in priority order, from
//!
//! 1. a scope-local override installed by [`crate::ThreadPool::install`],
//! 2. the process-wide pool configured by
//!    [`crate::ThreadPoolBuilder::build_global`],
//! 3. the `RAYON_NUM_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! Nested parallelism *divides* the budget instead of multiplying it: each
//! worker's scope-local count is its share of the caller's count (likewise the
//! two sides of [`crate::join`]), so however deeply parallel regions nest, the
//! total number of concurrently *busy* threads stays around the configured
//! budget. With a resolved count of 1 every entry point degrades to plain
//! sequential execution on the calling thread — this is the mode the
//! `RAYON_NUM_THREADS=1` CI leg pins, and it never touches the pool.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Process-wide thread count set by `ThreadPoolBuilder::build_global` (0 = unset).
static GLOBAL_NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `RAYON_NUM_THREADS` / hardware default, resolved once.
static ENV_NUM_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Scope-local override installed by `ThreadPool::install` (0 = unset).
    static INSTALLED_NUM_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// How many chunks each worker thread is offered on average. Oversubscription
/// smooths out heterogeneous item costs (`group_map` groups vary wildly in
/// size) without giving up the deterministic chunk order.
const CHUNKS_PER_THREAD: usize = 4;

fn env_or_hardware_threads() -> usize {
    *ENV_NUM_THREADS.get_or_init(|| {
        if let Ok(raw) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The number of threads parallel calls on this thread will currently use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_NUM_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    let global = GLOBAL_NUM_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    env_or_hardware_threads()
}

/// Sets the process-wide thread count (0 keeps the env/hardware default).
pub(crate) fn set_global_num_threads(n: usize) {
    GLOBAL_NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Runs `f` with the calling thread's override set to `n`, restoring the
/// previous override afterwards (also on panic).
pub(crate) fn with_installed_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            INSTALLED_NUM_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(INSTALLED_NUM_THREADS.with(|c| c.replace(n)));
    f()
}

// ---------------------------------------------------------------------------
// The persistent worker pool
// ---------------------------------------------------------------------------

/// One published parallel call, lent to the pool's workers for its duration.
///
/// `f` is a *borrowed* closure whose lifetime has been erased (see
/// [`WorkerPool::run`]): it stays valid because `pending` counts one unit per
/// helper ticket — a worker runs the job and then decrements; the submitter
/// reclaims every unclaimed ticket and then blocks in [`JobHandle::wait`]
/// until `pending` reaches zero. No worker can touch `f` after `wait` returns.
struct JobHandle {
    f: &'static (dyn Fn() + Sync),
    pending: Mutex<usize>,
    done: Condvar,
}

impl JobHandle {
    /// Runs the job once on this thread, then signs off one ticket (also on
    /// panic — the work-claiming closure catches per-piece panics itself, this
    /// catch is only a backstop so a worker never unwinds out of its loop).
    fn run(&self) {
        struct SignOff<'a>(&'a JobHandle);
        impl Drop for SignOff<'_> {
            fn drop(&mut self) {
                self.0.sign_off(1);
            }
        }
        let _guard = SignOff(self);
        let _ = catch_unwind(AssertUnwindSafe(self.f));
    }

    fn sign_off(&self, tickets: usize) {
        let mut pending = self.pending.lock().expect("job state poisoned");
        *pending -= tickets;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut pending = self.pending.lock().expect("job state poisoned");
        while *pending > 0 {
            pending = self.done.wait(pending).expect("job state poisoned");
        }
    }
}

#[derive(Default)]
struct PoolState {
    /// Helper tickets not yet claimed by a worker (one entry per helper asked
    /// for; several tickets of one job coexist so several workers join it).
    tickets: VecDeque<Arc<JobHandle>>,
    /// Workers currently parked in [`WorkerPool::next_job`].
    idle: usize,
}

/// The process-wide pool of parked worker threads.
#[derive(Default)]
struct WorkerPool {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

impl WorkerPool {
    fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::default)
    }

    /// Publishes `f` as a job with `helpers` tickets, runs it on the calling
    /// thread as well, and returns once every participating worker is done.
    ///
    /// `f` must be self-contained (install its own thread-count share): it
    /// runs bare on whichever parked worker claims a ticket.
    fn run(&'static self, helpers: usize, f: &(dyn Fn() + Sync)) {
        if helpers == 0 {
            f();
            return;
        }
        // SAFETY (lifetime erasure): the reference is only reachable through
        // `JobHandle`s accounted by `pending`; the `Leave` guard below blocks —
        // on the normal exit *and* when `f` unwinds on this thread — until all
        // started workers signed off and all unstarted tickets were reclaimed,
        // so no worker dereferences `f` after this frame is torn down.
        #[allow(unsafe_code)]
        let erased: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(f) };
        let job = Arc::new(JobHandle {
            f: erased,
            pending: Mutex::new(helpers),
            done: Condvar::new(),
        });
        {
            let mut state = self.state.lock().expect("pool state poisoned");
            for _ in 0..helpers {
                state.tickets.push_back(Arc::clone(&job));
            }
        }
        // Grow the pool when fewer workers are parked than tickets posted
        // (outside the lock: a failed spawn must not poison the pool — the
        // submitter reclaims whatever no worker picks up, so running with
        // fewer helpers is always sound).
        let needed = {
            let state = self.state.lock().expect("pool state poisoned");
            helpers.saturating_sub(state.idle)
        };
        for _ in 0..needed {
            if std::thread::Builder::new()
                .name("rayon-shim-worker".into())
                .spawn(move || self.worker_loop())
                .is_err()
            {
                break; // Resource exhaustion: proceed with fewer helpers.
            }
        }
        self.work_ready.notify_all();

        /// Reclaims the job's unclaimed tickets and waits for the started
        /// ones — run via `Drop` so it also protects the unwinding path.
        struct Leave<'a> {
            pool: &'static WorkerPool,
            job: &'a Arc<JobHandle>,
        }
        impl Drop for Leave<'_> {
            fn drop(&mut self) {
                let reclaimed = {
                    let mut state = self.pool.state.lock().expect("pool state poisoned");
                    let before = state.tickets.len();
                    state.tickets.retain(|t| !Arc::ptr_eq(t, self.job));
                    before - state.tickets.len()
                };
                if reclaimed > 0 {
                    self.job.sign_off(reclaimed);
                }
                self.job.wait();
            }
        }
        let _leave = Leave {
            pool: self,
            job: &job,
        };

        f();
    }

    fn worker_loop(&'static self) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("pool state poisoned");
                loop {
                    if let Some(job) = state.tickets.pop_front() {
                        break job;
                    }
                    state.idle += 1;
                    state = self.work_ready.wait(state).expect("pool state poisoned");
                    state.idle -= 1;
                }
            };
            job.run();
        }
    }
}

/// Applies `f` to every piece, in parallel, returning the results in piece
/// order. Panics in workers are captured and re-raised on the calling thread
/// with their original payload (the earliest piece wins, deterministically).
pub(crate) fn run_pieces<P, R, F>(pieces: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let threads = current_num_threads().min(pieces.len());
    if threads <= 1 {
        return pieces.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<P>>> = pieces.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let results: Vec<Mutex<Option<std::thread::Result<R>>>> =
        (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // The caller's thread budget is *divided* among the workers (not copied):
    // nested parallel calls inside a piece may only use this worker's share,
    // so the total busy thread count stays ~budget no matter how deeply
    // parallel regions nest. With fewer pieces than budget, the spare threads
    // flow into the pieces' own nested parallelism.
    let share = (current_num_threads() / threads).max(1);

    let worker = || {
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= slots.len() {
                break;
            }
            let piece = slots[i]
                .lock()
                .expect("piece slot poisoned")
                .take()
                .expect("piece claimed twice");
            let outcome = catch_unwind(AssertUnwindSafe(|| f(piece)));
            let failed = outcome.is_err();
            *results[i].lock().expect("result slot poisoned") = Some(outcome);
            if failed {
                break; // Stop claiming work; the panic is re-raised below.
            }
        }
    };

    let job = || with_installed_num_threads(share, worker);
    WorkerPool::global().run(threads - 1, &job);

    let mut out = Vec::with_capacity(results.len());
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for slot in results {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(r)) => out.push(r),
            Some(Err(payload)) => {
                panic.get_or_insert(payload);
            }
            // A piece after the panicking one may never have been claimed.
            None => {}
        }
    }
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
    debug_assert_eq!(out.len(), slots.len());
    out
}

/// Target piece count for decomposing `len` items.
pub(crate) fn target_pieces(len: usize) -> usize {
    let threads = current_num_threads();
    if threads <= 1 {
        1
    } else {
        (threads * CHUNKS_PER_THREAD).min(len).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pieces_keep_their_order() {
        let pieces: Vec<usize> = (0..64).collect();
        let out = with_installed_num_threads(4, || run_pieces(pieces, |p| p * 2));
        assert_eq!(out, (0..64).map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let out = with_installed_num_threads(1, || run_pieces(vec![1, 2, 3], |p| p + 1));
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn install_override_nests_and_restores() {
        let before = current_num_threads();
        with_installed_num_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_installed_num_threads(7, || assert_eq!(current_num_threads(), 7));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn worker_panics_propagate_with_payload() {
        let result = std::panic::catch_unwind(|| {
            with_installed_num_threads(4, || {
                run_pieces((0..16).collect::<Vec<usize>>(), |p| {
                    assert!(p != 5, "piece five exploded");
                    p
                })
            })
        });
        let payload = result.expect_err("must panic");
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("piece five exploded"), "got: {message}");
    }
}
