//! Thread-count resolution and the scoped work-chunking executor.
//!
//! There is no persistent worker pool: every parallel call opens a
//! [`std::thread::scope`], spawns up to `num_threads - 1` workers (the calling
//! thread is the remaining worker) and lets them claim contiguous work chunks
//! from a shared atomic counter. This keeps the shim free of `unsafe` while
//! still providing dynamic load balancing — a worker that drew a cheap chunk
//! simply claims the next one.
//!
//! The effective thread count is resolved, in priority order, from
//!
//! 1. a scope-local override installed by [`crate::ThreadPool::install`],
//! 2. the process-wide pool configured by
//!    [`crate::ThreadPoolBuilder::build_global`],
//! 3. the `RAYON_NUM_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! Nested parallelism *divides* the budget instead of multiplying it: each
//! worker's scope-local count is its share of the caller's count (likewise the
//! two sides of [`crate::join`]), so however deeply parallel regions nest, the
//! total number of live threads stays around the configured budget. With a
//! resolved count of 1 every entry point degrades to plain sequential
//! execution on the calling thread — this is the mode the
//! `RAYON_NUM_THREADS=1` CI leg pins.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide thread count set by `ThreadPoolBuilder::build_global` (0 = unset).
static GLOBAL_NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `RAYON_NUM_THREADS` / hardware default, resolved once.
static ENV_NUM_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Scope-local override installed by `ThreadPool::install` (0 = unset).
    static INSTALLED_NUM_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// How many chunks each worker thread is offered on average. Oversubscription
/// smooths out heterogeneous item costs (`group_map` groups vary wildly in
/// size) without giving up the deterministic chunk order.
const CHUNKS_PER_THREAD: usize = 4;

fn env_or_hardware_threads() -> usize {
    *ENV_NUM_THREADS.get_or_init(|| {
        if let Ok(raw) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The number of threads parallel calls on this thread will currently use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_NUM_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    let global = GLOBAL_NUM_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    env_or_hardware_threads()
}

/// Sets the process-wide thread count (0 keeps the env/hardware default).
pub(crate) fn set_global_num_threads(n: usize) {
    GLOBAL_NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Runs `f` with the calling thread's override set to `n`, restoring the
/// previous override afterwards (also on panic).
pub(crate) fn with_installed_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            INSTALLED_NUM_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(INSTALLED_NUM_THREADS.with(|c| c.replace(n)));
    f()
}

/// Applies `f` to every piece, in parallel, returning the results in piece
/// order. Panics in workers are captured and re-raised on the calling thread
/// with their original payload (the earliest piece wins, deterministically).
pub(crate) fn run_pieces<P, R, F>(pieces: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let threads = current_num_threads().min(pieces.len());
    if threads <= 1 {
        return pieces.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<P>>> = pieces.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let results: Vec<Mutex<Option<std::thread::Result<R>>>> =
        (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // The caller's thread budget is *divided* among the workers (not copied):
    // nested parallel calls inside a piece may only use this worker's share,
    // so the total live thread count stays ~budget no matter how deeply
    // parallel regions nest. With fewer pieces than budget, the spare threads
    // flow into the pieces' own nested parallelism.
    let share = (current_num_threads() / threads).max(1);

    let worker = || {
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= slots.len() {
                break;
            }
            let piece = slots[i]
                .lock()
                .expect("piece slot poisoned")
                .take()
                .expect("piece claimed twice");
            let outcome = catch_unwind(AssertUnwindSafe(|| f(piece)));
            let failed = outcome.is_err();
            *results[i].lock().expect("result slot poisoned") = Some(outcome);
            if failed {
                break; // Stop claiming work; the panic is re-raised below.
            }
        }
    };

    std::thread::scope(|scope| {
        for _ in 1..threads {
            scope.spawn(|| with_installed_num_threads(share, worker));
        }
        with_installed_num_threads(share, worker);
    });

    let mut out = Vec::with_capacity(results.len());
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for slot in results {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(r)) => out.push(r),
            Some(Err(payload)) => {
                panic.get_or_insert(payload);
            }
            // A piece after the panicking one may never have been claimed.
            None => {}
        }
    }
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
    debug_assert_eq!(out.len(), slots.len());
    out
}

/// Target piece count for decomposing `len` items.
pub(crate) fn target_pieces(len: usize) -> usize {
    let threads = current_num_threads();
    if threads <= 1 {
        1
    } else {
        (threads * CHUNKS_PER_THREAD).min(len).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pieces_keep_their_order() {
        let pieces: Vec<usize> = (0..64).collect();
        let out = with_installed_num_threads(4, || run_pieces(pieces, |p| p * 2));
        assert_eq!(out, (0..64).map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        let out = with_installed_num_threads(1, || run_pieces(vec![1, 2, 3], |p| p + 1));
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn install_override_nests_and_restores() {
        let before = current_num_threads();
        with_installed_num_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_installed_num_threads(7, || assert_eq!(current_num_threads(), 7));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn worker_panics_propagate_with_payload() {
        let result = std::panic::catch_unwind(|| {
            with_installed_num_threads(4, || {
                run_pieces((0..16).collect::<Vec<usize>>(), |p| {
                    assert!(p != 5, "piece five exploded");
                    p
                })
            })
        });
        let payload = result.expect_err("must panic");
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("piece five exploded"), "got: {message}");
    }
}
