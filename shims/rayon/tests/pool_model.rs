//! Model-checking the worker pool's ticket/reclaim/wait protocol.
//!
//! `WorkerPool::run` (src/pool.rs) erases the lifetime of a borrowed closure
//! with a `transmute` and lends it to long-lived parked workers. The SAFETY
//! argument is a *protocol* property: `pending` counts one unit per helper
//! ticket, workers sign off after running, the submitter reclaims every
//! unclaimed ticket and blocks in `wait()` until `pending == 0` — so no
//! worker can dereference the closure after the submitting frame tears down.
//!
//! These tests port that exact protocol onto the loom-mini shim and explore
//! every interleaving (preemption bound 2) at the 2-workers × 2-tasks bound:
//!
//! * **no lost wakeup** — every schedule terminates (a lost `work_ready` or
//!   `done` notification would park a thread forever, which loom reports as a
//!   deadlock);
//! * **no task outlives its scope** — each job asserts its submitter's frame
//!   is still alive at every "dereference" of the erased closure;
//! * **panic payloads are delivered exactly once** — the piece-claiming
//!   counter hands the panicking piece to exactly one executor under every
//!   schedule, mirroring `run_pieces`' per-piece catch;
//! * **shutdown drains parked workers** — the shutdown flag plus
//!   `notify_all` wakes every idle worker and both joins complete (loom
//!   fails any schedule that leaks a thread).
//!
//! The model intentionally simplifies two things: workers are pre-spawned
//! (the real pool grows on demand, but a freshly spawned worker and a parked
//! one run the same claim loop), and the closure bodies are piece-claim loops
//! with assertion hooks instead of real work.

use loom::sync::atomic::AtomicUsize;
use loom::sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::Ordering::SeqCst;
use std::time::{Duration, Instant};

/// The modeled job: `pending`/`done` exactly as in `JobHandle`, plus the
/// instrumentation that turns the SAFETY comment into assertions.
struct ModelJob {
    /// Helper tickets not yet signed off (the real `pending`).
    pending: Mutex<usize>,
    done: Condvar,
    /// 1 while the submitting frame is alive; 0 after its Leave guard ran.
    /// Touching the job while this is 0 is the use-after-free the transmute
    /// SAFETY comment rules out.
    scope_alive: AtomicUsize,
    /// Piece-claim counter (the real `next` in `run_pieces`).
    next_piece: AtomicUsize,
    /// Total pieces this job decomposes into.
    pieces: usize,
    /// Which piece panics (usize::MAX = none).
    panic_piece: usize,
    /// How many times the panicking piece's payload was captured.
    payloads: AtomicUsize,
}

impl ModelJob {
    fn new(pieces: usize, panic_piece: usize, helpers: usize) -> Arc<ModelJob> {
        Arc::new(ModelJob {
            pending: Mutex::new(helpers),
            done: Condvar::new(),
            scope_alive: AtomicUsize::new(1),
            next_piece: AtomicUsize::new(0),
            pieces,
            panic_piece,
            payloads: AtomicUsize::new(0),
        })
    }

    /// The erased closure's body: claim pieces until none remain. Each
    /// "dereference" checks the borrowed frame is still alive.
    fn closure_body(&self) {
        loop {
            assert_eq!(
                self.scope_alive.load(SeqCst),
                1,
                "job body ran after its submitting frame was torn down"
            );
            let i = self.next_piece.fetch_add(1, SeqCst);
            if i >= self.pieces {
                break;
            }
            if i == self.panic_piece {
                // The real worker catches the piece's panic and stores the
                // payload in its result slot; model the capture.
                self.payloads.fetch_add(1, SeqCst);
                break; // a panicked executor stops claiming pieces
            }
        }
    }

    /// `JobHandle::run`: body plus the SignOff drop guard. The guard runs
    /// during unwind in the real code, so the model signs off before
    /// re-raising a body panic.
    fn run_on_worker(&self) {
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.closure_body()));
        self.sign_off(1);
        if let Err(payload) = out {
            std::panic::resume_unwind(payload);
        }
    }

    fn sign_off(&self, tickets: usize) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= tickets;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.done.wait(pending).unwrap();
        }
    }
}

/// The modeled pool state: the real `PoolState` plus a shutdown flag (the
/// real pool's workers are process-lived; the model must join them, so it
/// models the shutdown path the ISSUE asks to check).
struct ModelPoolState {
    tickets: VecDeque<Arc<ModelJob>>,
    idle: usize,
    shutdown: bool,
}

struct ModelPool {
    state: Mutex<ModelPoolState>,
    work_ready: Condvar,
}

impl ModelPool {
    fn new() -> Arc<ModelPool> {
        Arc::new(ModelPool {
            state: Mutex::new(ModelPoolState {
                tickets: VecDeque::new(),
                idle: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        })
    }

    /// `WorkerPool::worker_loop`, with the shutdown exit added.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut state = self.state.lock().unwrap();
                loop {
                    if state.shutdown {
                        return;
                    }
                    if let Some(job) = state.tickets.pop_front() {
                        break job;
                    }
                    state.idle += 1;
                    state = self.work_ready.wait(state).unwrap();
                    state.idle -= 1;
                }
            };
            job.run_on_worker();
        }
    }

    /// `WorkerPool::run`: post tickets, wake workers, run the closure on the
    /// calling thread, then the Leave guard — reclaim unclaimed tickets and
    /// wait for the started ones. Returns once no worker can touch the job.
    fn run(&self, job: &Arc<ModelJob>, helpers: usize) {
        {
            let mut state = self.state.lock().unwrap();
            for _ in 0..helpers {
                state.tickets.push_back(Arc::clone(job));
            }
        }
        self.work_ready.notify_all();

        // The caller participates (the real `f()` between post and Leave).
        job.closure_body();

        // Leave guard: reclaim, sign off reclaimed tickets, wait.
        let reclaimed = {
            let mut state = self.state.lock().unwrap();
            let before = state.tickets.len();
            state.tickets.retain(|t| !Arc::ptr_eq(t, job));
            before - state.tickets.len()
        };
        if reclaimed > 0 {
            job.sign_off(reclaimed);
        }
        job.wait();

        // The submitting frame tears down: from here on the closure is gone.
        job.scope_alive.store(0, SeqCst);
    }

    fn shutdown(&self) {
        let mut state = self.state.lock().unwrap();
        state.shutdown = true;
        self.work_ready.notify_all();
    }
}

/// The model tests each explore thousands of schedules with real OS threads
/// behind them; running them concurrently trips the wall-clock bounds, so
/// they take turns.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// One full model execution: 2 workers, 2 submitted tasks (the second with
/// fewer helpers, so it exercises reusing a parked worker), then shutdown.
fn pool_scenario(panic_piece: usize) {
    let pool = ModelPool::new();
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let pool = Arc::clone(&pool);
            loom::thread::spawn(move || pool.worker_loop())
        })
        .collect();

    let task_a = ModelJob::new(1, usize::MAX, 2);
    pool.run(&task_a, 2);
    let mut pending = *task_a.pending.lock().unwrap();
    assert_eq!(pending, 0, "task A finished with unsigned tickets");

    let task_b = ModelJob::new(2, panic_piece, 1);
    pool.run(&task_b, 1);
    pending = *task_b.pending.lock().unwrap();
    assert_eq!(pending, 0, "task B finished with unsigned tickets");

    if panic_piece != usize::MAX {
        assert_eq!(
            task_b.payloads.load(SeqCst),
            1,
            "the panicking piece's payload must be captured exactly once"
        );
    }

    pool.shutdown();
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn ticket_reclaim_wait_protocol_is_sound() {
    let _turn = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let start = Instant::now();
    let report = loom::model(|| pool_scenario(usize::MAX));
    assert!(report.exhaustive, "schedule tree not fully explored");
    assert!(
        report.iterations > 100,
        "suspiciously few schedules explored"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "model exploration must stay fast ({} schedules in {:?})",
        report.iterations,
        start.elapsed()
    );
}

#[test]
fn panic_payload_is_delivered_exactly_once() {
    let _turn = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let start = Instant::now();
    let report = loom::model(|| pool_scenario(0));
    assert!(report.exhaustive, "schedule tree not fully explored");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "model exploration must stay fast ({} schedules in {:?})",
        report.iterations,
        start.elapsed()
    );
}

/// Mutation check: break the protocol the way the SAFETY comment forbids —
/// tear the scope down *without* waiting — and the explorer must find a
/// schedule where a worker touches the dead frame. This is what makes the
/// green tests above evidence rather than vacuous passes.
#[test]
fn skipping_the_wait_is_caught_as_scope_escape() {
    let _turn = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let caught = std::panic::catch_unwind(|| {
        loom::model(|| {
            let pool = ModelPool::new();
            let worker = {
                let pool = Arc::clone(&pool);
                loom::thread::spawn(move || pool.worker_loop())
            };

            let job = ModelJob::new(2, usize::MAX, 1);
            {
                let mut state = pool.state.lock().unwrap();
                state.tickets.push_back(Arc::clone(&job));
            }
            pool.work_ready.notify_all();
            job.closure_body();
            // BUG under test: no reclaim, no wait — the frame dies while a
            // worker may still hold a ticket.
            job.scope_alive.store(0, SeqCst);

            // Give the worker a way to finish so only the scope assertion
            // (not a leaked thread) can fail the schedule.
            job.wait();
            pool.shutdown();
            if let Err(payload) = worker.join() {
                // Surface the worker's assertion with its own payload.
                std::panic::resume_unwind(payload);
            }
        });
    });
    let payload = caught.expect_err("some schedule must hit the dead frame");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("torn down"),
        "expected the scope-escape assertion, got: {msg}"
    );
}
