//! Facade crate re-exporting the whole reproduction of
//! *An Optimal MPC Algorithm for Subunit-Monge Matrix Multiplication, with
//! Applications to LIS* (Koo, SPAA 2024).
//!
//! The individual subsystems live in dedicated crates:
//!
//! * [`monge`] — sequential unit-Monge / seaweed algebra (matrices, ⊡ products,
//!   H-way combine machinery).
//! * [`seaweed_lis`] — sequential LIS/LCS applications (seaweed kernels, semi-local
//!   queries, baselines).
//! * [`mpc_runtime`] — the MPC model simulator (machines, rounds, space/communication
//!   accounting, GSZ primitives).
//! * [`monge_mpc`] — the paper's O(1)-round MPC multiplication (Theorems 1.1/1.2).
//! * [`lis_mpc`] — the O(log n)-round MPC LIS and LCS algorithms (Theorem 1.3,
//!   Corollaries 1.3.1–1.3.3).
//! * [`lis_service`] — the serving layer: a long-running analytics server that
//!   keeps built kernels hot (LRU cache keyed by content hash), coalesces
//!   concurrent witness queries into one traceback descent, and extends
//!   sequences incrementally by recombing only the merge-tree spine.

pub use lis_mpc;
pub use lis_service;
pub use monge;
pub use monge_mpc;
pub use mpc_runtime;
pub use seaweed_lis;
